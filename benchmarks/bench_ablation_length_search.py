"""Ablation: the [0.5W, 2W] length search vs fixed-length matching."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_ablation_length_search(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.ablation_length_search(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(capsys, "Ablation: match-length search", result)
    search = result["length search [0.5W,2W]"]["summary"].median_deg
    fixed = result["fixed length W"]["summary"].median_deg
    # Sec. 3.4.4: the speed mismatch needs the length search.
    assert search < fixed
