"""Ablation: DTW series matching vs single-point and rigid matching.

The paper rejects single-point inversion (Eq. 5) for its ambiguity.  In
our simulated channel the phase-orientation curve is smoother than the
hardware's, so the single-point baseline is closer than the paper found —
what separates the trackers here is tail behaviour and robustness, which
EXPERIMENTS.md discusses.
"""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_ablation_matching(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.ablation_matching(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(capsys, "Ablation: matching strategy", result)
    vihot = result["vihot (dtw series)"]["summary"]
    assert vihot.median_deg < 10.0
