"""Ablation: position-orientation joint profiling vs one position."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_ablation_position(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.ablation_position(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(capsys, "Ablation: profiled head positions", result)
    many = result["10 positions"]["summary"].median_deg
    one = result["1 position"]["summary"].median_deg
    # The joint design is the paper's contribution; it must matter.
    assert many < one
