"""Ablation: antenna-difference sanitisation vs raw CSI phase."""

from repro.experiments import figures


def test_ablation_sanitization(benchmark, capsys):
    data = benchmark.pedantic(
        lambda: figures.ablation_sanitization(duration_s=6.0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print(f"\nStationary-cabin phase std: raw {data['raw_phase_std_rad']:.2f} rad, "
              f"sanitized {data['sanitized_phase_std_rad']:.4f} rad")
    # Raw phase is CFO/SFO garbage; the difference is flat (Sec. 3.2).
    assert data["raw_phase_std_rad"] > 10 * data["sanitized_phase_std_rad"]
