"""Sec. 7 extension: ViHOT on a 5 GHz channel vs the prototype's 2.4 GHz."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments.extensions import extension_5ghz


def test_extension_5ghz(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: extension_5ghz(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(capsys, "Sec. 7 extension: carrier band", result)
    # Both bands work; the paper expects 5 GHz to be at least as good.
    assert result["5GHz"]["summary"].median_deg < 12.0
    assert result["2.4GHz"]["summary"].median_deg < 12.0
