"""Sec. 7 extension: camera+CSI sensor fusion vs camera duty cycle."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments.extensions import extension_fusion


def test_extension_fusion(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: extension_fusion(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(capsys, "Sec. 7 extension: camera fusion", result)
    pure = result["camera duty 0%"]["summary"]
    fused = result["camera duty 100%"]["summary"]
    # Fusion must not hurt, and pure ViHOT must already be in band.
    assert pure.median_deg < 10.0
    assert fused.mean_deg <= pure.mean_deg + 1.0
