"""Fig. 2: the driver's head turns within the 2-D horizontal plane."""

import numpy as np

from repro.experiments import figures


def test_fig02_head_plane(benchmark, capsys):
    data = benchmark.pedantic(
        lambda: figures.fig02_head_plane(duration_s=12.0), rounds=1, iterations=1
    )
    yaw = np.abs(data["yaw_deg"]).max()
    pitch = np.abs(data["pitch_deg"]).max()
    roll = np.abs(data["roll_deg"]).max()
    with capsys.disabled():
        print(f"\nFig. 2 peak projections: yaw {yaw:.1f} deg, "
              f"pitch {pitch:.1f} deg, roll {roll:.1f} deg")
    assert yaw > 3 * max(pitch, roll)
