"""Fig. 3: CSI phase vs head orientation, parallel curves per position."""

import numpy as np

from repro.experiments import figures


def test_fig03_phase_curves(benchmark, capsys):
    data = benchmark.pedantic(
        lambda: figures.fig03_phase_curves(leans_m=(-0.02, 0.0, 0.02)),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print("\nFig. 3 phase-at-orientation by head position (rad):")
        grid = (-60.0, -30.0, 0.0, 30.0, 60.0)
        for lean, curves in data.items():
            samples = []
            for theta in grid:
                mask = np.abs(curves["orientation_deg"] - theta) < 3.0
                samples.append(float(np.median(curves["phase_rad"][mask])))
            row = "  ".join(f"{v:+.2f}" for v in samples)
            print(f"  lean {lean * 100:+.0f} cm: {row}")
    # Parallel curves: distinct facing-front levels per position.
    fronts = [
        np.median(c["phase_rad"][np.abs(c["orientation_deg"]) < 3.0])
        for c in data.values()
    ]
    assert np.ptp(fronts) > 0.02
