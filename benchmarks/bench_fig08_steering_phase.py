"""Fig. 8: steering-wheel turning affects the CSI phase."""

import numpy as np

from repro.experiments import figures


def test_fig08_steering_phase(benchmark, capsys):
    data = benchmark.pedantic(
        lambda: figures.fig08_steering_phase(segment_s=6.0), rounds=1, iterations=1
    )
    boundary = data["segment_boundary_s"]
    head = data["time_s"] < boundary
    wheel = ~head
    head_swing = np.ptp(data["phase_rad"][head])
    wheel_swing = np.ptp(data["phase_rad"][wheel])
    with capsys.disabled():
        print(f"\nFig. 8 phase swing: head-turn segment {head_swing:.2f} rad, "
              f"steering-only segment {wheel_swing:.2f} rad "
              f"(head still: {np.ptp(data['head_yaw_deg'][wheel]):.2f} deg)")
    assert wheel_swing > 0.1  # steering moves the phase with no head motion
