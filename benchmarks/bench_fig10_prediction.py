"""Fig. 10: head-orientation prediction accuracy vs horizon."""

from conftest import CAMPAIGN, print_cdfs, print_summaries

from repro.experiments import figures


def test_fig10_prediction(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.fig10_prediction(**CAMPAIGN), rounds=1, iterations=1
    )
    rows = print_summaries(
        capsys, "Fig. 10a: error vs prediction horizon",
        result, key_format=lambda h: f"{h * 1000:.0f} ms",
    )
    print_cdfs(capsys, result, key_format=lambda h: f"{h * 1000:.0f} ms CDF")
    # Shape: error grows with the horizon; tracking stays in the paper band.
    means = {h: v["summary"].mean_deg for h, v in result.items()}
    assert means[0.0] < 10.0
    assert means[0.4] > means[0.0]
