"""Fig. 11: antenna placement changes the CSI-orientation relation."""

import numpy as np

from repro.experiments import figures


def test_fig11_layout_curves(benchmark, capsys):
    data = benchmark.pedantic(
        lambda: figures.fig11_layout_curves(), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\nFig. 11 phase dynamic range by layout:")
        for layout, curves in data.items():
            print(f"  {layout:16s} {np.ptp(curves['phase_rad']):.2f} rad")
    assert np.ptp(data["behind-driver"]["phase_rad"]) > np.ptp(
        data["center-console"]["phase_rad"]
    )
