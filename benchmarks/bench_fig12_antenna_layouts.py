"""Fig. 12: tracking accuracy under the five RX antenna placements."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_fig12_antenna_layouts(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.fig12_antenna_layouts(**CAMPAIGN), rounds=1, iterations=1
    )
    rows = print_summaries(capsys, "Fig. 12: error by antenna layout", result)
    medians = {k: v["summary"].median_deg for k, v in result.items()}
    # Layout 1 (behind-driver) wins, by a wide margin (paper: <5 vs ~20).
    best = medians.pop("behind-driver")
    assert best < 10.0
    assert all(best < other for other in medians.values())
