"""Fig. 13a: accuracy vs profiling-to-runtime interval."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_fig13a_profile_interval(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.fig13a_profile_interval(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(capsys, "Fig. 13a: error by profiling interval", result)
    medians = {k: v["summary"].median_deg for k, v in result.items()}
    # 1 minute (same seating) is best; the re-seated intervals cluster
    # together (Sec. 5.2.4) and stay within the paper's ~10 deg band.
    assert medians["1 minute"] <= min(
        medians["1 hour"], medians["1 day"], medians["1 week"]
    )
    for interval in ("1 hour", "1 day", "1 week"):
        assert medians[interval] < 20.0
