"""Fig. 13b: accuracy vs CSI input window size."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_fig13b_window_size(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.fig13b_window_size(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(
        capsys, "Fig. 13b: error by window size",
        result, key_format=lambda w: f"{w * 1000:.0f} ms",
    )
    medians = {w: v["summary"].median_deg for w, v in result.items()}
    # The paper: even 10 ms stays usable (~7 deg); 100 ms comfortably in band.
    assert medians[0.01] < 15.0
    assert medians[0.1] < 10.0
    assert medians[0.1] <= medians[0.01]
