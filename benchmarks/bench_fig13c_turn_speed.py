"""Fig. 13c: accuracy vs head-turning speed (300 ms window)."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_fig13c_turn_speed(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.fig13c_turn_speed(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(
        capsys, "Fig. 13c: error by head-turning speed",
        result, key_format=lambda s: f"{s:.0f} deg/s",
    )
    summaries = {s: v["summary"] for s, v in result.items()}
    # Medians stay under ~10 deg at every speed (the paper's headline).
    # The slow-speed tail penalty of Sec. 5.2.5 is a weak effect that
    # needs paper-scale sessions to resolve reliably; at this reduced
    # scale we only guard against it inverting catastrophically.
    for s, summary in summaries.items():
        assert summary.median_deg < 12.0, f"median too high at {s} deg/s"
    assert summaries[100.0].p90_deg < 30.0
