"""Fig. 13d: accuracy across the three test drivers."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_fig13d_drivers(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.fig13d_drivers(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(capsys, "Fig. 13d: error by driver", result)
    # The paper: median tracking error always below 10 degrees.
    for driver, v in result.items():
        assert v["summary"].median_deg < 10.0, f"driver {driver} out of band"
