"""Fig. 14: rotation speed affects the CSI curve's time-domain shape."""

import numpy as np

from repro.dsp.filters import moving_average
from repro.experiments import figures


def test_fig14_speed_curves(benchmark, capsys):
    data = benchmark.pedantic(
        lambda: figures.fig14_speed_curves(speeds_deg_s=(60.0, 120.0)),
        rounds=1,
        iterations=1,
    )

    def crossings(series):
        smooth = moving_average(np.asarray(series), 101)
        return int(np.sum(np.diff(np.sign(smooth - np.median(smooth))) != 0))

    slow, fast = crossings(data[60.0]["phase_rad"]), crossings(data[120.0]["phase_rad"])
    with capsys.disabled():
        print(f"\nFig. 14 phase oscillations in 6 s: {slow} @60 deg/s, {fast} @120 deg/s")
    assert fast > slow  # same curve, traversed faster
