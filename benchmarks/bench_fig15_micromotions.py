"""Fig. 15: phase variation of cabin micro-motions vs head turning."""

from repro.experiments import figures


def test_fig15_micromotions(benchmark, capsys):
    data = benchmark.pedantic(
        lambda: figures.fig15_micromotions(duration_s=6.0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\nFig. 15 phase standard deviation (rad):")
        for label, v in data.items():
            print(f"  {label:22s} {v['phase_std_rad']:.4f}")
    turning = data["head turning"]["phase_std_rad"]
    for label in ("breathing+blinking", "intense eye motion", "music vibration"):
        assert data[label]["phase_std_rad"] < 0.15 * turning
