"""Fig. 16: antenna vibration yields a noisy but parallel phase curve."""

import numpy as np

from repro.experiments import figures


def test_fig16_vibration_phase(benchmark, capsys):
    data = benchmark.pedantic(
        lambda: figures.fig16_vibration_phase(duration_s=6.0), rounds=1, iterations=1
    )
    rigid = data["rigid"]["phase_rad"]
    vibrating = data["vibrating"]["phase_rad"]
    noise_ratio = np.std(np.diff(vibrating)) / np.std(np.diff(rigid))
    with capsys.disabled():
        print(f"\nFig. 16: vibration raises sample-to-sample phase noise "
              f"{noise_ratio:.1f}x; macro range {np.ptp(rigid):.2f} -> "
              f"{np.ptp(vibrating):.2f} rad")
    assert noise_ratio > 1.0
