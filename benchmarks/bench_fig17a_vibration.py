"""Fig. 17a: tracking accuracy with and without antenna vibration."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_fig17a_vibration(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.fig17a_vibration(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(capsys, "Fig. 17a: antenna vibration", result)
    with_v = result["w/ ant vibration"]["summary"].median_deg
    without = result["w/o ant vibration"]["summary"].median_deg
    # Paper: vibration costs accuracy but the median stays ~6 deg.
    assert with_v >= without
    assert with_v < 12.0
