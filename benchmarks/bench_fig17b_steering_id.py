"""Fig. 17b: the driver-steering identifier on vs off."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_fig17b_steering_identifier(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.fig17b_steering_identifier(**CAMPAIGN),
        rounds=1,
        iterations=1,
    )
    print_summaries(capsys, "Fig. 17b: steering identifier", result)
    off = result["w/o steering identifier"]["summary"]
    on = result["w/ steering identifier"]["summary"]
    # Identifier improves the turn-polluted tail (paper: errors up to ~80
    # deg without it).
    assert on.p90_deg < off.p90_deg
    assert off.max_deg > 25.0
