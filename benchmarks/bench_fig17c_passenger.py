"""Fig. 17c: tracking accuracy with and without a front passenger."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_fig17c_passenger(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.fig17c_passenger(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(capsys, "Fig. 17c: passenger", result)
    with_p = result["w/ passenger"]["summary"]
    without = result["w/o passenger"]["summary"]
    # Paper: "very similar performance for these two cases".
    assert abs(with_p.median_deg - without.median_deg) < 5.0
    assert with_p.max_deg < 60.0
