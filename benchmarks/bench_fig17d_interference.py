"""Fig. 17d: tracking accuracy under interfering WiFi traffic."""

from conftest import CAMPAIGN, print_summaries

from repro.experiments import figures


def test_fig17d_interference(benchmark, capsys):
    result = benchmark.pedantic(
        lambda: figures.fig17d_interference(**CAMPAIGN), rounds=1, iterations=1
    )
    print_summaries(capsys, "Fig. 17d: WiFi interference", result)
    busy = result["w/ WiFi interference"]["summary"]
    clean = result["w/o WiFi interference"]["summary"]
    # Paper: degradation, but still ~10 deg median.  At this reduced
    # scale the penalty is within seed noise (EXPERIMENTS.md discusses),
    # so assert the band and near-ordering rather than a strict one.
    assert busy.median_deg >= clean.median_deg - 1.0
    assert busy.median_deg < 15.0
