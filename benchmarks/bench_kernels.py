"""Micro-benchmarks of the computational kernels (real timing runs).

These are the only benches measuring steady-state throughput rather than
regenerating a figure: the batched DTW matcher (the run-time hot path,
Alg. 1), its stacked cross-session form, CSI synthesis (Eq. 1) and the
sanitiser (Sec. 3.2) in both scalar and fleet-batched forms.

Two entry points:

* pytest (CI smoke, via pytest-benchmark)::

      PYTHONPATH=src python -m pytest -q benchmarks/bench_kernels.py

* script mode, emitting the schema'd JSON perf artefact the regression
  gate compares against ``.github/bench_baseline.json``::

      PYTHONPATH=src python benchmarks/bench_kernels.py --json BENCH_kernels.json
"""

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.core.sanitize import sanitize_stream, sanitize_streams
from repro.dsp.dtw import batched_dtw_distance, stacked_dtw_distance
from repro.rf.multipath import synthesize_csi

try:
    import pytest
except ImportError:  # script mode does not need pytest
    pytest = None

#: Bumped when the JSON layout changes; the regression gate checks it.
SCHEMA = "vihot-bench-kernels/1"

#: Stacked-form fleet width: how many sessions' queries ride one call.
STACK = 16

#: The stacked DP's two regimes, both reported: ``small`` keeps the
#: (S, B, m, L) cost tensor cache-resident, where stacking amortises
#: numpy dispatch (~2x); ``wide`` is the serving hot path's observed
#: shape (8 sessions x ~150 candidates x length 40), where the tensor
#: spills cache and stacking roughly breaks even — the end-to-end
#: serving win at that shape comes from candidate-bank amortisation in
#: ``SeriesMatcher.match_many`` and is measured by ``bench_serve.py``.
STACKED_SMALL = (16, 40, 25)  # (stack, candidates, candidate length)
STACKED_WIDE = (8, 150, 40)


def _dtw_inputs(rng=None):
    rng = rng or np.random.default_rng(0)
    query = rng.uniform(-np.pi, np.pi, 20)
    candidates = rng.uniform(-np.pi, np.pi, (400, 40))
    return query, candidates


def _stacked_inputs(shape=STACKED_SMALL):
    stack, n_candidates, length = shape
    rng = np.random.default_rng(0)
    queries = rng.uniform(-np.pi, np.pi, (stack, 21))
    candidates = rng.uniform(-np.pi, np.pi, (n_candidates, length))
    return queries, candidates


def _fleet_csi():
    """Window-sized per-session chunks: what a tick actually sanitises."""
    rng = np.random.default_rng(2)
    csi = rng.normal(size=(STACK, 256, 2, 30)) + 1j * rng.normal(
        size=(STACK, 256, 2, 30)
    )
    times = np.linspace(0, 256 / 200.0, 256)
    return times, csi


if pytest is not None:

    @pytest.fixture(scope="module")
    def dtw_inputs():
        return _dtw_inputs()

    def test_batched_dtw_throughput(benchmark, dtw_inputs):
        query, candidates = dtw_inputs
        result = benchmark(batched_dtw_distance, query, candidates, None, "circular")
        assert len(result) == 400

    def test_stacked_dtw_throughput(benchmark):
        """The cross-session form: one DP over a (16, 40) batch."""
        queries, candidates = _stacked_inputs(STACKED_SMALL)
        result = benchmark(
            stacked_dtw_distance, queries, candidates, None, "circular"
        )
        assert result.shape == (STACKED_SMALL[0], STACKED_SMALL[1])

    def test_csi_synthesis_throughput(benchmark):
        rng = np.random.default_rng(1)
        lengths = rng.uniform(0.5, 3.0, (5000, 10))
        amps = rng.uniform(0.0, 0.01, (5000, 10))
        wavelengths = 0.123 + 0.0001 * np.arange(30)
        csi = benchmark(synthesize_csi, lengths, amps, wavelengths)
        assert csi.shape == (5000, 30)

    def test_sanitizer_throughput(benchmark):
        rng = np.random.default_rng(2)
        csi = rng.normal(size=(5000, 2, 30)) + 1j * rng.normal(size=(5000, 2, 30))
        times = np.linspace(0, 10, 5000)
        series = benchmark(sanitize_stream, times, csi)
        assert len(series) == 5000

    def test_fleet_sanitizer_throughput(benchmark):
        times, csi = _fleet_csi()
        series = benchmark(sanitize_streams, times, csi)
        assert len(series) == STACK


# ----------------------------------------------------------------------
# Script mode: the schema'd JSON artefact
# ----------------------------------------------------------------------
def _time(fn, reps: int) -> dict:
    """Run ``fn`` ``reps`` times (after one warmup) and summarise."""
    fn()  # warmup: first-touch allocations, branch caches
    samples = []
    for _ in range(reps):
        start = perf_counter()
        fn()
        samples.append(perf_counter() - start)
    ordered = sorted(samples)
    return {
        "reps": reps,
        "best_s": ordered[0],
        "mean_s": sum(samples) / len(samples),
        "p50_s": ordered[len(ordered) // 2],
        "p99_s": ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))],
    }


def collect(reps: int = 30) -> dict:
    """Measure every kernel; returns the full JSON payload."""
    kernels: dict[str, dict] = {}

    query, candidates = _dtw_inputs()
    kernels["batched_dtw"] = {
        **_time(lambda: batched_dtw_distance(query, candidates, None, "circular"),
                reps),
        "candidates": int(candidates.shape[0]),
    }
    kernels["batched_dtw"]["candidates_per_s"] = (
        candidates.shape[0] / kernels["batched_dtw"]["mean_s"]
    )

    # The stacked cross-session form vs the per-session loop it must be
    # bit-identical to: the ratio is the batch efficiency the kernel
    # itself buys, in both cache regimes (see STACKED_SMALL/WIDE).
    for name, shape in (("stacked_dtw_small", STACKED_SMALL),
                        ("stacked_dtw_wide", STACKED_WIDE)):
        queries, candidates = _stacked_inputs(shape)
        stack = shape[0]
        stacked = _time(
            lambda: stacked_dtw_distance(queries, candidates, None, "circular"),
            reps,
        )
        loop = _time(
            lambda: [
                batched_dtw_distance(queries[s], candidates, None, "circular")
                for s in range(stack)
            ],
            reps,
        )
        kernels[name] = {
            **stacked,
            "stack": stack,
            "candidates": int(candidates.shape[0]),
            "candidate_length": int(candidates.shape[1]),
            "sequential_mean_s": loop["mean_s"],
            "batch_speedup": loop["mean_s"] / stacked["mean_s"],
        }

    rng = np.random.default_rng(1)
    lengths = rng.uniform(0.5, 3.0, (5000, 10))
    amps = rng.uniform(0.0, 0.01, (5000, 10))
    wavelengths = 0.123 + 0.0001 * np.arange(30)
    kernels["csi_synthesis"] = {
        **_time(lambda: synthesize_csi(lengths, amps, wavelengths), reps),
        "packets": 5000,
    }
    kernels["csi_synthesis"]["packets_per_s"] = (
        5000 / kernels["csi_synthesis"]["mean_s"]
    )

    rng = np.random.default_rng(2)
    csi = rng.normal(size=(5000, 2, 30)) + 1j * rng.normal(size=(5000, 2, 30))
    times = np.linspace(0, 10, 5000)
    kernels["sanitize_stream"] = {
        **_time(lambda: sanitize_stream(times, csi), reps),
        "packets": 5000,
    }
    kernels["sanitize_stream"]["packets_per_s"] = (
        5000 / kernels["sanitize_stream"]["mean_s"]
    )

    fleet_times, fleet_csi = _fleet_csi()
    batched = _time(lambda: sanitize_streams(fleet_times, fleet_csi), reps)
    loop = _time(
        lambda: [
            sanitize_stream(fleet_times, fleet_csi[s]) for s in range(STACK)
        ],
        reps,
    )
    kernels["sanitize_streams"] = {
        **batched,
        "stack": STACK,
        "packets": int(STACK * fleet_csi.shape[1]),
        "sequential_mean_s": loop["mean_s"],
        "batch_speedup": loop["mean_s"] / batched["mean_s"],
    }

    return {"schema": SCHEMA, "kernels": kernels}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=30,
                        help="timing repetitions per kernel")
    parser.add_argument("--json", default=None, help="write the result as JSON")
    parser.add_argument("--trajectory", default=None,
                        help="also append the artefact to this bench "
                        "trajectory file")
    args = parser.parse_args(argv)

    payload = collect(reps=args.reps)
    for name, stats in payload["kernels"].items():
        line = f"{name}: mean {stats['mean_s'] * 1e3:.3f} ms"
        if "batch_speedup" in stats:
            line += (f" (x{stats['stack']} stacked, "
                     f"{stats['batch_speedup']:.2f}x vs loop)")
        print(line)
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.json}")
    if args.trajectory:
        from bench_trajectory import append_record

        record = append_record(args.trajectory, payload)
        print(f"appended run @ {record['commit'][:12]} to {args.trajectory}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
