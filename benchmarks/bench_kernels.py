"""Micro-benchmarks of the computational kernels (real timing runs).

These are the only benches measuring steady-state throughput rather than
regenerating a figure: the batched DTW matcher (the run-time hot path,
Alg. 1), CSI synthesis (Eq. 1) and the sanitiser (Sec. 3.2).
"""

import numpy as np
import pytest

from repro.core.sanitize import sanitize_stream
from repro.dsp.dtw import batched_dtw_distance
from repro.rf.multipath import synthesize_csi


@pytest.fixture(scope="module")
def dtw_inputs():
    rng = np.random.default_rng(0)
    query = rng.uniform(-np.pi, np.pi, 20)
    candidates = rng.uniform(-np.pi, np.pi, (400, 40))
    return query, candidates


def test_batched_dtw_throughput(benchmark, dtw_inputs):
    query, candidates = dtw_inputs
    result = benchmark(batched_dtw_distance, query, candidates, None, "circular")
    assert len(result) == 400


def test_csi_synthesis_throughput(benchmark):
    rng = np.random.default_rng(1)
    lengths = rng.uniform(0.5, 3.0, (5000, 10))
    amps = rng.uniform(0.0, 0.01, (5000, 10))
    wavelengths = 0.123 + 0.0001 * np.arange(30)
    csi = benchmark(synthesize_csi, lengths, amps, wavelengths)
    assert csi.shape == (5000, 30)


def test_sanitizer_throughput(benchmark):
    rng = np.random.default_rng(2)
    csi = rng.normal(size=(5000, 2, 30)) + 1j * rng.normal(size=(5000, 2, 30))
    times = np.linspace(0, 10, 5000)
    series = benchmark(sanitize_stream, times, csi)
    assert len(series) == 5000
