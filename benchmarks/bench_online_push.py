"""Online-tracker ingest/estimate cost (real timing runs).

``OnlineTracker`` keeps its phase/IMU history in preallocated numpy ring
buffers and hands the engine zero-copy views, so per-``push_csi`` cost is
amortised O(1) and per-``estimate()`` cost depends only on the retained
buffer span — never on how long the session has been running.  This
bench measures both and asserts the flatness: a 4x longer session must
not make ``estimate()`` meaningfully slower.
"""

import time

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.online import OnlineTracker
from repro.core.profile import CsiProfile, PositionProfile

RATE_HZ = 400.0
N_RX = 2
N_SUBCARRIERS = 30


def synthetic_profile(num_positions: int = 4) -> CsiProfile:
    """A plausible scan-shaped profile, cheap to build (no RF sim)."""
    profile = CsiProfile(driver="bench")
    n = 1200
    for k in range(num_positions):
        rng = np.random.default_rng(100 + k)
        orientations = np.deg2rad(70.0) * np.sin(np.linspace(0, 14, n))
        phases = 0.012 * np.rad2deg(orientations) + rng.normal(0, 0.002, n)
        profile.add(
            PositionProfile(float(k), 200.0, phases + 0.2 * k, orientations, 0.2 * k)
        )
    return profile


def synthetic_packets(duration_s: float, seed: int = 0):
    """CSI packets whose phase difference sweeps like a turning head."""
    rng = np.random.default_rng(seed)
    times = np.arange(0.0, duration_s, 1.0 / RATE_HZ)
    sweep = 0.8 * np.sin(2.0 * np.pi * 0.4 * times) + rng.normal(0, 0.01, len(times))
    csi = np.empty((len(times), N_RX, N_SUBCARRIERS), dtype=np.complex128)
    csi[:, 0, :] = np.exp(1j * sweep)[:, None]
    csi[:, 1, :] = 1.0
    return times, csi


def _run_session(profile, duration_s, buffer_s=6.0, estimate_stride_s=0.25):
    """Stream one session; returns (per-push seconds, per-estimate seconds)."""
    config = ViHOTConfig(profile_stride=8, num_length_candidates=3)
    tracker = OnlineTracker(profile, config, buffer_s=buffer_s)
    times, csi = synthetic_packets(duration_s)
    push_elapsed = 0.0
    estimate_times = []
    next_estimate = None
    for k in range(len(times)):
        t = float(times[k])
        start = time.perf_counter()
        tracker.push_csi(t, csi[k])
        push_elapsed += time.perf_counter() - start
        if next_estimate is None and tracker.ready():
            next_estimate = t
        if next_estimate is not None and t >= next_estimate:
            start = time.perf_counter()
            tracker.estimate(t)
            estimate_times.append(time.perf_counter() - start)
            next_estimate += estimate_stride_s
    # Steady-state per-estimate cost: drop the warmup half.
    steady = estimate_times[len(estimate_times) // 2 :]
    return push_elapsed / len(times), float(np.mean(steady))


def test_estimate_cost_flat_in_session_length(capsys):
    profile = synthetic_profile()
    # Warm caches (numpy, DTW code paths) off the clock.
    _run_session(profile, 4.0)

    short_push, short_estimate = _run_session(profile, 10.0)
    long_push, long_estimate = _run_session(profile, 40.0)

    with capsys.disabled():
        print()
        print("online tracker cost (ring buffer, zero-copy views)")
        print(f"  10 s session: push {short_push * 1e6:7.1f} us   "
              f"estimate {short_estimate * 1e3:7.2f} ms")
        print(f"  40 s session: push {long_push * 1e6:7.1f} us   "
              f"estimate {long_estimate * 1e3:7.2f} ms")
        print(f"  estimate ratio (40s/10s): {long_estimate / short_estimate:.2f}")

    # Per-push cost is amortised O(1): generous bound for slow CI boxes.
    assert short_push < 2e-3 and long_push < 2e-3
    # Per-estimate cost depends on the buffer span, not the session
    # length: a 4x longer session must stay within noise of the short one.
    assert long_estimate < 3.0 * short_estimate


def test_buffer_view_cost_flat(capsys):
    """Building the engine's phase view is O(buffer), not O(session)."""
    profile = synthetic_profile()
    config = ViHOTConfig()
    costs = {}
    for duration_s in (10.0, 40.0):
        tracker = OnlineTracker(profile, config, buffer_s=6.0)
        times, csi = synthetic_packets(duration_s)
        for k in range(len(times)):
            tracker.push_csi(float(times[k]), csi[k])
        start = time.perf_counter()
        for _ in range(200):
            series = tracker.phase_series()
        costs[duration_s] = (time.perf_counter() - start) / 200
        assert np.shares_memory(series.values, tracker.phase_series().values)
    with capsys.disabled():
        print()
        for duration_s, cost in costs.items():
            print(f"  phase_series() after {duration_s:4.0f} s: {cost * 1e6:6.1f} us")
    assert costs[40.0] < 3.0 * costs[10.0] + 50e-6
