"""The sampling-rate table: 500/400 Hz CSI vs the 30 fps camera."""

from repro.experiments import figures


def test_sampling_rate(benchmark, capsys):
    rates = benchmark.pedantic(
        lambda: figures.sampling_rate(duration_s=10.0), rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\nSampling-rate table:")
        print(f"  CSI clean:      {rates['csi_rate_hz_clean']:6.0f} Hz "
              f"(max gap {rates['max_gap_ms_clean']:.0f} ms)")
        print(f"  CSI interfered: {rates['csi_rate_hz_interfered']:6.0f} Hz "
              f"(max gap {rates['max_gap_ms_interfered']:.0f} ms)")
        print(f"  Camera:         {rates['camera_rate_hz']:6.0f} Hz "
              f"-> {rates['speedup_clean']:.1f}x speedup")
    assert rates["speedup_clean"] > 10.0
    assert rates["max_gap_ms_clean"] <= 34.0 + 1e-6
    assert rates["max_gap_ms_interfered"] <= 49.0 + 1e-6
