"""Serving-layer throughput: sessions x packets/s through the manager.

Drives a fleet of synthetic cabins through ``repro.serve`` (batched
ingestion -> budgeted round-robin scheduling -> metrics) and reports the
aggregate packet throughput and estimate latency percentiles.  The run
also verifies the layer's core contract end-to-end: estimates served
through the manager are bit-identical to a standalone ``OnlineTracker``
fed the same packets, and the default queue depth sheds nothing at the
acceptance fleet size (50 concurrent sessions).

Run as a script for the JSON perf artefact CI accumulates::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke --json BENCH_serve.json

or under pytest (the smoke-scale assertions)::

    PYTHONPATH=src python -m pytest -q benchmarks/bench_serve.py
"""

import argparse
import json
import sys
from pathlib import Path

#: Bumped when the JSON layout changes; the regression gate checks it.
SCHEMA = "vihot-bench-serve/1"

#: Smoke scale: CI-fast but still at the 50-session acceptance floor.
SMOKE = dict(num_sessions=50, duration_s=3.0, rate_hz=100.0, verify_sessions=2)
#: Full scale: what the README quotes.
FULL = dict(num_sessions=100, duration_s=8.0, rate_hz=200.0, verify_sessions=3)
#: Chaos scale: the 50-session acceptance fleet under every injector.
CHAOS = dict(num_sessions=50, duration_s=3.0, rate_hz=100.0)


def run(scale: dict, seed: int = 0, batching: bool = False):
    from repro.serve import run_load

    return run_load(seed=seed, batching=batching, **scale)


def run_comparison(scale: dict, seed: int = 0) -> dict:
    """The batched-vs-sequential artefact: same fleet, both schedulers.

    Returns the combined JSON payload — each run's full measurement,
    plus the headline wall-clock speedup and the batched run's batch
    efficiency (stacked sessions / serving records).
    """
    sequential = run(scale, seed=seed, batching=False)
    batched = run(scale, seed=seed, batching=True)
    served = batched.batched_sessions + batched.fallback_sessions
    return {
        "schema": SCHEMA,
        "sequential": sequential.as_dict(),
        "batched": batched.as_dict(),
        "wall_speedup": sequential.wall_s / batched.wall_s
        if batched.wall_s > 0 else float("inf"),
        "batch_efficiency": batched.batched_sessions / served if served else 0.0,
    }


def run_chaos_scale(scale: dict, seed: int = 0):
    from repro.serve import run_chaos

    return run_chaos(seed=seed, **scale)


def test_serve_smoke(capsys):
    """50 concurrent sessions: zero drops, bit-identical to standalone."""
    result = run(SMOKE)
    with capsys.disabled():
        print()
        print("serve-bench (smoke scale)")
        print(f"  {result.summary()}")
    assert result.sessions >= 50
    assert result.drops == 0
    assert result.bit_identical
    assert result.estimates > 0
    # The metrics line must carry the acceptance signals.
    for needle in ("sessions_live=", "packets_ingested=", "packets_dropped=",
                   "estimate_latency_ms{p50="):
        assert needle in result.metrics_line


def test_serve_batched_smoke(capsys):
    """The batched scheduler at smoke scale: same guarantees, fewer
    engine dispatches."""
    result = run(SMOKE, batching=True)
    with capsys.disabled():
        print()
        print("serve-bench (smoke scale, batched)")
        print(f"  {result.summary()}")
    assert result.drops == 0
    assert result.bit_identical
    assert result.batched_sessions > 0


def test_serve_chaos_smoke(capsys):
    """50 sessions under every injector: contained, degraded, recovered."""
    result = run_chaos_scale(CHAOS)
    with capsys.disabled():
        print()
        print("serve-bench (chaos scale)")
        print(f"  {result.summary()}")
    assert result.unhandled == 0
    assert result.rejected > 0  # NaN storms and corrupt stamps were refused
    assert result.quarantines > 0  # the faults actually bit
    assert result.all_healthy  # ...and the fleet healed itself
    assert result.estimates > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-fast scale")
    parser.add_argument("--chaos", action="store_true",
                        help="fault-injection chaos scenario (fails unless the "
                        "fleet recovers with zero unhandled exceptions)")
    parser.add_argument("--batched", action="store_true",
                        help="serve with the fleet-batched scheduler; with "
                        "--json the artefact always carries both runs")
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--rate", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", default=None, help="write the result as JSON")
    parser.add_argument("--trajectory", default=None,
                        help="also append the artefact to this bench "
                        "trajectory file (requires --json)")
    args = parser.parse_args(argv)
    if args.trajectory and not args.json:
        parser.error("--trajectory requires --json")
    if args.trajectory and args.chaos:
        parser.error("--trajectory tracks the comparison artefact, not chaos")

    if args.chaos:
        scale = dict(CHAOS)
        if args.sessions is not None:
            scale["num_sessions"] = args.sessions
        if args.duration is not None:
            scale["duration_s"] = args.duration
        if args.rate is not None:
            scale["rate_hz"] = args.rate
        chaos = run_chaos_scale(dict(scale, batching=args.batched), seed=args.seed)
        print(chaos.summary())
        print(chaos.metrics_line)
        if args.json:
            payload = {"scale": "chaos", **chaos.as_dict()}
            Path(args.json).write_text(json.dumps(payload, indent=2))
            print(f"wrote {args.json}")
        if chaos.unhandled > 0:
            print(f"FAIL: {chaos.unhandled} exception(s) escaped the serving layer",
                  file=sys.stderr)
            return 1
        if not chaos.all_healthy:
            print(f"FAIL: fleet did not recover: {chaos.final_health}",
                  file=sys.stderr)
            return 1
        return 0

    scale = dict(SMOKE if args.smoke else FULL)
    if args.sessions is not None:
        scale["num_sessions"] = args.sessions
    if args.duration is not None:
        scale["duration_s"] = args.duration
    if args.rate is not None:
        scale["rate_hz"] = args.rate

    if args.json:
        # The artefact is the comparison: same fleet, both schedulers,
        # wall-clock speedup and batch efficiency on top.
        payload = {"scale": "smoke" if args.smoke else "full",
                   **run_comparison(scale, seed=args.seed)}
        for label in ("sequential", "batched"):
            part = payload[label]
            print(f"{label}: {part['session_packets_per_s']:,.0f} "
                  f"session-packets/s, p50 {part['latency_p50_ms']:.2f} ms, "
                  f"p99 {part['latency_p99_ms']:.2f} ms")
        print(f"wall speedup (batched vs sequential): "
              f"{payload['wall_speedup']:.2f}x, "
              f"batch efficiency {payload['batch_efficiency']:.2f}")
        Path(args.json).write_text(json.dumps(payload, indent=2))
        print(f"wrote {args.json}")
        if args.trajectory:
            from bench_trajectory import append_record

            record = append_record(args.trajectory, payload)
            print(f"appended run @ {record['commit'][:12]} to {args.trajectory}")
        ok = payload["sequential"]["bit_identical"] and payload["batched"][
            "bit_identical"]
        drops = payload["sequential"]["drops"] + payload["batched"]["drops"]
    else:
        result = run(scale, seed=args.seed, batching=args.batched)
        print(result.summary())
        print(result.metrics_line)
        ok = result.bit_identical
        drops = result.drops
    if not ok:
        print("FAIL: served estimates differ from standalone replay", file=sys.stderr)
        return 1
    if drops > 0:
        print(f"FAIL: {drops} packets shed at default queue depth",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
