"""Persisted bench trajectories: per-run records with a rolling gate.

The single-artefact gate (``check_bench_regression.py --baseline``)
compares one fresh run against one committed run — simple, but a single
noisy committed sample skews every later comparison.  A *trajectory*
file keeps the last N runs, each stamped with the commit and a UTC
timestamp::

    {
      "schema": "vihot-bench-trajectory/1",
      "runs": [
        {"commit": "…", "timestamp": "…+00:00", "payload": {…}},
        …
      ]
    }

``payload`` is the unmodified schema'd bench artefact (the same dict
``bench_serve.py --json`` / ``bench_kernels.py --json`` writes), so the
regression gate's dotted metric paths resolve inside every record.  The
rolling baseline for a metric is the **median over the window** — one
slow CI runner in the history no longer fails (or masks) anything.

This module is import-shared by the bench scripts and the gate; it has
no repro imports (the trajectory is tooling, not tracking).
"""

import json
import os
import statistics
import subprocess
from datetime import datetime, timezone
from pathlib import Path

TRAJECTORY_SCHEMA = "vihot-bench-trajectory/1"

#: Records kept per trajectory; old runs roll off the back.
DEFAULT_KEEP = 50


def current_commit() -> str:
    """The commit to stamp a record with: CI's ``GITHUB_SHA`` when set,
    otherwise ``git rev-parse HEAD``, otherwise ``"unknown"``."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def utc_timestamp() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def load_trajectory(path) -> dict:
    """The trajectory at ``path`` (an empty one if the file is absent)."""
    path = Path(path)
    if not path.exists():
        return {"schema": TRAJECTORY_SCHEMA, "runs": []}
    payload = json.loads(path.read_text())
    if payload.get("schema") != TRAJECTORY_SCHEMA:
        raise ValueError(
            f"{path} is not a bench trajectory "
            f"(schema {payload.get('schema')!r}, want {TRAJECTORY_SCHEMA!r})"
        )
    return payload


def append_record(
    path,
    payload: dict,
    *,
    commit: str | None = None,
    timestamp: str | None = None,
    keep: int = DEFAULT_KEEP,
) -> dict:
    """Append one bench run to the trajectory at ``path`` and write it.

    Returns the record appended.  The trajectory is trimmed to the most
    recent ``keep`` records; mixing payload schemas in one trajectory is
    refused (that is what the payload ``schema`` field is for).
    """
    trajectory = load_trajectory(path)
    schemas = {
        run["payload"].get("schema")
        for run in trajectory["runs"]
        if isinstance(run.get("payload"), dict)
    }
    if schemas and payload.get("schema") not in schemas:
        raise ValueError(
            f"payload schema {payload.get('schema')!r} does not match the "
            f"trajectory's {sorted(schemas)} — start a new trajectory file"
        )
    record = {
        "commit": commit if commit is not None else current_commit(),
        "timestamp": timestamp if timestamp is not None else utc_timestamp(),
        "payload": payload,
    }
    trajectory["runs"].append(record)
    trajectory["runs"] = trajectory["runs"][-keep:]
    Path(path).write_text(json.dumps(trajectory, indent=2) + "\n")
    return record


def lookup(payload: dict, path: str) -> float:
    """Resolve a dotted path (``sequential.latency_p50_ms``) to a float."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"metric path {path!r} missing at {part!r}")
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise TypeError(f"metric path {path!r} is not numeric: {node!r}")
    return float(node)


def rolling_baseline(
    trajectory: dict, metric_path: str, window: int = 5
) -> float | None:
    """Median of ``metric_path`` over the last ``window`` runs.

    Records missing the metric (older payload schema revisions) are
    skipped; returns ``None`` when no record in the window has it —
    the caller should then fall back to the single-artefact gate.
    """
    values = []
    for run in trajectory["runs"][-window:]:
        try:
            values.append(lookup(run["payload"], metric_path))
        except (KeyError, TypeError):
            continue
    if not values:
        return None
    return float(statistics.median(values))
