"""Perf baseline gate: fail CI when a bench artefact regresses >2x.

Mirrors the dataflow lint's budget gate (``.github/lint_baseline.json``):
the repo commits known-good bench artefacts (``BENCH_kernels.json``,
``BENCH_serve.json`` at the repo root), CI regenerates fresh ones on the
runner, and this script compares the metrics named in
``.github/bench_baseline.json`` — a fresh value more than ``max_ratio``
worse than the committed baseline fails the build.  The generous ratio
absorbs runner-to-runner noise while still catching order-of-magnitude
regressions (an accidentally quadratic DP, a de-vectorised sanitiser).

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline BENCH_kernels.json \
        --fresh bench-fresh/BENCH_kernels.json \
        --config .github/bench_baseline.json

With ``--trajectory`` the gate compares against the **rolling median**
of the last ``--window`` recorded runs instead of one committed
artefact (see ``bench_trajectory.py`` for the file format) — a single
noisy historical sample can no longer fail or mask a regression.
``--append`` records the fresh run into the trajectory after a passing
gate, so the baseline tracks the hardware CI actually runs on::

    python benchmarks/check_bench_regression.py \
        --trajectory benchmarks/trajectories/BENCH_serve.json \
        --fresh bench-fresh/BENCH_serve.json \
        --config .github/bench_baseline.json --append
"""

import argparse
import json
import sys
from pathlib import Path

from bench_trajectory import append_record, load_trajectory, rolling_baseline


def lookup(payload: dict, path: str) -> float:
    """Resolve a dotted path (``kernels.batched_dtw.mean_s``) to a float."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"metric path {path!r} missing at {part!r}")
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise TypeError(f"metric path {path!r} is not numeric: {node!r}")
    return float(node)


def check(baseline: dict, fresh: dict, config: dict) -> list[str]:
    """Compare the configured metrics; returns violation messages."""
    schema = baseline.get("schema")
    if fresh.get("schema") != schema:
        return [
            f"schema mismatch: baseline {schema!r} vs fresh "
            f"{fresh.get('schema')!r} — regenerate the committed artefact"
        ]
    max_ratio = float(config["max_ratio"])
    metrics = config["metrics"].get(schema, [])
    if not metrics:
        return [f"no metrics configured for schema {schema!r}"]
    violations = []
    for metric in metrics:
        path = metric["path"]
        direction = metric.get("direction", "lower_is_better")
        base = lookup(baseline, path)
        new = lookup(fresh, path)
        if base <= 0 or new <= 0:
            continue  # degenerate timings: nothing meaningful to compare
        if direction == "lower_is_better":
            ratio = new / base
        elif direction == "higher_is_better":
            ratio = base / new
        else:
            raise ValueError(f"unknown direction {direction!r} for {path!r}")
        marker = "FAIL" if ratio > max_ratio else "ok"
        print(f"  [{marker}] {path}: baseline {base:.6g}, fresh {new:.6g} "
              f"(x{ratio:.2f} worse-ratio, limit x{max_ratio:.1f})")
        if ratio > max_ratio:
            violations.append(
                f"{path}: fresh {new:.6g} is x{ratio:.2f} worse than "
                f"baseline {base:.6g} (limit x{max_ratio:.1f})"
            )
    return violations


def check_trajectory(
    trajectory: dict, fresh: dict, config: dict, window: int
) -> list[str]:
    """Compare ``fresh`` against the rolling median of the trajectory.

    Metrics with no history in the window are reported and skipped —
    the first few runs of a new trajectory gate nothing, then tighten
    as records accumulate.
    """
    schema = fresh.get("schema")
    max_ratio = float(config["max_ratio"])
    metrics = config["metrics"].get(schema, [])
    if not metrics:
        return [f"no metrics configured for schema {schema!r}"]
    history = len(trajectory["runs"])
    print(f"  rolling window: last {min(window, history)} of "
          f"{history} recorded run(s)")
    violations = []
    for metric in metrics:
        path = metric["path"]
        direction = metric.get("direction", "lower_is_better")
        base = rolling_baseline(trajectory, path, window)
        if base is None:
            print(f"  [new] {path}: no history yet, not gated")
            continue
        new = lookup(fresh, path)
        if base <= 0 or new <= 0:
            continue  # degenerate timings: nothing meaningful to compare
        if direction == "lower_is_better":
            ratio = new / base
        elif direction == "higher_is_better":
            ratio = base / new
        else:
            raise ValueError(f"unknown direction {direction!r} for {path!r}")
        marker = "FAIL" if ratio > max_ratio else "ok"
        print(f"  [{marker}] {path}: rolling median {base:.6g}, fresh "
              f"{new:.6g} (x{ratio:.2f} worse-ratio, limit x{max_ratio:.1f})")
        if ratio > max_ratio:
            violations.append(
                f"{path}: fresh {new:.6g} is x{ratio:.2f} worse than the "
                f"rolling median {base:.6g} (limit x{max_ratio:.1f})"
            )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=None,
                        help="committed bench artefact (known good)")
    parser.add_argument("--fresh", required=True,
                        help="artefact regenerated on this runner")
    parser.add_argument("--config", default=".github/bench_baseline.json")
    parser.add_argument("--trajectory", default=None,
                        help="bench trajectory file: gate against the "
                        "rolling median instead of --baseline")
    parser.add_argument("--window", type=int, default=5,
                        help="trajectory runs in the rolling baseline")
    parser.add_argument("--append", action="store_true",
                        help="record the fresh run into --trajectory "
                        "after a passing gate")
    args = parser.parse_args(argv)
    if args.baseline is None and args.trajectory is None:
        parser.error("need --baseline and/or --trajectory")
    if args.append and args.trajectory is None:
        parser.error("--append requires --trajectory")

    fresh = json.loads(Path(args.fresh).read_text())
    config = json.loads(Path(args.config).read_text())

    violations = []
    if args.baseline is not None:
        baseline = json.loads(Path(args.baseline).read_text())
        print(f"bench regression gate: {args.fresh} vs {args.baseline}")
        violations += check(baseline, fresh, config)
    if args.trajectory is not None:
        print(f"bench trajectory gate: {args.fresh} vs {args.trajectory}")
        violations += check_trajectory(
            load_trajectory(args.trajectory), fresh, config, args.window
        )
    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    if violations:
        return 1
    if args.append:
        record = append_record(args.trajectory, fresh)
        print(f"appended run @ {record['commit'][:12]} "
              f"{record['timestamp']} to {args.trajectory}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
