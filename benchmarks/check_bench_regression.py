"""Perf baseline gate: fail CI when a bench artefact regresses >2x.

Mirrors the dataflow lint's budget gate (``.github/lint_baseline.json``):
the repo commits known-good bench artefacts (``BENCH_kernels.json``,
``BENCH_serve.json`` at the repo root), CI regenerates fresh ones on the
runner, and this script compares the metrics named in
``.github/bench_baseline.json`` — a fresh value more than ``max_ratio``
worse than the committed baseline fails the build.  The generous ratio
absorbs runner-to-runner noise while still catching order-of-magnitude
regressions (an accidentally quadratic DP, a de-vectorised sanitiser).

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline BENCH_kernels.json \
        --fresh bench-fresh/BENCH_kernels.json \
        --config .github/bench_baseline.json
"""

import argparse
import json
import sys
from pathlib import Path


def lookup(payload: dict, path: str) -> float:
    """Resolve a dotted path (``kernels.batched_dtw.mean_s``) to a float."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(f"metric path {path!r} missing at {part!r}")
        node = node[part]
    if not isinstance(node, (int, float)) or isinstance(node, bool):
        raise TypeError(f"metric path {path!r} is not numeric: {node!r}")
    return float(node)


def check(baseline: dict, fresh: dict, config: dict) -> list[str]:
    """Compare the configured metrics; returns violation messages."""
    schema = baseline.get("schema")
    if fresh.get("schema") != schema:
        return [
            f"schema mismatch: baseline {schema!r} vs fresh "
            f"{fresh.get('schema')!r} — regenerate the committed artefact"
        ]
    max_ratio = float(config["max_ratio"])
    metrics = config["metrics"].get(schema, [])
    if not metrics:
        return [f"no metrics configured for schema {schema!r}"]
    violations = []
    for metric in metrics:
        path = metric["path"]
        direction = metric.get("direction", "lower_is_better")
        base = lookup(baseline, path)
        new = lookup(fresh, path)
        if base <= 0 or new <= 0:
            continue  # degenerate timings: nothing meaningful to compare
        if direction == "lower_is_better":
            ratio = new / base
        elif direction == "higher_is_better":
            ratio = base / new
        else:
            raise ValueError(f"unknown direction {direction!r} for {path!r}")
        marker = "FAIL" if ratio > max_ratio else "ok"
        print(f"  [{marker}] {path}: baseline {base:.6g}, fresh {new:.6g} "
              f"(x{ratio:.2f} worse-ratio, limit x{max_ratio:.1f})")
        if ratio > max_ratio:
            violations.append(
                f"{path}: fresh {new:.6g} is x{ratio:.2f} worse than "
                f"baseline {base:.6g} (limit x{max_ratio:.1f})"
            )
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed bench artefact (known good)")
    parser.add_argument("--fresh", required=True,
                        help="artefact regenerated on this runner")
    parser.add_argument("--config", default=".github/bench_baseline.json")
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    fresh = json.loads(Path(args.fresh).read_text())
    config = json.loads(Path(args.config).read_text())

    print(f"bench regression gate: {args.fresh} vs {args.baseline}")
    violations = check(baseline, fresh, config)
    for violation in violations:
        print(f"FAIL: {violation}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
