"""Shared benchmark scaffolding.

Every bench regenerates one of the paper's tables/figures at a reduced
scale (one session, ~10 s run time instead of 10 x 60 s) and prints the
same rows/series the paper plots.  Pass ``--benchmark-only`` as in the
README to run them; the printed tables are the reproduction artefacts.
"""

import numpy as np
import pytest

#: Reduced campaign scale used by all campaign-style benches.
CAMPAIGN = dict(num_sessions=1, runtime_duration_s=10.0, seed=0)


def print_summaries(capsys, title, result, key_format=str):
    """Render an arm->summary dict as the paper's figure rows."""
    from repro.experiments.report import format_summary_table

    rows = {key_format(k): v["summary"] for k, v in result.items()}
    with capsys.disabled():
        print()
        print(format_summary_table(rows, title=title))
    return rows


def print_cdfs(capsys, result, key_format=str):
    """Render arm CDFs at the grid points the paper's plots emphasise."""
    from repro.experiments.report import format_cdf_rows

    with capsys.disabled():
        for k, v in result.items():
            print(format_cdf_rows(key_format(k), v["grid_deg"], v["cdf"]))


def medians(result):
    return {k: v["summary"].median_deg for k, v in result.items()}
