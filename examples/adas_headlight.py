#!/usr/bin/env python
"""ADAS: steer the headlights where the driver is looking.

One of the paper's motivating ADAS uses (Sec. 1): "at a corner-side of
night time, the car's headlight can follow driver's head orientation
before making a sharp turn to avoid blind spots".  This example drives a
glance-heavy night scenario with real steering, and feeds ViHOT's output
into a simple headlight servo (rate-limited swivel).  It reports how well
the beam follows the driver's gaze, and how often the steering identifier
had to fall back to the (night-degraded) camera.

Run:  python examples/adas_headlight.py
"""

import numpy as np

from repro import ViHOTConfig, build_scenario, run_profiling
from repro.core.tracker import ViHOTTracker
from repro.experiments.metrics import summarize_errors
from repro.sensors.camera import CameraConfig, CameraTracker

#: Headlight swivel servo limits (production adaptive headlights: ~30 deg/s).
SERVO_RATE_RAD_S = np.deg2rad(40.0)
SERVO_RANGE_RAD = np.deg2rad(25.0)


def servo_track(times: np.ndarray, commands: np.ndarray) -> np.ndarray:
    """Rate- and range-limited beam angle following the commands."""
    beam = np.zeros_like(commands)
    for k in range(1, len(times)):
        dt = times[k] - times[k - 1]
        target = np.clip(commands[k], -SERVO_RANGE_RAD, SERVO_RANGE_RAD)
        step = np.clip(target - beam[k - 1], -SERVO_RATE_RAD_S * dt, SERVO_RATE_RAD_S * dt)
        beam[k] = beam[k - 1] + step
    return beam


def main() -> None:
    scenario = build_scenario(
        seed=5,
        runtime_duration_s=25.0,
        runtime_motion="glance",
        steering="turns",  # the car actually corners
    )
    print("Profiling driver A (done once, parked)...")
    profile = run_profiling(scenario)

    print("Night drive with cornering; camera is the degraded fallback...")
    stream, scene = scenario.runtime_capture(0)
    night_camera = CameraTracker(
        scene, CameraConfig(light_level=0.25), rng=np.random.default_rng(55)
    )
    tracker = ViHOTTracker(profile, ViHOTConfig(), camera=night_camera)
    result = tracker.process(stream, estimate_stride_s=0.05)

    truth_stream = scenario.headset_truth(scene, float(stream.times[-1]) + 0.1)
    truth = truth_stream.interp(result.target_times)
    active = result.target_times > scenario.config.runtime_front_hold_s

    gaze_errors = np.abs(np.rad2deg(result.orientations - truth))[active]
    print(f"  gaze tracking: {summarize_errors(gaze_errors)}")
    print(f"  estimates from CSI: {result.mode_fraction('csi'):.0%}, "
          f"camera fallback during turns: {result.mode_fraction('fallback'):.0%}")

    beam = servo_track(result.target_times, result.orientations)
    want = np.clip(truth, -SERVO_RANGE_RAD, SERVO_RANGE_RAD)
    beam_errors = np.abs(np.rad2deg(beam - want))[active]
    print(f"  headlight beam vs gaze (servo-limited): "
          f"{summarize_errors(beam_errors)}")

    glance = np.abs(np.rad2deg(truth)) > 20.0
    covered = glance[active] & (beam_errors < 10.0)
    if glance[active].sum():
        coverage = covered.sum() / glance[active].sum()
        print(f"  beam within 10 deg of an off-axis glance: {coverage:.0%} "
              "of glance time")


if __name__ == "__main__":
    main()
