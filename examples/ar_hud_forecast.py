#!/usr/bin/env python
"""AR head-up display: mask rendering latency with predictive tracking.

The paper's motivating application (Sec. 5.2.1): an in-vehicle AR system
needs the head pose *at display time*, not at sensing time — rendering a
frame takes tens to hundreds of milliseconds, so the tracker must predict
ahead (speculative rendering, as in Outatime/Flashback).

This example runs the same drive twice:

* a non-predictive tracker whose estimates are consumed one rendering
  latency late (what the HUD would actually show), and
* ViHOT's Eq. (6) forecaster predicting one rendering latency ahead.

The printed table is the practical payoff of Fig. 10: forecasting beats
stale-but-accurate estimates once rendering latency is real.

Run:  python examples/ar_hud_forecast.py
"""

import numpy as np

from repro import ViHOTConfig, build_scenario, run_profiling, run_tracking_session
from repro.experiments.metrics import summarize_errors

RENDER_LATENCY_S = 0.2  # a mid-range AR rendering pipeline


def main() -> None:
    scenario = build_scenario(
        seed=3,
        runtime_duration_s=20.0,
        runtime_motion="scan",  # continuous checking of the roadside
    )
    print("Profiling driver A...")
    profile = run_profiling(scenario)

    print(f"Simulating a HUD with {RENDER_LATENCY_S * 1000:.0f} ms render latency...")

    # Arm 1: track now, display late.  The estimate for time t is shown
    # at t + latency, when the head has already moved on.
    tracked = run_tracking_session(
        scenario, profile, ViHOTConfig(horizon_s=0.0), estimate_stride_s=0.05
    )
    stream, scene = scenario.runtime_capture(0)
    truth_stream = scenario.headset_truth(scene, float(stream.times[-1]) + 0.5)
    display_times = tracked.tracking.times + RENDER_LATENCY_S
    stale_truth = truth_stream.interp(display_times)
    stale_errors = np.abs(np.rad2deg(tracked.tracking.orientations - stale_truth))

    # Arm 2: forecast the pose at display time (Eq. 6).
    predictive = run_tracking_session(
        scenario,
        profile,
        ViHOTConfig(horizon_s=RENDER_LATENCY_S),
        estimate_stride_s=0.05,
    )

    active = tracked.tracking.times > scenario.config.runtime_front_hold_s
    print("\nHead-pose error at *display* time (deg):")
    print(f"  track-then-display-late : {summarize_errors(stale_errors[active])}")
    active_p = predictive.tracking.times > scenario.config.runtime_front_hold_s
    print(f"  ViHOT forecast (Eq. 6)  : "
          f"{summarize_errors(predictive.errors_deg[active_p])}")

    stale = float(np.median(stale_errors[active]))
    forecast = predictive.summary().median_deg
    if forecast < stale:
        print(f"\nForecasting wins: {stale:.1f} -> {forecast:.1f} deg median "
              f"at {RENDER_LATENCY_S * 1000:.0f} ms latency.")
    else:
        print("\nForecasting did not win on this seed "
              "(short session; try a longer runtime_duration_s).")


if __name__ == "__main__":
    main()
