#!/usr/bin/env python
"""Compare ViHOT against the camera and against simpler CSI matchers.

Reproduces, in one script, the system-level comparisons the paper makes
in prose: sampling rate (>10x a camera), robustness at high head-turning
speed (no motion blur, Sec. 2.2), and the value of DTW series matching
over rigid fingerprinting.

Run:  python examples/compare_baselines.py
"""

import numpy as np

from repro import ViHOTConfig, build_scenario, run_profiling, run_tracking_session
from repro.baselines.camera_only import CameraOnlyTracker
from repro.baselines.nearest import NearestFingerprintTracker
from repro.experiments.metrics import summarize_errors
from repro.sensors.camera import CameraConfig


def evaluate(label, result_times, orientations, scenario, scene):
    truth_stream = scenario.headset_truth(scene, float(result_times[-1]) + 0.1)
    truth = truth_stream.interp(result_times)
    active = result_times > scenario.config.runtime_front_hold_s
    errors = np.abs(np.rad2deg(np.asarray(orientations) - truth))[active]
    print(f"  {label:28s} {summarize_errors(errors)}")
    return errors


def main() -> None:
    # A fast-turning drive: 150 deg/s shoulder checks — where cameras blur.
    scenario = build_scenario(
        seed=21,
        runtime_duration_s=20.0,
        runtime_motion="scan",
        runtime_turn_speed=np.deg2rad(150.0),
    )
    print("Profiling driver A...")
    profile = run_profiling(scenario)
    stream, scene = scenario.runtime_capture(0)

    print(f"\nFast head turning at 150 deg/s "
          f"(CSI sampling {len(stream) / (stream.times[-1] - stream.times[0]):.0f} Hz):")

    vihot = run_tracking_session(scenario, profile, ViHOTConfig(),
                                 estimate_stride_s=0.05)
    evaluate("ViHOT (DTW series match)", vihot.tracking.target_times,
             vihot.tracking.orientations, scenario, scene)

    rigid = NearestFingerprintTracker(profile, ViHOTConfig()).process(
        stream, estimate_stride_s=0.05
    )
    evaluate("rigid nearest-window", rigid.target_times, rigid.orientations,
             scenario, scene)

    daytime = CameraOnlyTracker(scene, rng=np.random.default_rng(0))
    cam = daytime.process(0.0, float(stream.times[-1]))
    evaluate("camera 30 fps (daylight)", cam.target_times, cam.orientations,
             scenario, scene)

    night = CameraOnlyTracker(
        scene, CameraConfig(light_level=0.2), rng=np.random.default_rng(0)
    )
    cam_night = night.process(0.0, float(stream.times[-1]))
    evaluate("camera 30 fps (night)", cam_night.target_times,
             cam_night.orientations, scenario, scene)

    csi_rate = len(stream) / (stream.times[-1] - stream.times[0])
    cam_rate = daytime.sampling_rate_hz(0.0, float(stream.times[-1]))
    print(f"\nSampling rates: CSI {csi_rate:.0f} Hz vs camera {cam_rate:.0f} Hz "
          f"-> {csi_rate / cam_rate:.0f}x (paper claims >10x)")


if __name__ == "__main__":
    main()
