#!/usr/bin/env python
"""Profile persistence and re-seating: the Sec. 5.2.4 maintenance story.

ViHOT's profile is built once and reused across trips.  This example

1. profiles a driver and saves the profile to disk (the `.npz` a real
   deployment would keep on the head unit),
2. reloads it in a "new trip" where the driver has re-seated (their head
   sits ~1.5 cm from where it was profiled), and
3. shows the graceful degradation the paper reports — and that adding the
   new trip's data back into the profile ("ViHOT also allows to keep
   updating a driver's CSI profile ... after each trip") wins it back.

Run:  python examples/profile_persistence.py
"""

import tempfile
from pathlib import Path

from repro import (
    CsiProfile,
    ViHOTConfig,
    build_scenario,
    run_profiling,
    run_tracking_session,
)
from repro.core.profiling import build_position_profile
from repro.dsp.series import TimeSeries


def main() -> None:
    base = build_scenario(seed=8, runtime_duration_s=15.0)
    print("Trip 1: profiling and saving the driver's CSI profile...")
    profile = run_profiling(base)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "driver_a_profile.npz"
        profile.save(path)
        print(f"  saved {len(profile)} positions to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB)")

        print("\nTrip 2 (a week later): reload the profile, driver re-seated...")
        loaded = CsiProfile.load(path)
        reseated = build_scenario(
            seed=80,
            runtime_duration_s=15.0,
            reseat_offset_m=0.015,
            reseat_height_m=0.005,
        )
        stale = run_tracking_session(reseated, loaded, ViHOTConfig(),
                                     estimate_stride_s=0.05)
        print(f"  week-old profile : {stale.summary()}")

        print("\nUpdating the profile with a fresh scan at the new posture...")
        # One quick extra profiling position captured at today's seating.
        scene = reseated.runtime_scene(0)
        fresh_scan = build_scenario(
            seed=81,
            num_positions=1,
            runtime_lean_m=reseated.config.runtime_lean_m,
        )
        scan_scene = fresh_scan.profiling_scene(0)
        scan_scene.driver_positions = scene.driver_positions
        link = fresh_scan._link(scan_scene, 60)
        total = (fresh_scan.config.profile_front_hold_s
                 + fresh_scan.config.profile_seconds)
        stream = link.capture(0.0, total, with_imu=False)
        truth = TimeSeries(stream.times, scan_scene.driver_yaw(stream.times))
        loaded.add(
            build_position_profile(
                stream, truth,
                label=99.0,  # today's posture
                front_hold_s=fresh_scan.config.profile_front_hold_s,
            )
        )
        loaded.save(path)

        updated = run_tracking_session(reseated, loaded, ViHOTConfig(),
                                       estimate_stride_s=0.05)
        print(f"  updated profile  : {updated.summary()}")

    if updated.summary().median_deg <= stale.summary().median_deg:
        print("\nAdding the fresh position recovered the accuracy, as the "
              "paper's per-trip profile updates intend.")


if __name__ == "__main__":
    main()
