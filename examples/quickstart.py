#!/usr/bin/env python
"""Quickstart: profile a driver, track a drive, report the accuracy.

This walks the full ViHOT pipeline on the simulated cabin:

1. build a scenario (the car, the driver, the WiFi link);
2. run the position-orientation joint profiling pass (Sec. 3.3) —
   the driver leans through 10 head positions, sweeping the head at each;
3. capture a run-time driving session and track it with DTW series
   matching (Sec. 3.4);
4. compare against the headset ground truth, the paper's metric.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ViHOTConfig, build_scenario, run_profiling, run_tracking_session


def main() -> None:
    print("Building the cabin scenario (driver A, Layout 1 antennas)...")
    scenario = build_scenario(
        seed=1,
        driver="A",
        num_positions=10,
        profile_seconds=8.0,
        runtime_duration_s=20.0,
        runtime_motion="glance",  # naturalistic mirror checks and glances
    )

    print("Profiling: 10 head positions x ~9.5 s of head scanning...")
    profile = run_profiling(scenario)
    fingerprints = np.round(profile.phi0_fingerprints(), 3)
    print(f"  profiled {len(profile)} positions; "
          f"facing-front fingerprints phi0(i) = {fingerprints}")

    print("Tracking a 20 s drive (100 ms window, 0 ms horizon)...")
    session = run_tracking_session(
        scenario, profile, ViHOTConfig(), estimate_stride_s=0.05
    )

    print(f"  {len(session.tracking)} estimates "
          f"({session.tracking.mode_fraction('csi'):.0%} from CSI matching)")
    print(f"  angular deviation vs headset truth: {session.summary()}")

    print("\nSample of the track (time, estimate, truth):")
    times = session.tracking.target_times
    est = np.rad2deg(session.tracking.orientations)
    truth = np.rad2deg(session.truth_yaw)
    for k in range(0, len(times), max(1, len(times) // 12)):
        print(f"  t={times[k]:5.2f}s  est={est[k]:+7.1f} deg  "
              f"truth={truth[k]:+7.1f} deg")


if __name__ == "__main__":
    main()
