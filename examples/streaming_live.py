#!/usr/bin/env python
"""Streaming tracking: the push-style API a head unit would drive.

The batch `ViHOTTracker.process` is for logged sessions; a deployed
system receives one CSI report per WiFi packet (~500/s) and needs an
estimate whenever the HUD asks.  This example replays a simulated capture
*packet by packet* through :class:`repro.core.online.OnlineTracker`,
prints a live-ish dashboard with terminal sparklines, and reports the
per-estimate latency of the streaming path.

Run:  python examples/streaming_live.py
"""

import time

import numpy as np

from repro import ViHOTConfig, build_scenario, run_profiling
from repro.core.online import OnlineTracker
from repro.experiments.plots import sparkline


def main() -> None:
    scenario = build_scenario(seed=9, runtime_duration_s=16.0, runtime_motion="scan")
    print("Profiling driver A (batch, once)...")
    profile = run_profiling(scenario)

    print("Streaming the drive packet-by-packet through OnlineTracker...")
    stream, scene = scenario.runtime_capture(0)
    tracker = OnlineTracker(profile, ViHOTConfig())

    estimates = []
    latencies = []
    imu_index = 0
    next_estimate = None
    for k in range(len(stream)):
        t = float(stream.times[k])
        if stream.imu is not None:
            while (imu_index < len(stream.imu)
                   and stream.imu.times[imu_index] <= t):
                tracker.push_imu(
                    float(stream.imu.times[imu_index]),
                    float(np.asarray(stream.imu.values)[imu_index]),
                )
                imu_index += 1
        tracker.push_csi(t, stream.csi[k])

        if next_estimate is None and tracker.ready():
            next_estimate = t
        if next_estimate is not None and t >= next_estimate:
            wall = time.perf_counter()
            estimate = tracker.estimate(t)
            latencies.append(time.perf_counter() - wall)
            next_estimate += 0.05
            if estimate is not None:
                estimates.append(estimate)

    times = np.array([e.target_time for e in estimates])
    est_deg = np.rad2deg(np.array([e.orientation for e in estimates]))
    truth_deg = np.rad2deg(scene.driver_yaw(times))
    err = np.abs(est_deg - truth_deg)
    active = times > scenario.config.runtime_front_hold_s

    print(f"\n  estimate  {sparkline(est_deg, 64)}")
    print(f"  truth     {sparkline(truth_deg, 64)}")
    print(f"  |error|   {sparkline(err, 64)}")
    print(f"\n{len(estimates)} streaming estimates; median error "
          f"{np.median(err[active]):.1f} deg, p90 {np.percentile(err[active], 90):.1f} deg")
    print(f"per-estimate compute: median {np.median(latencies) * 1000:.1f} ms, "
          f"p95 {np.percentile(latencies, 95) * 1000:.1f} ms "
          f"(budget at 20 Hz output: 50 ms)")


if __name__ == "__main__":
    main()
