"""ViHOT — wireless CSI-based head tracking in the driver seat.

A full reproduction of the CoNEXT 2018 paper, including the in-cabin RF
simulator that stands in for the Intel 5300 testbed (see DESIGN.md for
the substitution rationale).

Quickstart::

    from repro import build_scenario, run_profiling, run_campaign

    scenario = build_scenario(seed=0)
    profile = run_profiling(scenario)          # Sec. 3.3 profiling pass
    campaign = run_campaign(scenario, profile=profile)
    print(campaign.summary())                  # median angular error etc.

The layers, bottom-up: :mod:`repro.geometry` and :mod:`repro.dsp`
(math), :mod:`repro.rf` (channel physics), :mod:`repro.cabin` (the car
world), :mod:`repro.sensors` and :mod:`repro.net` (measurement front
ends), :mod:`repro.core` (the ViHOT system itself),
:mod:`repro.baselines` and :mod:`repro.experiments` (evaluation).
"""

from repro.core.config import ViHOTConfig
from repro.core.profile import CsiProfile, PositionProfile
from repro.core.profiling import ProfileBuilder, build_position_profile
from repro.core.diagnostics import TrackingHealth, diagnose, should_reprofile
from repro.core.fusion import FusedTracker, FusionConfig
from repro.core.online import OnlineTracker
from repro.core.quality import ProfileQuality, assess_profile
from repro.core.tracker import Estimate, TrackingResult, ViHOTTracker
from repro.experiments.runner import (
    CampaignResult,
    SessionResult,
    run_campaign,
    run_profiling,
    run_tracking_session,
)
from repro.experiments.scenarios import (
    DRIVERS,
    Scenario,
    ScenarioConfig,
    build_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "ViHOTConfig",
    "CsiProfile",
    "PositionProfile",
    "ProfileBuilder",
    "build_position_profile",
    "ViHOTTracker",
    "TrackingResult",
    "Estimate",
    "OnlineTracker",
    "FusedTracker",
    "FusionConfig",
    "TrackingHealth",
    "diagnose",
    "should_reprofile",
    "ProfileQuality",
    "assess_profile",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "DRIVERS",
    "run_profiling",
    "run_tracking_session",
    "run_campaign",
    "CampaignResult",
    "SessionResult",
    "__version__",
]
