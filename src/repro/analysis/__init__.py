"""Project-specific static analysis: the determinism and contract lint.

ViHOT's serving layer re-verifies on every run that served estimates are
bit-identical to a standalone replay (``repro.serve.loadgen``).  That
property only holds because nothing in the estimation path reads global
entropy or a clock.  This package makes the contract machine-checked:
an AST-based rule engine (:mod:`repro.analysis.engine`) walks the
source tree and reports any construct that could silently break replay
determinism (:mod:`repro.analysis.determinism`) or the package's typing
/ API contracts (:mod:`repro.analysis.contracts`).

Run it as ``vihot lint``; CI runs it as a blocking job.  See
``docs/static-analysis.md`` for the rule catalogue and the suppression
mechanism (``# vihot: noqa[RULE]`` plus the reviewed allowlist in
:mod:`repro.analysis.config`).
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.analysis.config import (
    DEFAULT_ALLOWLIST,
    concurrency_rules,
    dataflow_rules,
    default_rules,
    shape_rules,
)
from repro.analysis.engine import (
    Allowlist,
    AllowlistEntry,
    Analyzer,
    Finding,
    ModuleContext,
    ProjectRule,
    Rule,
    Severity,
)

__all__ = [
    "Allowlist",
    "AllowlistEntry",
    "Analyzer",
    "DEFAULT_ALLOWLIST",
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Severity",
    "concurrency_rules",
    "dataflow_rules",
    "default_rules",
    "run_analysis",
    "shape_rules",
]


def run_analysis(
    paths: Sequence[str | Path] | None = None,
    use_default_allowlist: bool = True,
    dataflow: bool = False,
    shapes: bool = False,
    concurrency: bool = False,
    cache_dir: str | Path | None = None,
) -> list[Finding]:
    """Lint ``paths`` (default: the installed ``repro`` tree) and return findings.

    Thin convenience wrapper over :class:`Analyzer` used by the CLI and
    the test suite.  ``dataflow=True`` adds the inter-procedural VH3xx /
    VH4xx rules (phase-domain tracking, numpy aliasing); ``shapes=True``
    adds the VH5xx array shape/dtype rules; ``concurrency=True`` adds
    the VH6xx process-safety rules; ``cache_dir`` persists the shared
    call-graph summaries between runs.
    """
    if paths is None:
        paths = [Path(__file__).resolve().parent.parent]
    allowlist = DEFAULT_ALLOWLIST if use_default_allowlist else Allowlist()
    rules = (
        default_rules()
        + (dataflow_rules() if dataflow else [])
        + (shape_rules() if shapes else [])
        + (concurrency_rules() if concurrency else [])
    )
    analyzer = Analyzer(rules, allowlist=allowlist, cache_dir=cache_dir)
    return analyzer.run([Path(p) for p in paths])
