"""Numpy aliasing rules (VH4xx): in-place mutation of borrowed arrays.

Numpy makes sharing cheap and mutation silent: ``b = a[::2]`` is a view,
``a += x`` writes through whatever ``a`` aliases, and ``np.add(x, y,
out=a)`` clobbers ``a`` without a single assignment statement.  Inside a
function, any array *parameter* — and any view derived from one — is a
buffer the **caller** owns; mutating it is a side effect the signature
does not advertise, and it is exactly the bug class that made the fused
tracker's forecast cache go stale once.

The pass tracks a borrowed-set per function:

* every parameter starts *borrowed*;
* view-producing expressions keep borrowed-ness (``x[...]``, ``x.T``,
  ``x.reshape(...)``, ``np.asarray(x)``, plain ``y = x`` rebinding);
* copying expressions transfer ownership (``x.copy()``, ``np.array(x)``,
  arithmetic results, ``np.sort(x)``) — mutating those is fine.

Flagged sinks: subscript stores (``x[i] = ...``, ``x[i] += ...``),
augmented assignment to an array-annotated name (``x += ...``), the
``out=`` keyword, and the mutating ndarray methods (``sort``, ``fill``,
``put``, ``partition``, ``resize``).  Direct parameters report as VH401,
views of parameters as VH402.

To keep scalar counters (``count += 1``) out of the findings, the bare
``name += ...`` form only fires when the parameter's annotation is
array-like (``np.ndarray`` / ``NDArray`` / ``ArrayLike``, possibly under
``Annotated``); subscript stores and ``out=`` fire on any borrowed name
because those spellings already imply an array.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.engine import Finding, ProjectRule, Severity

if TYPE_CHECKING:
    from repro.analysis.callgraph import FunctionInfo, ProjectContext

__all__ = ["ParamMutationRule", "ViewMutationRule"]

_MEMO_KEY = "aliasing.events"

#: ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = frozenset(
    {"sort", "fill", "put", "partition", "resize", "setflags", "byteswap"}
)

#: Annotation names that mark a parameter as an array (walked through
#: ``Annotated``/``Optional`` wrappers syntactically).
_ARRAY_ANNOTATION_NAMES = frozenset({"ndarray", "NDArray", "ArrayLike"})

#: Calls that return a *view* (or the argument itself): borrowed-ness
#: propagates through them.
_VIEW_CALLS = frozenset(
    {
        "numpy.asarray",
        "numpy.atleast_1d",
        "numpy.atleast_2d",
        "numpy.ravel",
        "numpy.reshape",
        "numpy.squeeze",
        "numpy.broadcast_to",
        "numpy.swapaxes",
        "numpy.moveaxis",
        "numpy.transpose",
    }
)

#: ndarray methods returning views of the receiver.  ``astype`` copies
#: by default and is handled separately: only ``astype(..., copy=False)``
#: may alias the receiver.
_VIEW_METHODS = frozenset(
    {"reshape", "ravel", "squeeze", "view", "transpose", "swapaxes"}
)

#: Attributes of an ndarray that alias its buffer.
_VIEW_ATTRS = frozenset({"T", "real", "imag", "flat"})


@dataclass(frozen=True)
class _Borrow:
    """Why a local name aliases caller-owned memory."""

    param: str  # the parameter at the root of the alias chain
    direct: bool  # True: the parameter itself; False: a view of it
    origin: str  # trace step describing how the alias arose


@dataclass(frozen=True)
class _Event:
    rule: str
    path: str
    line: int
    col: int
    message: str
    trace: tuple[str, ...]


def _annotation_is_array(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Attribute) and node.attr in _ARRAY_ANNOTATION_NAMES:
            return True
        if isinstance(node, ast.Name) and node.id in _ARRAY_ANNOTATION_NAMES:
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotations: "np.ndarray" etc.
            if any(name in node.value for name in _ARRAY_ANNOTATION_NAMES):
                return True
    return False


class _AliasPass:
    """One function body: track borrowed names, flag mutations."""

    def __init__(self, info: "FunctionInfo", project: "ProjectContext") -> None:
        self.info = info
        self.project = project
        self.module = project.module_of(info)
        self.events: list[_Event] = []
        self.borrowed: dict[str, _Borrow] = {}
        self.array_params: frozenset[str] = self._array_params()
        where = f"{self.module.rel_path}:{info.node.lineno}"
        for name in (*info.positional, *info.kwonly):
            self.borrowed[name] = _Borrow(
                param=name,
                direct=True,
                origin=f"{where}: `{name}` is a parameter of `{info.qualname}`",
            )

    def _array_params(self) -> frozenset[str]:
        args = self.info.node.args
        return frozenset(
            arg.arg
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            if _annotation_is_array(arg.annotation)
        )

    # ------------------------------------------------------------ plumbing

    def _where(self, node: ast.AST) -> str:
        return f"{self.module.rel_path}:{getattr(node, 'lineno', self.info.node.lineno)}"

    def _emit(self, node: ast.AST, borrow: _Borrow, sink: str) -> None:
        rule = "VH401" if borrow.direct else "VH402"
        subject = (
            f"parameter `{borrow.param}`"
            if borrow.direct
            else f"view of parameter `{borrow.param}`"
        )
        self.events.append(
            _Event(
                rule=rule,
                path=self.module.rel_path,
                line=getattr(node, "lineno", self.info.node.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                message=(
                    f"in-place mutation of {subject} via {sink}: the caller "
                    "owns this buffer and the signature does not advertise "
                    "the write; copy first (`np.array(x)` / `x.copy()`) or "
                    "document the contract"
                ),
                trace=(borrow.origin, f"{self._where(node)}: mutated via {sink}"),
            )
        )

    # --------------------------------------------------- borrow propagation

    def _borrow_of(self, node: ast.expr) -> _Borrow | None:
        """Borrow record for the buffer ``node`` evaluates to, if any."""
        if isinstance(node, ast.Name):
            return self.borrowed.get(node.id)
        if isinstance(node, ast.Subscript):
            root = self._borrow_of(node.value)
            return self._as_view(root, node) if root is not None else None
        if isinstance(node, ast.Attribute):
            if node.attr in _VIEW_ATTRS:
                root = self._borrow_of(node.value)
                return self._as_view(root, node) if root is not None else None
            return None
        if isinstance(node, ast.Call):
            name = self.module.call_name(node)
            canonical = (
                self.project.canonical_call(name, module=self.info.module)
                if name is not None
                else None
            )
            if canonical in _VIEW_CALLS and node.args:
                root = self._borrow_of(node.args[0])
                return self._as_view(root, node) if root is not None else None
            func = node.func
            if isinstance(func, ast.Attribute) and (
                func.attr in _VIEW_METHODS
                or (func.attr == "astype" and _astype_may_alias(node))
            ):
                root = self._borrow_of(func.value)
                return self._as_view(root, node) if root is not None else None
            return None
        if isinstance(node, ast.IfExp):
            return self._borrow_of(node.body) or self._borrow_of(node.orelse)
        return None

    def _as_view(self, root: _Borrow, node: ast.AST) -> _Borrow:
        return _Borrow(
            param=root.param,
            direct=False,
            origin=f"{self._where(node)}: view of `{root.param}` "
            f"({ast.unparse(node) if hasattr(ast, 'unparse') else 'expr'})",
        )

    # ---------------------------------------------------------- statements

    def run(self) -> None:
        self._run_body(self.info.node.body)

    def _run_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._run_stmt(stmt)

    def _run_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._check_out_kw(stmt.value)
            for target in stmt.targets:
                self._check_store(target, sink="subscript assignment")
                if isinstance(target, ast.Name):
                    self._rebind(target.id, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._check_out_kw(stmt.value)
                if isinstance(stmt.target, ast.Name):
                    self._rebind(stmt.target.id, stmt.value)
            self._check_store(stmt.target, sink="subscript assignment")
        elif isinstance(stmt, ast.AugAssign):
            self._check_out_kw(stmt.value)
            target = stmt.target
            if isinstance(target, ast.Name):
                borrow = self.borrowed.get(target.id)
                if borrow is not None and (
                    not borrow.direct or borrow.param in self.array_params
                ):
                    self._emit(stmt, borrow, sink=f"`{target.id} {_op(stmt.op)}= ...`")
            else:
                self._check_store(target, sink=f"`{_op(stmt.op)}=` through a subscript")
        elif isinstance(stmt, ast.Expr):
            self._check_call_effects(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_out_kw(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._run_body(stmt.body)
            self._run_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            if isinstance(stmt.target, ast.Name):
                # Iterating rows of a borrowed 2-D array yields views.
                root = self._borrow_of(stmt.iter)
                if root is not None:
                    self.borrowed[stmt.target.id] = self._as_view(root, stmt)
                else:
                    self.borrowed.pop(stmt.target.id, None)
            self._run_body(stmt.body)
            self._run_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            self._run_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._run_body(stmt.body)
            for handler in stmt.handlers:
                self._run_body(handler.body)
            self._run_body(stmt.orelse)
            self._run_body(stmt.finalbody)

    def _rebind(self, name: str, value: ast.expr) -> None:
        borrow = self._borrow_of(value)
        if borrow is not None:
            # ``y = x`` / ``y = x[...]`` alias the caller buffer under a
            # new name; anything else (copy, arithmetic) owns its result.
            self.borrowed[name] = borrow
        else:
            self.borrowed.pop(name, None)

    def _check_store(self, target: ast.expr, sink: str) -> None:
        if isinstance(target, ast.Subscript):
            borrow = self._borrow_of(target.value)
            if borrow is not None:
                self._emit(target, borrow, sink=sink)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element, sink=sink)

    def _check_out_kw(self, node: ast.expr) -> None:
        for child in ast.walk(node):
            if not isinstance(child, ast.Call):
                continue
            for kw in child.keywords:
                if kw.arg != "out":
                    continue
                targets = (
                    kw.value.elts
                    if isinstance(kw.value, (ast.Tuple, ast.List))
                    else [kw.value]
                )
                for target in targets:
                    borrow = self._borrow_of(target)
                    if borrow is not None:
                        self._emit(child, borrow, sink="`out=` keyword")

    def _check_call_effects(self, node: ast.expr) -> None:
        self._check_out_kw(node)
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            borrow = self._borrow_of(func.value)
            if borrow is not None:
                self._emit(node, borrow, sink=f"`.{func.attr}()`")


def _astype_may_alias(node: ast.Call) -> bool:
    for kw in node.keywords:
        if kw.arg == "copy" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


def _op(op: ast.operator) -> str:
    return {
        ast.Add: "+",
        ast.Sub: "-",
        ast.Mult: "*",
        ast.Div: "/",
        ast.FloorDiv: "//",
        ast.Mod: "%",
        ast.Pow: "**",
        ast.MatMult: "@",
        ast.BitAnd: "&",
        ast.BitOr: "|",
        ast.BitXor: "^",
        ast.LShift: "<<",
        ast.RShift: ">>",
    }.get(type(op), "?")


def _alias_events(project: "ProjectContext") -> list[_Event]:
    cached = project.memo.get(_MEMO_KEY)
    if cached is not None:
        return cached  # type: ignore[return-value]
    events: list[_Event] = []
    seen: set[tuple[str, int, int, str, str]] = set()
    for info in project.functions.values():
        pass_ = _AliasPass(info, project)
        pass_.run()
        for event in pass_.events:
            key = (event.path, event.line, event.col, event.rule, event.message)
            if key not in seen:
                seen.add(key)
                events.append(event)
    events.sort(key=lambda e: (e.path, e.line, e.col, e.rule))
    project.memo[_MEMO_KEY] = events
    return events


class _AliasRuleBase(ProjectRule):
    severity = Severity.ERROR

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        for event in _alias_events(project):
            if event.rule == self.id:
                yield Finding(
                    path=event.path,
                    line=event.line,
                    col=event.col,
                    rule=self.id,
                    severity=self.severity,
                    message=event.message,
                    trace=event.trace,
                )


class ParamMutationRule(_AliasRuleBase):
    id = "VH401"
    name = "param-inplace-mutation"
    description = "in-place mutation of an array the caller passed in"
    rationale = (
        "A function that writes through its parameter (`x[i] = ...`, "
        "`x += ...`, `np.add(a, b, out=x)`, `x.sort()`) mutates a buffer "
        "the caller owns — a hidden side effect that corrupts shared CSI "
        "windows and cached forecasts. Copy on entry or make the write "
        "part of the documented contract (then suppress with a reason)."
    )


class ViewMutationRule(_AliasRuleBase):
    id = "VH402"
    name = "view-inplace-mutation"
    description = "in-place mutation of a view over a caller-owned array"
    rationale = (
        "`b = a[::2]`, `a.T`, `a.reshape(...)` and `np.asarray(a)` are "
        "views: writing to them writes to the caller's buffer through an "
        "alias the reviewer can no longer see at the mutation site. The "
        "alias chain is reported in the finding's trace."
    )
