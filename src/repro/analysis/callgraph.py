"""Project-wide call-graph and import-resolution layer.

Built once per ``vihot lint --dataflow`` run: every module is parsed
into a :class:`~repro.analysis.engine.ModuleContext`, every function and
method is indexed under its canonical qualname
(``repro.dsp.phase.wrap_phase``), import aliases and package re-exports
are flattened into one resolution table (so ``from repro.dsp import
wrap_phase`` resolves to the defining module even though it is spelled
through ``repro/dsp/__init__.py``), and a call graph is recorded for
every project-internal call site.

On top of the index the build runs the inter-procedural summary pass:
functions whose return domain is not declared (``Annotated[...,
Domain(...)]`` or a ``:domain return: ...`` docstring marker — see
:mod:`repro.analysis.domains`) get one *inferred* from their return
expressions, iterated to a fixed point so domains propagate through
call chains.  The summary table is the expensive part of the build, so
it is cached keyed on a hash of every source file (``cache_dir``); CI
persists that directory between runs.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterator, Sequence

from repro.analysis.domains import (
    EXTERNAL_SIGNATURES,
    Signature,
    declared_domains_of,
)
from repro.analysis.dtypes import declared_dtypes_of
from repro.analysis.engine import ModuleContext
from repro.analysis.shapes import declared_shapes_of

__all__ = ["FunctionInfo", "ProjectContext", "RULESET_EPOCH", "build_project"]

#: Bump when the summary-cache layout changes.
_CACHE_VERSION = 1

#: Bump whenever the *inference rules* change — new domain signatures,
#: a different fixpoint, a propagation fix.  The summary cache is keyed
#: on this in addition to the source digest: a cached summary describes
#: (source, rules), and hashing only the source let stale summaries
#: survive rule edits (the bug this guard retires).  Epoch 2 marks the
#: VH5xx era; epoch 3 the VH6xx process-safety pass.
RULESET_EPOCH = 3

#: Fixed-point iteration bound for return-domain inference; domain
#: chains in practice are a handful of calls deep.
_MAX_INFERENCE_ROUNDS = 5


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qualname: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_method: bool
    #: Positional parameter names (``self``/``cls`` already dropped).
    positional: tuple[str, ...]
    kwonly: tuple[str, ...]
    declared_params: dict[str, str]
    declared_return: str | None
    inferred_return: str | None = None
    #: Declared array contracts (VH5xx): param -> accepted shape
    #: alternatives, declared return alternatives, param -> dtype,
    #: declared return dtype.  Shapes/dtypes are declared-only — no
    #: fixpoint inference — so they never enter the summary cache.
    declared_shapes: dict[str, tuple[tuple[str | int, ...], ...]] = field(
        default_factory=dict
    )
    declared_shape_return: tuple[tuple[str | int, ...], ...] | None = None
    declared_dtypes: dict[str, str] = field(default_factory=dict)
    declared_dtype_return: str | None = None

    @property
    def return_domain(self) -> str | None:
        return self.declared_return if self.declared_return is not None else self.inferred_return

    def signature(self) -> Signature:
        names = self.positional + self.kwonly
        return Signature(
            params=tuple(self.declared_params.get(n) for n in names),
            returns=self.return_domain,
            param_names=names,
        )


def _function_info(
    module_qualname: str,
    owner: str | None,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> FunctionInfo:
    args = node.args
    positional = [a.arg for a in [*args.posonlyargs, *args.args]]
    is_method = owner is not None
    if is_method and positional and positional[0] in ("self", "cls"):
        positional = positional[1:]
    declared_params, declared_return = declared_domains_of(node)
    declared_shapes, declared_shape_return = declared_shapes_of(node)
    declared_dtypes, declared_dtype_return = declared_dtypes_of(node)
    local = f"{owner}.{node.name}" if owner else node.name
    return FunctionInfo(
        qualname=f"{module_qualname}.{local}",
        module=module_qualname,
        node=node,
        is_method=is_method,
        positional=tuple(positional),
        kwonly=tuple(a.arg for a in args.kwonlyargs),
        declared_params=declared_params,
        declared_return=declared_return,
        declared_shapes=declared_shapes,
        declared_shape_return=declared_shape_return,
        declared_dtypes=declared_dtypes,
        declared_dtype_return=declared_dtype_return,
    )


def module_qualname(module: ModuleContext) -> str:
    """Canonical dotted name of a module, derived from its path.

    Climbs the filesystem while ``__init__.py`` parents exist (so
    ``src/repro/dsp/phase.py`` -> ``repro.dsp.phase``); for synthetic
    paths (``check_source``) it falls back to the relative path with
    separators dotted.
    """
    path = module.path
    if path.name != "<string>" and path.exists():
        parts = [] if path.name == "__init__.py" else [path.stem]
        parent = path.parent
        while (parent / "__init__.py").exists():
            parts.insert(0, parent.name)
            parent = parent.parent
        if parts:
            return ".".join(parts)
    rel = module.rel_path.replace("\\", "/")
    rel = rel[:-3] if rel.endswith(".py") else rel
    rel = rel[: -len("/__init__")] if rel.endswith("/__init__") else rel
    return rel.replace("/", ".").lstrip(".") or "<string>"


class ProjectContext:
    """The whole-project view handed to :class:`~repro.analysis.engine.ProjectRule`."""

    def __init__(
        self,
        modules: dict[str, ModuleContext],
        functions: dict[str, FunctionInfo],
        aliases: dict[str, str],
        cache_hit: bool = False,
    ) -> None:
        self.modules = modules
        self.functions = functions
        self.aliases = aliases
        self.cache_hit = cache_hit
        self.call_graph: dict[str, frozenset[str]] = {}
        #: Scratch space rules share within one run (e.g. the dataflow
        #: pass computes all VH30x events once; each rule filters its own).
        self.memo: dict[str, object] = {}

    # ---------------------------------------------------------------- build

    @classmethod
    def build(
        cls,
        modules: Sequence[ModuleContext],
        cache_dir: Path | str | None = None,
    ) -> "ProjectContext":
        by_qualname: dict[str, ModuleContext] = {}
        for module in modules:
            by_qualname[module_qualname(module)] = module

        functions: dict[str, FunctionInfo] = {}
        aliases: dict[str, str] = {}
        for qualname, module in by_qualname.items():
            for local, target in module.aliases.items():
                aliases[f"{qualname}.{local}"] = target
            for info in _iter_module_functions(qualname, module):
                functions[info.qualname] = info

        project = cls(by_qualname, functions, aliases)
        project._build_call_graph()
        project._infer_return_domains(cache_dir)
        return project

    def _build_call_graph(self) -> None:
        edges: dict[str, set[str]] = {}
        for info in self.functions.values():
            module = self.modules[info.module]
            callees: set[str] = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    name = module.call_name(node)
                    if name is None:
                        continue
                    target = self.resolve_function(name, module=info.module)
                    if target is not None:
                        callees.add(target.qualname)
            edges[info.qualname] = callees
        self.call_graph = {fn: frozenset(callees) for fn, callees in edges.items()}

    def _infer_return_domains(self, cache_dir: Path | str | None) -> None:
        digest = self._source_digest()
        cache_path = (
            Path(cache_dir)
            / f"summaries-v{_CACHE_VERSION}-e{RULESET_EPOCH}-{digest[:16]}.json"
            if cache_dir is not None
            else None
        )
        if cache_path is not None and cache_path.exists():
            try:
                payload = json.loads(cache_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = None
            if (
                payload is not None
                and payload.get("digest") == digest
                and payload.get("epoch") == RULESET_EPOCH
            ):
                for qualname, domain in payload.get("returns", {}).items():
                    info = self.functions.get(qualname)
                    if info is not None and info.declared_return is None:
                        info.inferred_return = domain
                self.cache_hit = True
                return

        from repro.analysis.dataflow import infer_return_domain

        for _ in range(_MAX_INFERENCE_ROUNDS):
            changed = False
            for info in self.functions.values():
                if info.declared_return is not None:
                    continue
                inferred = infer_return_domain(info, self)
                if inferred != info.inferred_return:
                    info.inferred_return = inferred
                    changed = True
            if not changed:
                break

        if cache_path is not None:
            returns = {
                info.qualname: info.inferred_return
                for info in self.functions.values()
                if info.inferred_return is not None
            }
            try:
                cache_path.parent.mkdir(parents=True, exist_ok=True)
                cache_path.write_text(
                    json.dumps(
                        {
                            "digest": digest,
                            "epoch": RULESET_EPOCH,
                            "returns": returns,
                        },
                        indent=0,
                    ),
                    encoding="utf-8",
                )
            except OSError:
                pass  # caching is best-effort; the analysis result is identical

    def _source_digest(self) -> str:
        hasher = hashlib.sha256()
        for qualname in sorted(self.modules):
            module = self.modules[qualname]
            hasher.update(qualname.encode())
            hasher.update(b"\x00")
            hasher.update(module.source.encode("utf-8", "replace"))
            hasher.update(b"\x01")
        return hasher.hexdigest()

    # ------------------------------------------------------------- queries

    def canonicalize(self, dotted: str, _seen: frozenset[str] = frozenset()) -> str:
        """Follow import aliases and re-exports to a canonical dotted name."""
        if dotted in _seen or len(_seen) > 16:
            return dotted
        seen = _seen | {dotted}
        if dotted in self.aliases:
            return self.canonicalize(self.aliases[dotted], seen)
        head, _, tail = dotted.rpartition(".")
        if head:
            canonical_head = self.canonicalize(head, seen)
            if canonical_head != head:
                return self.canonicalize(f"{canonical_head}.{tail}", seen)
        return dotted

    def canonical_call(self, dotted: str, module: str | None = None) -> str:
        """Canonical name of a call spelled ``dotted`` inside ``module``.

        Module-local definitions win (``wrap_phase(...)`` inside
        ``repro.dsp.phase`` resolves to ``repro.dsp.phase.wrap_phase``);
        otherwise the global alias table decides.
        """
        if module is not None:
            local = self.canonicalize(f"{module}.{dotted}")
            if local in self.functions:
                return local
        return self.canonicalize(dotted)

    def resolve_function(
        self, dotted: str, module: str | None = None
    ) -> FunctionInfo | None:
        """FunctionInfo for a (possibly aliased) dotted call name, or None."""
        return self.functions.get(self.canonical_call(dotted, module))

    def signature_for(self, dotted: str) -> Signature | None:
        """Domain signature for a call name: project functions, then numpy."""
        info = self.resolve_function(dotted)
        if info is not None:
            return info.signature()
        return EXTERNAL_SIGNATURES.get(self.canonicalize(dotted))

    def module_of(self, info: FunctionInfo) -> ModuleContext:
        return self.modules[info.module]

    def callees_of(self, qualname: str) -> frozenset[str]:
        return self.call_graph.get(qualname, frozenset())

    def callers_of(self, qualname: str) -> frozenset[str]:
        return frozenset(
            caller for caller, callees in self.call_graph.items() if qualname in callees
        )


def _iter_module_functions(
    qualname: str, module: ModuleContext
) -> Iterator[FunctionInfo]:
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield _function_info(qualname, None, node)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield _function_info(qualname, node.name, item)


def build_project(
    paths: Sequence[Path], cache_dir: Path | str | None = None
) -> ProjectContext:
    """Convenience: parse ``paths`` and build a :class:`ProjectContext`."""
    from repro.analysis.engine import Analyzer

    modules: list[ModuleContext] = []
    for path in Analyzer._iter_files(paths):
        parsed = Analyzer([])._parse_file(path)
        if isinstance(parsed, ModuleContext):
            modules.append(parsed)
    return ProjectContext.build(modules, cache_dir=cache_dir)
