"""Concurrency & process-safety rules (VH6xx) for the sharded fabric.

PR 9 moved serving across forked worker processes: sessions live behind
:class:`~repro.serve.fabric.ServingFabric`, CSI packets ride
:class:`~repro.serve.shm.SharedCsiRing` shared-memory segments, and
control traffic crosses pickle boundaries on duplex pipes.  Correctness
now depends on invariants no per-module rule can see — what a forked
worker inherits, which shared-memory segments get released on *every*
exit path (including ``kill_worker`` failover), what may legally cross
a pickle boundary, and whether any pre-fork RNG stream leaks into more
than one worker.  This pass checks them over the PR-5
:class:`~repro.analysis.callgraph.ProjectContext` call graph.

The pass first finds **worker entrypoints** — functions handed to a
``Process(target=...)`` call, plus anything named ``*worker_main`` —
and closes reachability over the call graph, extended with a light
class closure the plain graph cannot see: a constructor call reaches
the class's methods, ``self.m()`` reaches the same class, and
``self.attr.m()`` follows one level of ``self.attr = ClassName(...)``
attribute typing.  On top of that reachable set:

* **VH601** — code a forked worker can reach *mutates* module-level
  mutable state (dicts/lists/sets bound at module scope).  Each worker
  holds a private fork-time copy, so the mutation silently diverges
  between processes (and from the parent).  Reads are fine;
  re-initialising post-fork (``global X`` + a fresh assignment) is the
  sanctioned pattern and silences the rule for that function.
* **VH602** — a ``SharedMemory`` / ``SharedCsiRing`` acquisition whose
  handle never reaches a ``close()``/``unlink()``: neither released in
  the acquiring function, nor returned to the caller, nor handed to a
  project function/constructor that stores it under an attribute some
  code releases (``shard.ring.close(...)`` puts ``ring`` in the
  released-attribute set).  Escape analysis over the call graph, so
  ``kill_worker``/failover release paths count.
* **VH603** — an unpicklable value (lock, open file handle,
  ``np.random.Generator``, shm handle, lambda) flows into a
  ``Connection.send(...)`` or into the ``args=`` of a
  spawn/forkserver ``Process``: it will raise — or worse, pickle a
  stale snapshot — at the boundary.
* **VH604** — a seeded generator created pre-fork (module scope) is
  drawn from by worker-reachable code, or a generator is shipped into
  workers started in a loop: every worker inherits the *same* stream
  state, so "random" draws are identical across the fleet.
* **VH605** — fork-only API use that breaks the moment the start
  method changes: raw ``os.fork()``, module-level
  ``multiprocessing.Process/Lock/Queue/...`` factories that float with
  the global start method instead of pinning ``get_context(...)``,
  ``set_start_method(...)`` global mutation, lambda/bound-method
  targets under an unpinned or spawn context, and ``.daemon``
  assignment after ``.start()``.

Suppression is the standard machinery (``# vihot: noqa[VH6xx]`` /
the reviewed allowlist); the shipped tree lints clean with zero
suppressions — see ``docs/static-analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.engine import Finding, ProjectRule, Severity

if TYPE_CHECKING:
    from repro.analysis.callgraph import FunctionInfo, ProjectContext

__all__ = [
    "CrossProcessRngRule",
    "ForkInheritedStateRule",
    "ForkOnlyApiRule",
    "PickleBoundaryRule",
    "SharedMemoryLifecycleRule",
]

_MEMO_KEY = "concurrency.events"

#: Container methods that mutate the receiver in place (VH601 sinks).
_MUTATING_CONTAINER_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)

#: Call names (last component) whose result is a mutable container when
#: bound at module scope.
_MUTABLE_CONSTRUCTOR_TAILS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter"}
)

#: Canonical names that create a seeded/stateful RNG (VH603/VH604).
_GENERATOR_CALLS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: Canonical names whose result cannot cross a pickle boundary.
_UNPICKLABLE_CALLS = frozenset(
    {
        "open",
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
) | _GENERATOR_CALLS

#: Bare ``multiprocessing.X`` factories that float with the global
#: start method (VH605: pin a context instead).
_BARE_MP_FACTORIES = frozenset(
    {
        "Process",
        "Pipe",
        "Lock",
        "RLock",
        "Queue",
        "SimpleQueue",
        "JoinableQueue",
        "Pool",
        "Manager",
        "Value",
        "Array",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Condition",
        "Barrier",
    }
)

_RELEASE_METHODS = frozenset({"close", "unlink"})

_SPAWNISH = frozenset({"spawn", "forkserver"})


@dataclass(frozen=True)
class _Event:
    rule: str
    path: str
    line: int
    col: int
    message: str
    trace: tuple[str, ...]


@dataclass
class _ClassInfo:
    """One indexed class: the closure the plain call graph cannot see."""

    qualname: str
    module: str
    node: ast.ClassDef
    #: method name -> function qualname (``mod.Class.method``)
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.A = ClassName(...)`` in any method -> class qualname
    attr_classes: dict[str, str] = field(default_factory=dict)
    #: ``__init__`` param name -> attribute it is stored under
    param_attrs: dict[str, str] = field(default_factory=dict)
    #: attributes assigned from a ``Pipe()`` unpack (Connection ends)
    conn_attrs: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class _ProcessCall:
    """One ``Process(...)`` construction site."""

    node: ast.Call
    #: pinned start method (``"fork"``/``"spawn"``/...), or None when
    #: the call floats with the global default.
    method: str | None
    target: ast.expr | None
    args: tuple[ast.expr, ...]
    in_loop: bool


@dataclass
class _Index:
    """Everything the five rules share, built once per project."""

    classes: dict[str, _ClassInfo] = field(default_factory=dict)
    #: canonical ``module.NAME`` -> (path, line) of a module-level mutable
    module_mutables: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: canonical ``module.NAME`` -> (path, line) of a module-level RNG
    module_generators: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: attribute names some code releases (``<x>.A.close()`` anywhere)
    release_attrs: set[str] = field(default_factory=set)
    #: worker entrypoint qualname -> how it was detected
    entrypoints: dict[str, str] = field(default_factory=dict)
    #: function qualname -> the caller it was reached from (BFS tree)
    reach_via: dict[str, str] = field(default_factory=dict)
    #: every function reachable from a worker entrypoint
    reachable: set[str] = field(default_factory=set)
    #: function qualname -> its Process construction sites
    process_calls: dict[str, list[_ProcessCall]] = field(default_factory=dict)


# --------------------------------------------------------------------------
# Shared name plumbing
# --------------------------------------------------------------------------


def _canonical_name(
    project: "ProjectContext", info: "FunctionInfo", node: ast.expr
) -> str | None:
    """Canonical dotted name of an expression, module-locals resolved."""
    module = project.module_of(info)
    dotted = module.qualified_name(node)
    if dotted is None:
        return None
    local = project.canonicalize(f"{info.module}.{dotted}")
    if local in project.functions or local in project.aliases:
        return local
    return project.canonicalize(dotted)


def _call_canonical(
    project: "ProjectContext", info: "FunctionInfo", node: ast.Call
) -> str | None:
    module = project.module_of(info)
    name = module.call_name(node)
    if name is None:
        return None
    return project.canonical_call(name, module=info.module)


def _resolve_class(
    index: _Index, project: "ProjectContext", info: "FunctionInfo", node: ast.Call
) -> _ClassInfo | None:
    module = project.module_of(info)
    name = module.call_name(node)
    if name is None:
        return None
    for candidate in (f"{info.module}.{name}", name):
        canonical = project.canonicalize(candidate)
        if canonical in index.classes:
            return index.classes[canonical]
    return None


def _is_shm_acquire(
    project: "ProjectContext", info: "FunctionInfo", node: ast.Call
) -> str | None:
    """The acquired resource kind (``SharedMemory``/``SharedCsiRing``), or None."""
    name = project.module_of(info).call_name(node)
    if name is None:
        return None
    canonical = project.canonical_call(name, module=info.module)
    tail = canonical.rpartition(".")[2]
    if canonical == "multiprocessing.shared_memory.SharedMemory" or tail in (
        "SharedMemory",
        "SharedCsiRing",
    ):
        return tail
    return None


def _is_generator_call(
    project: "ProjectContext", info: "FunctionInfo", node: ast.Call
) -> bool:
    canonical = _call_canonical(project, info, node)
    return canonical in _GENERATOR_CALLS if canonical is not None else False


def _is_unpicklable_call(
    project: "ProjectContext", info: "FunctionInfo", node: ast.Call
) -> str | None:
    """What kind of unpicklable value this call creates, or None."""
    canonical = _call_canonical(project, info, node)
    if canonical in _GENERATOR_CALLS:
        return "an RNG generator (its stream state snapshots at pickle time)"
    if canonical in _UNPICKLABLE_CALLS:
        tail = canonical.rpartition(".")[2]
        return (
            "an open file handle"
            if canonical == "open"
            else f"a `{tail}` synchronisation primitive"
        )
    if _is_shm_acquire(project, info, node) is not None:
        return "a shared-memory handle (the mapping is per-process)"
    return None


def _process_call_of(
    project: "ProjectContext",
    info: "FunctionInfo",
    node: ast.Call,
    local_contexts: dict[str, str],
) -> tuple[str | None, bool] | None:
    """``(start_method, True)`` when ``node`` constructs a Process."""
    func = node.func
    method: str | None = None
    is_process = False
    if isinstance(func, ast.Attribute) and func.attr == "Process":
        is_process = True
        value = func.value
        if isinstance(value, ast.Call):
            # get_context("fork").Process(...)
            inner = project.module_of(info).call_name(value)
            if inner is not None and inner.rpartition(".")[2] == "get_context":
                method = _const_str_arg(value)
        elif isinstance(value, ast.Name):
            method = local_contexts.get(value.id)
            if method is None and value.id not in local_contexts:
                canonical = _canonical_name(project, info, func)
                if canonical == "multiprocessing.Process":
                    method = None  # floats with the global default
    elif isinstance(func, ast.Name):
        canonical = _call_canonical(project, info, node)
        if canonical is not None and canonical.rpartition(".")[2] == "Process":
            is_process = True
    if not is_process:
        return None
    return (method, True)


def _const_str_arg(call: ast.Call) -> str | None:
    for arg in call.args[:1]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _self_attr(node: ast.expr) -> str | None:
    """``A`` for an expression spelled ``self.A``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _store_names(node: ast.AST) -> set[str]:
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store)
    }


def _global_names(node: ast.AST) -> set[str]:
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Global):
            names.update(child.names)
    return names


def _param_names(info: "FunctionInfo") -> set[str]:
    args = info.node.args
    names = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


# --------------------------------------------------------------------------
# Index construction
# --------------------------------------------------------------------------


def _collect_classes(index: _Index, project: "ProjectContext") -> None:
    for mod_qual, module in project.modules.items():
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            qualname = f"{mod_qual}.{node.name}"
            cls = _ClassInfo(qualname=qualname, module=mod_qual, node=node)
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = f"{qualname}.{item.name}"
            index.classes[qualname] = cls


def _fill_class_details(index: _Index, project: "ProjectContext") -> None:
    """Second pass (needs the full class table): attribute typing,
    ``__init__`` param->attr bindings, Connection-typed attributes."""
    for cls in index.classes.values():
        for item in cls.node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            method_info = project.functions.get(cls.methods.get(item.name, ""))
            init_params = (
                set(method_info.positional) | set(method_info.kwonly)
                if method_info is not None and item.name == "__init__"
                else set()
            )
            for stmt in ast.walk(item):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr is None and isinstance(target, ast.Tuple):
                        # self.A, other = ctx.Pipe(...) — Connection ends.
                        if (
                            isinstance(stmt.value, ast.Call)
                            and isinstance(stmt.value.func, ast.Attribute)
                            and stmt.value.func.attr == "Pipe"
                        ) or (
                            isinstance(stmt.value, ast.Call)
                            and isinstance(stmt.value.func, ast.Name)
                            and stmt.value.func.id == "Pipe"
                        ):
                            for element in target.elts:
                                pipe_attr = _self_attr(element)
                                if pipe_attr is not None:
                                    cls.conn_attrs.add(pipe_attr)
                        continue
                    if attr is None:
                        continue
                    value = stmt.value
                    if isinstance(value, ast.Call) and method_info is not None:
                        target_cls = _resolve_class(
                            index, project, method_info, value
                        )
                        if target_cls is not None:
                            cls.attr_classes[attr] = target_cls.qualname
                    if (
                        isinstance(value, ast.Name)
                        and value.id in init_params
                        and item.name == "__init__"
                    ):
                        cls.param_attrs[value.id] = attr


def _collect_module_state(index: _Index, project: "ProjectContext") -> None:
    for mod_qual, module in project.modules.items():
        for node in module.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            mutable = isinstance(
                value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
            )
            generator = False
            if isinstance(value, ast.Call):
                name = module.call_name(value)
                canonical = (
                    project.canonical_call(name, module=mod_qual)
                    if name is not None
                    else None
                )
                if canonical is not None:
                    if canonical.rpartition(".")[2] in _MUTABLE_CONSTRUCTOR_TAILS:
                        mutable = True
                    if canonical in _GENERATOR_CALLS:
                        generator = True
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                key = f"{mod_qual}.{target.id}"
                where = (module.rel_path, node.lineno)
                if mutable:
                    index.module_mutables[key] = where
                if generator:
                    index.module_generators[key] = where


def _collect_release_attrs(index: _Index, project: "ProjectContext") -> None:
    for info in project.functions.values():
        for node in ast.walk(info.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RELEASE_METHODS
            ):
                continue
            receiver = node.func.value
            if isinstance(receiver, ast.Attribute):
                index.release_attrs.add(receiver.attr)


def _local_contexts(info: "FunctionInfo") -> dict[str, str]:
    """Locals assigned from ``get_context("<method>")`` in this function."""
    contexts: dict[str, str] = {}
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        tail = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else None
        )
        if tail != "get_context":
            continue
        method = _const_str_arg(value)
        if method is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                contexts[target.id] = method
    return contexts


def _collect_process_calls(index: _Index, project: "ProjectContext") -> None:
    for info in project.functions.values():
        contexts = _local_contexts(info)
        calls: list[_ProcessCall] = []

        def visit(node: ast.AST, in_loop: bool, info: "FunctionInfo" = info) -> None:
            loop_here = in_loop or isinstance(
                node, (ast.For, ast.While, ast.ListComp, ast.SetComp, ast.GeneratorExp)
            )
            if isinstance(node, ast.Call):
                found = _process_call_of(project, info, node, contexts)
                if found is not None:
                    method, _ = found
                    args_kw = _keyword(node, "args")
                    args = (
                        tuple(args_kw.elts)
                        if isinstance(args_kw, (ast.Tuple, ast.List))
                        else (args_kw,)
                        if args_kw is not None
                        else ()
                    )
                    calls.append(
                        _ProcessCall(
                            node=node,
                            method=method,
                            target=_keyword(node, "target"),
                            args=args,
                            in_loop=loop_here,
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, loop_here)

        visit(info.node, False)
        if calls:
            index.process_calls[info.qualname] = calls


def _collect_entrypoints(index: _Index, project: "ProjectContext") -> None:
    for qualname, calls in index.process_calls.items():
        info = project.functions[qualname]
        module = project.module_of(info)
        for call in calls:
            if call.target is None:
                continue
            dotted = module.qualified_name(call.target)
            if dotted is None:
                continue
            target = project.resolve_function(dotted, module=info.module)
            if target is not None:
                index.entrypoints.setdefault(
                    target.qualname,
                    f"{module.rel_path}:{call.node.lineno}: "
                    f"`Process(target={dotted})` in `{qualname}`",
                )
    for qualname in project.functions:
        tail = qualname.rpartition(".")[2]
        if tail.endswith("worker_main"):
            index.entrypoints.setdefault(
                qualname, f"`{qualname}` is a worker entrypoint by name"
            )


def _extended_callees(
    index: _Index, project: "ProjectContext", qualname: str
) -> set[str]:
    """Call-graph edges plus the class closure the graph cannot resolve."""
    callees = set(project.callees_of(qualname))
    info = project.functions.get(qualname)
    if info is None:
        return callees
    owner: _ClassInfo | None = None
    if info.is_method:
        cls_qual = qualname.rpartition(".")[0]
        owner = index.classes.get(cls_qual)
    local_classes: dict[str, str] = {}
    for node in ast.walk(info.node):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            cls = _resolve_class(index, project, info, node.value)
            if cls is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_classes[target.id] = cls.qualname
        if not isinstance(node, ast.Call):
            continue
        cls = _resolve_class(index, project, info, node)
        if cls is not None:
            callees.update(cls.methods.values())
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        receiver = func.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self" and owner is not None:
                target_qual = owner.methods.get(func.attr)
                if target_qual is not None:
                    callees.add(target_qual)
            elif receiver.id in local_classes:
                cls_info = index.classes.get(local_classes[receiver.id])
                if cls_info is not None:
                    target_qual = cls_info.methods.get(func.attr)
                    if target_qual is not None:
                        callees.add(target_qual)
        elif isinstance(receiver, ast.Attribute) and owner is not None:
            attr = _self_attr(receiver)
            if attr is not None and attr in owner.attr_classes:
                cls_info = index.classes.get(owner.attr_classes[attr])
                if cls_info is not None:
                    target_qual = cls_info.methods.get(func.attr)
                    if target_qual is not None:
                        callees.add(target_qual)
    return callees


def _close_reachability(index: _Index, project: "ProjectContext") -> None:
    worklist = list(index.entrypoints)
    index.reachable.update(index.entrypoints)
    while worklist:
        current = worklist.pop()
        for callee in _extended_callees(index, project, current):
            if callee in index.reachable or callee not in project.functions:
                continue
            index.reachable.add(callee)
            index.reach_via[callee] = current
            worklist.append(callee)


def _reach_chain(index: _Index, qualname: str) -> list[str]:
    chain = [qualname]
    while chain[-1] not in index.entrypoints and len(chain) < 8:
        via = index.reach_via.get(chain[-1])
        if via is None or via in chain:
            break
        chain.append(via)
    return list(reversed(chain))


def _build_index(project: "ProjectContext") -> _Index:
    index = _Index()
    _collect_classes(index, project)
    _fill_class_details(index, project)
    _collect_module_state(index, project)
    _collect_release_attrs(index, project)
    _collect_process_calls(index, project)
    _collect_entrypoints(index, project)
    _close_reachability(index, project)
    return index


# --------------------------------------------------------------------------
# VH601 — fork-inherited mutable module state
# --------------------------------------------------------------------------


def _vh601_events(index: _Index, project: "ProjectContext") -> Iterator[_Event]:
    for qualname in sorted(index.reachable):
        info = project.functions[qualname]
        module = project.module_of(info)
        stores = _store_names(info.node)
        globals_ = _global_names(info.node)
        params = _param_names(info)
        plain_assigned = {
            target.id
            for stmt in ast.walk(info.node)
            if isinstance(stmt, ast.Assign)
            for target in stmt.targets
            if isinstance(target, ast.Name)
        }
        reinitialised = globals_ & plain_assigned

        def mutable_of(
            node: ast.expr,
            info: "FunctionInfo" = info,
            stores: set[str] = stores,
            globals_: set[str] = globals_,
            params: set[str] = params,
            reinitialised: set[str] = reinitialised,
        ) -> str | None:
            """Canonical module-mutable this expression names, if flagged."""
            if isinstance(node, ast.Name):
                name = node.id
                if name in params or name in reinitialised:
                    return None
                if name in stores and name not in globals_:
                    return None  # local shadow
                key = project.canonicalize(f"{info.module}.{name}")
                return key if key in index.module_mutables else None
            if isinstance(node, ast.Attribute):
                dotted = project.module_of(info).qualified_name(node)
                if dotted is None:
                    return None
                key = project.canonicalize(dotted)
                return key if key in index.module_mutables else None
            return None

        def emit(
            node: ast.AST,
            key: str,
            sink: str,
            info: "FunctionInfo" = info,
            module_rel: str = module.rel_path,
        ) -> _Event:
            def_path, def_line = index.module_mutables[key]
            chain = _reach_chain(index, info.qualname)
            entry = chain[0]
            return _Event(
                rule="VH601",
                path=module_rel,
                line=getattr(node, "lineno", info.node.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                message=(
                    f"`{info.qualname}` is reachable from worker entrypoint "
                    f"`{entry}` and mutates fork-inherited module state "
                    f"`{key}` via {sink}; each forked worker holds a private "
                    "copy, so the write silently diverges between processes "
                    "— re-initialise post-fork (`global` + fresh assignment) "
                    "or move the state onto the worker object"
                ),
                trace=(
                    f"{def_path}:{def_line}: `{key}` bound at module scope "
                    "(copied into every fork child)",
                    index.entrypoints.get(entry, f"entrypoint `{entry}`"),
                    "reached via " + " -> ".join(chain),
                ),
            )

        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        key = mutable_of(target.value)
                        if key is not None:
                            yield emit(node, key, "a subscript store")
            elif isinstance(node, ast.AugAssign):
                target = node.target
                if isinstance(target, ast.Subscript):
                    key = mutable_of(target.value)
                    if key is not None:
                        yield emit(node, key, "an augmented subscript store")
                else:
                    key = mutable_of(target)
                    if key is not None:
                        yield emit(node, key, "augmented assignment")
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        key = mutable_of(target.value)
                        if key is not None:
                            yield emit(node, key, "`del` of an item")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATING_CONTAINER_METHODS
            ):
                key = mutable_of(node.func.value)
                if key is not None:
                    yield emit(node, key, f"`.{node.func.attr}()`")


# --------------------------------------------------------------------------
# VH602 — shared-memory lifecycle
# --------------------------------------------------------------------------


def _released_locals(info: "FunctionInfo") -> set[str]:
    names: set[str] = set()
    for node in ast.walk(info.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RELEASE_METHODS
            and isinstance(node.func.value, ast.Name)
        ):
            names.add(node.func.value.id)
    return names


def _returned_names(info: "FunctionInfo") -> set[str]:
    names: set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
            names.add(node.value.id)
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) and isinstance(
            getattr(node, "value", None), ast.Name
        ):
            names.add(node.value.id)  # type: ignore[union-attr]
    return names


def _transfer_releases(
    index: _Index,
    project: "ProjectContext",
    info: "FunctionInfo",
    call: ast.Call,
    is_consumed: "ast.expr | None",
) -> bool:
    """True when handing the resource to ``call`` transfers it somewhere
    that releases it: a constructor storing it under a released
    attribute, or a project function that closes the parameter."""
    cls = _resolve_class(index, project, info, call)
    callee: "FunctionInfo | None" = None
    if cls is not None:
        callee = project.functions.get(cls.methods.get("__init__", ""))
    else:
        module = project.module_of(info)
        name = module.call_name(call)
        if name is not None:
            callee = project.resolve_function(name, module=info.module)
    if callee is None:
        return False
    # Which parameter receives the resource?
    param: str | None = None
    positional = callee.positional
    for pos, arg in enumerate(call.args):
        if arg is is_consumed:
            if pos < len(positional):
                param = positional[pos]
            break
    if param is None:
        for kw in call.keywords:
            if kw.value is is_consumed and kw.arg is not None:
                param = kw.arg
                break
    if param is None:
        return False
    if cls is not None and cls.param_attrs.get(param) in index.release_attrs:
        return True
    return param in _released_locals(callee)


def _vh602_events(index: _Index, project: "ProjectContext") -> Iterator[_Event]:
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        module = project.module_of(info)
        released = _released_locals(info)
        returned = _returned_names(info)

        # Map each acquire call to its binding.
        acquired: dict[ast.Call, tuple[str, str | None]] = {}
        kinds: dict[ast.Call, str] = {}
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                kind = _is_shm_acquire(project, info, node)
                if kind is not None:
                    acquired[node] = ("loose", None)
                    kinds[node] = kind
        if not acquired:
            continue
        consumers: dict[str, list[ast.Call]] = {}
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if not isinstance(value, ast.Call) or value not in acquired:
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _self_attr(target)
                    if isinstance(target, ast.Name):
                        acquired[value] = ("local", target.id)
                    elif attr is not None:
                        acquired[value] = ("attr", attr)
            elif isinstance(node, ast.withitem):
                ctx_expr = node.context_expr
                if isinstance(ctx_expr, ast.Call) and ctx_expr in acquired:
                    if isinstance(node.optional_vars, ast.Name):
                        acquired[ctx_expr] = ("local", node.optional_vars.id)
            elif isinstance(node, ast.Call) and node not in acquired:
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    if isinstance(arg, ast.Call) and arg in acquired:
                        acquired[arg] = ("inline-transfer", None)
                        consumers.setdefault("<inline>", []).append(node)
                    if isinstance(arg, ast.Name):
                        consumers.setdefault(arg.id, []).append(node)

        for call, (binding, name) in acquired.items():
            kind = kinds[call]
            ok = False
            if binding == "local" and name is not None:
                ok = name in released or name in returned
                if not ok:
                    ok = any(
                        _transfer_releases(
                            index, project, info, consumer, _name_arg(consumer, name)
                        )
                        for consumer in consumers.get(name, [])
                    )
            elif binding == "attr" and name is not None:
                ok = name in index.release_attrs
            elif binding == "inline-transfer":
                ok = any(
                    _transfer_releases(index, project, info, consumer, call)
                    for consumer in consumers.get("<inline>", [])
                    if call in ast.walk(consumer)
                )
            if ok:
                continue
            subject = (
                f"`self.{name}`"
                if binding == "attr"
                else f"`{name}`"
                if name is not None
                else "an unbound handle"
            )
            yield _Event(
                rule="VH602",
                path=module.rel_path,
                line=call.lineno,
                col=call.col_offset + 1,
                message=(
                    f"`{kind}` acquired into {subject} never reaches a "
                    "`close()`/`unlink()` on any path visible to the call "
                    "graph: the segment outlives the process and leaks "
                    "(resource-tracker warnings at best, an orphaned "
                    "mapping at worst); release it in a `finally`, or hand "
                    "it to an owner whose shutdown/failover path closes it"
                ),
                trace=(
                    f"{module.rel_path}:{call.lineno}: `{kind}` acquired in "
                    f"`{qualname}`",
                    "no release found in the acquiring function, its "
                    "callees, or a released attribute slot",
                ),
            )


def _name_arg(call: ast.Call, name: str) -> ast.expr | None:
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == name:
            return arg
    for kw in call.keywords:
        if isinstance(kw.value, ast.Name) and kw.value.id == name:
            return kw.value
    return None


# --------------------------------------------------------------------------
# VH603 — pickle boundaries
# --------------------------------------------------------------------------


def _annotation_is_connection(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == "Connection":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "Connection":
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if "Connection" in node.value:
                return True
    return False


def _vh603_events(index: _Index, project: "ProjectContext") -> Iterator[_Event]:
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        module = project.module_of(info)
        owner = (
            index.classes.get(qualname.rpartition(".")[0])
            if info.is_method
            else None
        )

        conn_names: set[str] = set()
        args = info.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is_connection(arg.annotation):
                conn_names.add(arg.arg)
        unpicklable: dict[str, str] = {}
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if isinstance(value, ast.Call):
                func = value.func
                tail = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id
                    if isinstance(func, ast.Name)
                    else None
                )
                if tail == "Pipe":
                    conn_names.update(names)
                    if isinstance(node.targets[0], ast.Tuple):
                        conn_names.update(
                            e.id
                            for e in node.targets[0].elts
                            if isinstance(e, ast.Name)
                        )
                    continue
                what = _is_unpicklable_call(project, info, value)
                if what is not None:
                    for name in names:
                        unpicklable[name] = what
            elif isinstance(value, ast.Lambda):
                for name in names:
                    unpicklable[name] = "a lambda (not picklable at all)"

        def offending(
            expr: ast.expr,
            info: "FunctionInfo" = info,
            unpicklable: dict[str, str] = unpicklable,
        ) -> str | None:
            if isinstance(expr, ast.Name):
                return unpicklable.get(expr.id)
            if isinstance(expr, ast.Lambda):
                return "a lambda (not picklable at all)"
            if isinstance(expr, ast.Call):
                return _is_unpicklable_call(project, info, expr)
            if isinstance(expr, (ast.Tuple, ast.List)):
                for element in expr.elts:
                    found = offending(element)
                    if found is not None:
                        return found
            return None

        def emit(node: ast.AST, what: str, boundary: str) -> _Event:
            return _Event(
                rule="VH603",
                path=module.rel_path,
                line=getattr(node, "lineno", info.node.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                message=(
                    f"{what} flows into {boundary}: it cannot cross a "
                    "pickle boundary (TypeError at best; at worst a stale "
                    "state snapshot serialises and the processes silently "
                    "diverge) — send plain data and rebuild the object on "
                    "the far side"
                ),
                trace=(f"{module.rel_path}:{getattr(node, 'lineno', 0)}: in `{qualname}`",),
            )

        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "send":
                receiver = func.value
                is_conn = (
                    isinstance(receiver, ast.Name) and receiver.id in conn_names
                )
                if not is_conn:
                    attr = _self_attr(receiver)
                    is_conn = (
                        attr is not None
                        and owner is not None
                        and attr in owner.conn_attrs
                    )
                if is_conn:
                    for arg in node.args:
                        what = offending(arg)
                        if what is not None:
                            yield emit(node, what, "`Connection.send(...)`")
        for call in index.process_calls.get(qualname, ()):
            if call.method in _SPAWNISH:
                for arg in call.args:
                    what = offending(arg)
                    if what is not None:
                        yield emit(
                            call.node,
                            what,
                            f"the `args=` of a `{call.method}`-context `Process`",
                        )


# --------------------------------------------------------------------------
# VH604 — cross-process RNG / seed leakage
# --------------------------------------------------------------------------


def _vh604_events(index: _Index, project: "ProjectContext") -> Iterator[_Event]:
    # (a) module-level generator drawn from by worker-reachable code.
    for qualname in sorted(index.reachable):
        info = project.functions[qualname]
        module = project.module_of(info)
        stores = _store_names(info.node)
        globals_ = _global_names(info.node)
        params = _param_names(info)
        for node in ast.walk(info.node):
            if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                continue
            name = node.id
            if name in params or (name in stores and name not in globals_):
                continue
            key = project.canonicalize(f"{info.module}.{name}")
            if key not in index.module_generators:
                continue
            def_path, def_line = index.module_generators[key]
            chain = _reach_chain(index, qualname)
            entry = chain[0]
            yield _Event(
                rule="VH604",
                path=module.rel_path,
                line=node.lineno,
                col=node.col_offset + 1,
                message=(
                    f"module-level generator `{key}` is used by "
                    f"`{qualname}`, which is reachable from worker "
                    f"entrypoint `{entry}`: every forked worker inherits "
                    "the same pre-fork stream state, so 'random' draws are "
                    "identical across the fleet — derive a per-worker seed "
                    "post-fork (e.g. `default_rng(seed + worker_index)`)"
                ),
                trace=(
                    f"{def_path}:{def_line}: `{key}` seeded at module scope "
                    "(pre-fork)",
                    index.entrypoints.get(entry, f"entrypoint `{entry}`"),
                    "reached via " + " -> ".join(chain),
                ),
            )
    # (b) one generator object shipped into workers started in a loop.
    for qualname, calls in sorted(index.process_calls.items()):
        info = project.functions[qualname]
        module = project.module_of(info)
        generator_locals: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if _is_generator_call(project, info, node.value):
                    generator_locals.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
        for call in calls:
            if not call.in_loop:
                continue
            for arg in call.args:
                if isinstance(arg, ast.Name) and arg.id in generator_locals:
                    yield _Event(
                        rule="VH604",
                        path=module.rel_path,
                        line=call.node.lineno,
                        col=call.node.col_offset + 1,
                        message=(
                            f"generator `{arg.id}` is shipped into every "
                            "worker started by this loop: all workers "
                            "receive the same stream state and draw "
                            "identical sequences — seed each worker "
                            "independently instead"
                        ),
                        trace=(
                            f"{module.rel_path}:{call.node.lineno}: "
                            f"`Process` started in a loop in `{qualname}`",
                        ),
                    )


# --------------------------------------------------------------------------
# VH605 — fork-only API use (spawn readiness)
# --------------------------------------------------------------------------


def _vh605_events(index: _Index, project: "ProjectContext") -> Iterator[_Event]:
    for qualname in sorted(project.functions):
        info = project.functions[qualname]
        module = project.module_of(info)

        def emit(node: ast.AST, message: str) -> _Event:
            return _Event(
                rule="VH605",
                path=module.rel_path,
                line=getattr(node, "lineno", info.node.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                trace=(f"{module.rel_path}:{getattr(node, 'lineno', 0)}: in `{qualname}`",),
            )

        started: dict[str, int] = {}
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                canonical = _call_canonical(project, info, node)
                if canonical == "os.fork":
                    yield emit(
                        node,
                        "raw `os.fork()` assumes fork semantics (inherited "
                        "memory, fds, locks) and has no spawn equivalent; "
                        "use a `multiprocessing.get_context(...)` Process "
                        "so the start method is explicit and portable",
                    )
                elif canonical is not None and canonical.rpartition(".")[0] == (
                    "multiprocessing"
                ) and canonical.rpartition(".")[2] in _BARE_MP_FACTORIES:
                    tail = canonical.rpartition(".")[2]
                    yield emit(
                        node,
                        f"bare `multiprocessing.{tail}(...)` floats with "
                        "the global start method (fork on Linux, spawn on "
                        "macOS/Windows): the same code inherits state on "
                        "one platform and pickles on another — pin "
                        f"`get_context(...).{tail}(...)` explicitly",
                    )
                elif canonical is not None and canonical.rpartition(".")[2] == (
                    "set_start_method"
                ):
                    yield emit(
                        node,
                        "`set_start_method(...)` mutates interpreter-global "
                        "state and breaks any library holding a different "
                        "assumption; pin a local `get_context(...)` instead",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "start"
                    and isinstance(node.func.value, ast.Name)
                ):
                    started.setdefault(node.func.value.id, node.lineno)
        for call in index.process_calls.get(qualname, ()):
            if call.method == "fork":
                continue  # pinned fork: inheritance is the documented contract
            target = call.target
            if isinstance(target, ast.Lambda):
                yield emit(
                    call.node,
                    "a lambda `target=` cannot be pickled: this `Process` "
                    "works only under fork — pin `get_context(\"fork\")` "
                    "or use a module-level function",
                )
            elif isinstance(target, ast.Attribute) and _self_attr(target) is not None:
                yield emit(
                    call.node,
                    "a bound-method `target=` pickles the whole instance "
                    "under spawn (or fails): this `Process` works only "
                    "under fork — pin the context or use a module-level "
                    "function taking plain data",
                )
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "daemon"
                    and isinstance(target.value, ast.Name)
                    and target.value.id in started
                    and node.lineno > started[target.value.id]
                ):
                    yield emit(
                        node,
                        f"`.daemon` assigned after `{target.value.id}.start()`: "
                        "the flag must be set before start (raises "
                        "AssertionError on CPython) — pass `daemon=` to the "
                        "constructor",
                    )


# --------------------------------------------------------------------------
# Memoised pass + rule classes
# --------------------------------------------------------------------------


def _concurrency_events(project: "ProjectContext") -> list[_Event]:
    cached = project.memo.get(_MEMO_KEY)
    if cached is not None:
        return cached  # type: ignore[return-value]
    index = _build_index(project)
    events: list[_Event] = []
    seen: set[tuple[str, int, int, str, str]] = set()
    for source in (
        _vh601_events,
        _vh602_events,
        _vh603_events,
        _vh604_events,
        _vh605_events,
    ):
        for event in source(index, project):
            key = (event.path, event.line, event.col, event.rule, event.message)
            if key not in seen:
                seen.add(key)
                events.append(event)
    events.sort(key=lambda e: (e.path, e.line, e.col, e.rule))
    project.memo[_MEMO_KEY] = events
    return events


class _ConcurrencyRuleBase(ProjectRule):
    severity = Severity.ERROR

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        for event in _concurrency_events(project):
            if event.rule == self.id:
                yield Finding(
                    path=event.path,
                    line=event.line,
                    col=event.col,
                    rule=self.id,
                    severity=self.severity,
                    message=event.message,
                    trace=event.trace,
                )


class ForkInheritedStateRule(_ConcurrencyRuleBase):
    id = "VH601"
    name = "fork-inherited-state-mutation"
    description = (
        "worker-reachable code mutates module-level mutable state "
        "inherited by fork"
    )
    rationale = (
        "A forked worker gets a private copy-on-write snapshot of every "
        "module-level dict/list/set. Code reachable from a worker "
        "entrypoint that writes such state mutates the worker's copy "
        "only: the parent and the other workers never see it, and the "
        "same code run inline gives different answers than run sharded. "
        "Reads are fine; re-initialise post-fork (`global X` plus a "
        "fresh assignment) or keep the state on the worker object."
    )
    example = (
        "_CACHE: dict[str, int] = {}\n"
        "\n"
        "def _worker_main(conn):\n"
        "    _CACHE['hits'] = _CACHE.get('hits', 0) + 1   # VH601\n"
    )


class SharedMemoryLifecycleRule(_ConcurrencyRuleBase):
    id = "VH602"
    name = "shm-lifecycle-leak"
    description = (
        "a SharedMemory/SharedCsiRing acquisition never reaches "
        "close()/unlink() on any visible path"
    )
    rationale = (
        "Shared-memory segments are kernel objects that outlive the "
        "process: an acquisition whose handle is neither released in "
        "the acquiring function nor handed to an owner whose shutdown "
        "and failover paths release it leaks the segment (resource-"
        "tracker warnings, /dev/shm exhaustion on long soaks). The "
        "escape analysis follows the handle through constructor "
        "parameters into released attribute slots, so `fabric.close()` "
        "and `kill_worker()` releasing `shard.ring` both count."
    )
    example = (
        "def acquire(size):\n"
        "    shm = shared_memory.SharedMemory(create=True, size=size)\n"
        "    return shm.name    # VH602: handle dropped, segment leaks\n"
    )


class PickleBoundaryRule(_ConcurrencyRuleBase):
    id = "VH603"
    name = "pickle-boundary-violation"
    description = (
        "an unpicklable value (lock, open file, RNG generator, shm "
        "handle, lambda) flows into Connection.send or spawn Process args"
    )
    rationale = (
        "`Connection.send` always pickles; spawn/forkserver `Process` "
        "args pickle at start. Locks, open files and shm handles raise "
        "at the boundary — and an `np.random.Generator` is worse: it "
        "pickles a *snapshot* of its stream state, so the two sides "
        "silently draw identical sequences from the moment it crosses. "
        "Send plain data and rebuild stateful objects on the far side."
    )
    example = (
        "def publish(conn: Connection):\n"
        "    rng = np.random.default_rng(0)\n"
        "    conn.send(rng)    # VH603: stream state snapshots\n"
    )


class CrossProcessRngRule(_ConcurrencyRuleBase):
    id = "VH604"
    name = "cross-process-rng-leak"
    description = (
        "a pre-fork seeded generator is used by more than one worker "
        "(module-level stream, or one object shipped to a worker loop)"
    )
    rationale = (
        "Fork copies RNG state byte for byte: a generator seeded at "
        "module scope (pre-fork) puts the *same* stream position in "
        "every worker, so per-worker 'random' draws are identical — "
        "the exact cross-process nondeterminism bug the reproduction's "
        "bit-identity contract exists to catch. Derive per-worker seeds "
        "post-fork (`default_rng(seed + worker_index)`) instead."
    )
    example = (
        "_RNG = np.random.default_rng(1234)\n"
        "\n"
        "def _worker_main(conn):\n"
        "    conn.send(float(_RNG.standard_normal()))   # VH604\n"
    )


class ForkOnlyApiRule(_ConcurrencyRuleBase):
    id = "VH605"
    name = "fork-only-api"
    description = (
        "fork-only multiprocessing use that breaks under spawn: raw "
        "os.fork, unpinned factories, set_start_method, lambda/bound "
        "targets, daemon-after-start"
    )
    rationale = (
        "The fabric pins `get_context('fork')` deliberately — that is "
        "allowed. What this rule flags is code whose start method is an "
        "*accident*: bare `multiprocessing.X(...)` factories that "
        "silently switch semantics across platforms, raw `os.fork()`, "
        "global `set_start_method`, lambda or bound-method targets that "
        "cannot pickle, and `.daemon` set after `.start()`. Each is a "
        "latent break for the roadmap's spawn/Windows port — pin the "
        "context and keep targets module-level."
    )
    example = (
        "def serve_forever():\n"
        "    pid = os.fork()                 # VH605\n"
        "    lock = multiprocessing.Lock()   # VH605: start method unpinned\n"
    )
