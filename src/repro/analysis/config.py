"""Default rule set and the reviewed suppression allowlist.

The allowlist is the *only* place whole files are exempted from a rule,
and every entry carries the reason a reviewer accepted it.  Inline
``# vihot: noqa[RULE]`` stays for single-line false positives; anything
broader belongs here where the next PR can see (and challenge) it.
"""

from __future__ import annotations

from repro.analysis.aliasing import ParamMutationRule, ViewMutationRule
from repro.analysis.concurrency import (
    CrossProcessRngRule,
    ForkInheritedStateRule,
    ForkOnlyApiRule,
    PickleBoundaryRule,
    SharedMemoryLifecycleRule,
)
from repro.analysis.contracts import (
    BareExceptRule,
    BatchPinRule,
    EmptyWithoutDtypeRule,
    MissingAnnotationRule,
    MutableDefaultRule,
)
from repro.analysis.dataflow import (
    CrossCallDomainLeakRule,
    DegRadFlowRule,
    FreqAngularRateFlowRule,
    WrappedUnwrappedFlowRule,
)
from repro.analysis.determinism import (
    ClockReadRule,
    GlobalNumpyRandomRule,
    SeedlessSeedParamRule,
    StdlibRandomRule,
    UnseededGeneratorRule,
)
from repro.analysis.engine import Allowlist, AllowlistEntry, Rule
from repro.analysis.shapes import (
    BatchAxisMixupRule,
    DtypeDowncastRule,
    ImplicitBroadcastRule,
    ShapeCallMismatchRule,
)

__all__ = [
    "DEFAULT_ALLOWLIST",
    "concurrency_rules",
    "dataflow_rules",
    "default_rules",
    "shape_rules",
]


def default_rules() -> list[Rule]:
    """Fresh instances of every rule ``vihot lint`` runs by default."""
    return [
        GlobalNumpyRandomRule(),
        StdlibRandomRule(),
        ClockReadRule(),
        UnseededGeneratorRule(),
        SeedlessSeedParamRule(),
        MutableDefaultRule(),
        MissingAnnotationRule(),
        BareExceptRule(),
        EmptyWithoutDtypeRule(),
        BatchPinRule(),
    ]


def dataflow_rules() -> list[Rule]:
    """The inter-procedural rule set behind ``vihot lint --dataflow``.

    Separate from :func:`default_rules` because these need the
    project-wide build (call graph + return-domain summaries) and cost
    a whole-tree parse even when a single file is linted.
    """
    return [
        DegRadFlowRule(),
        WrappedUnwrappedFlowRule(),
        FreqAngularRateFlowRule(),
        CrossCallDomainLeakRule(),
        ParamMutationRule(),
        ViewMutationRule(),
    ]


def shape_rules() -> list[Rule]:
    """The array shape/dtype rule set behind ``vihot lint --shapes``.

    Rides the same project-wide build as :func:`dataflow_rules` (and
    shares its summary cache when both are enabled); kept opt-in for the
    same reason — a whole-tree parse is overkill for single-file lints.
    """
    return [
        ShapeCallMismatchRule(),
        BatchAxisMixupRule(),
        DtypeDowncastRule(),
        ImplicitBroadcastRule(),
    ]


def concurrency_rules() -> list[Rule]:
    """The process-safety rule set behind ``vihot lint --concurrency``.

    Rides the same project-wide build as :func:`dataflow_rules` /
    :func:`shape_rules` (call graph + worker-entrypoint reachability)
    and shares their summary cache; opt-in for the same reason.
    """
    return [
        ForkInheritedStateRule(),
        SharedMemoryLifecycleRule(),
        PickleBoundaryRule(),
        CrossProcessRngRule(),
        ForkOnlyApiRule(),
    ]


#: Reviewed exemptions.  Keep this list short: every entry is a place
#: where replay determinism is deliberately *not* the contract.
DEFAULT_ALLOWLIST = Allowlist(
    [
        AllowlistEntry(
            suffix="repro/cli.py",
            rule="VH103",
            reason=(
                "CLI progress timing: `time.perf_counter()` spans around "
                "subcommand bodies feed human-readable '[fig02 in 3s]' "
                "prints only; no estimate depends on them."
            ),
        ),
        AllowlistEntry(
            suffix="repro/serve/loadgen.py",
            rule="VH103",
            reason=(
                "Load-generator throughput measurement: wall seconds are "
                "the *measurand* (session-packets/s). The estimates the "
                "bit-identity check compares are keyed by stream time."
            ),
        ),
        AllowlistEntry(
            suffix="repro/serve/openloop.py",
            rule="VH103",
            reason=(
                "Open-loop load generation: the arrival schedule is "
                "wall-clock by definition (packets land at "
                "`start + t/speedup` whether or not the fleet keeps "
                "up), and serve latency is the measurand. Estimate "
                "values are pinned by the fabric bit-identity suite."
            ),
        ),
        AllowlistEntry(
            suffix="repro/serve/scheduler.py",
            rule="VH103",
            reason=(
                "Budget enforcement reads `perf_counter` through the "
                "injectable `wall_clock` hook; tests replace it with a "
                "virtual clock, production measures real elapsed budget. "
                "Which estimates are produced (not their values) may "
                "depend on it by design — that is what deadline "
                "accounting is."
            ),
        ),
        AllowlistEntry(
            suffix="repro/serve/manager.py",
            rule="VH103",
            reason=(
                "Idle-eviction uses the injectable `clock` hook "
                "(`time.monotonic` default) for wall-idle timeouts; "
                "estimate values never read it."
            ),
        ),
        AllowlistEntry(
            suffix="repro/serve/chaos.py",
            rule="VH103",
            reason=(
                "Chaos-run wall time is the measurand (how long the "
                "fleet took to absorb and recover from the fault "
                "storm); every fault decision itself derives from the "
                "seeded plan, never the clock."
            ),
        ),
    ]
)
