"""Contract rules (VH2xx): API and buffer hygiene the type checker misses.

These complement mypy rather than duplicate it: mutable defaults and
bare ``except:`` are legal Python that mypy accepts, ``np.empty`` dtype
inference is invisible to static typing, and the annotation rule keeps
``py.typed`` honest for the packages whose public surface downstream
code actually types against (``repro.core``, ``repro.dsp``).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

__all__ = [
    "MutableDefaultRule",
    "MissingAnnotationRule",
    "BareExceptRule",
    "EmptyWithoutDtypeRule",
    "BatchPinRule",
]

#: Builtin constructors whose results are mutable — calling them in a
#: default argument shares one instance across every call.
_MUTABLE_CONSTRUCTORS = {"list", "dict", "set", "bytearray", "collections.deque"}


def _defaulted_args(node: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[
    tuple[ast.arg, ast.expr]
]:
    args = node.args
    positional = args.posonlyargs + args.args
    for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
        yield arg, default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            yield arg, default


def _iter_functions(
    module: ModuleContext,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class MutableDefaultRule(Rule):
    """Forbid mutable default argument values."""

    id = "VH201"
    name = "mutable-default"
    description = "mutable default argument (literal or `list()`/`dict()`/`set()`)"
    rationale = (
        "A mutable default is evaluated once at definition time and shared "
        "by every call; state leaks between sessions, which is exactly the "
        "cross-request contamination the serving layer must never have. "
        "Use `None` and construct inside the function."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for fn in _iter_functions(module):
            for arg, default in _defaulted_args(fn):
                bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and module.call_name(default) in _MUTABLE_CONSTRUCTORS
                )
                if bad:
                    yield self.finding(
                        module,
                        default,
                        f"`{fn.name}` defaults `{arg.arg}` to a mutable value "
                        "shared across calls; default to None and construct "
                        "inside the function",
                    )


class MissingAnnotationRule(Rule):
    """Public functions in typed packages must be fully annotated."""

    id = "VH202"
    name = "missing-annotations"
    description = "public function missing parameter or return annotations"
    rationale = (
        "The distribution ships `py.typed`, so downstream type checkers "
        "trust our public surface. An unannotated public function in "
        "`repro.core` / `repro.dsp` degrades every caller to `Any`."
    )

    #: Path fragments this rule applies to (the packages whose public
    #: API the paper-reproduction and serving layers type against).
    covered = ("repro/core/", "repro/dsp/")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        normalized = module.rel_path.replace("\\", "/")
        if not any(fragment in normalized for fragment in self.covered):
            return
        for fn, owner in self._public_functions(module.tree):
            label = f"{owner}.{fn.name}" if owner else fn.name
            missing = [
                arg.arg
                for arg in self._annotatable_args(fn)
                if arg.annotation is None
            ]
            if missing:
                yield self.finding(
                    module,
                    fn,
                    f"public `{label}` is missing parameter annotations: "
                    f"{', '.join(missing)}",
                )
            if fn.returns is None and fn.name != "__init__":
                yield self.finding(
                    module, fn, f"public `{label}` is missing a return annotation"
                )

    @staticmethod
    def _annotatable_args(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.arg]:
        args = fn.args
        collected = [
            arg
            for arg in args.posonlyargs + args.args + args.kwonlyargs
            if arg.arg not in ("self", "cls")
        ]
        collected.extend(arg for arg in (args.vararg, args.kwarg) if arg is not None)
        return collected

    @staticmethod
    def _public_functions(
        tree: ast.Module,
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
        def visible(name: str) -> bool:
            return not name.startswith("_") or name == "__init__"

        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and visible(
                node.name
            ):
                yield node, None
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and visible(item.name):
                        yield item, node.name


class BareExceptRule(Rule):
    """Forbid bare ``except:`` handlers."""

    id = "VH203"
    name = "bare-except"
    description = "bare `except:` handler"
    rationale = (
        "Bare except swallows KeyboardInterrupt, SystemExit and — worse "
        "here — the ValueError guards the trackers raise on non-finite "
        "input, turning loud data corruption into silent drift."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` catches everything including "
                    "KeyboardInterrupt; name the exceptions",
                )


class EmptyWithoutDtypeRule(Rule):
    """``np.empty`` in buffer code must pin its dtype."""

    id = "VH204"
    name = "empty-without-dtype"
    description = "`np.empty(...)` without an explicit dtype"
    rationale = (
        "`np.empty` returns uninitialised memory whose default dtype is a "
        "platform-dependent float; ring buffers and CSI matrices that feed "
        "the bit-identity check must pin dtype explicitly so a refactor "
        "can't change numeric width silently."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.call_name(node)
            if name == "numpy.empty" and not any(
                keyword.arg == "dtype" for keyword in node.keywords
            ) and len(node.args) < 2:
                yield self.finding(
                    module,
                    node,
                    f"`{name}` without an explicit dtype; buffer dtypes must "
                    "be pinned (np.float64 / np.complex128)",
                )


class BatchPinRule(Rule):
    """Every ``run_batch`` implementation must be pinned to its scalar path."""

    id = "VH205"
    name = "unpinned-run-batch"
    description = (
        "`run_batch` implementation without a paired bit-identity test"
    )
    rationale = (
        "The batched execution contract (repro.core.stages) says a stage's "
        "`run_batch` must be bit-identical to looping `run` — a perf "
        "overlay, never a second implementation of behaviour. That pin "
        "only holds if a test asserts it, so any class implementing "
        "`run_batch` must be named in a test file alongside a bit-identity "
        "marker ('bit-identical'/'bit_identical'). Without the paired "
        "test, a drifted batch kernel would silently serve different "
        "values at fleet scale than sessions get standalone."
    )

    #: Substrings that mark a test as a bit-identity pin.
    markers = ("bit-identical", "bit_identical")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        implementors = [
            (cls, fn)
            for cls in module.tree.body
            if isinstance(cls, ast.ClassDef)
            for fn in cls.body
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
            and fn.name == "run_batch"
        ]
        if not implementors:
            return
        tests_root = self._tests_root(module.path)
        if tests_root is None:
            # Installed-tree / ad-hoc source: there is no test corpus to
            # check against, and failing everywhere would make the rule
            # unrunnable outside a checkout.
            return
        corpus = self._test_corpus(tests_root)
        for cls, fn in implementors:
            pattern = re.compile(rf"\b{re.escape(cls.name)}\b")
            pinned = any(
                pattern.search(text)
                and any(marker in text for marker in self.markers)
                for text in corpus
            )
            if not pinned:
                yield self.finding(
                    module,
                    fn,
                    f"`{cls.name}.run_batch` has no paired bit-identity "
                    f"test: no file under {tests_root.name}/ names "
                    f"`{cls.name}` together with a bit-identity marker "
                    f"({' / '.join(self.markers)})",
                )

    @staticmethod
    def _tests_root(path: Path) -> Path | None:
        """The checkout's ``tests/`` directory, or None outside one."""
        for parent in path.resolve().parents:
            candidate = parent / "tests"
            if candidate.is_dir():
                return candidate
        return None

    @staticmethod
    def _test_corpus(tests_root: Path) -> list[str]:
        """Source text of every file in the test tree.

        Test-tree helper stages may pin themselves (the asserting test
        lives in the same file as the helper); source-tree stages are
        outside ``tests/`` so they can only be pinned by a real test.
        """
        corpus = []
        for test_path in sorted(tests_root.rglob("*.py")):
            if "__pycache__" in test_path.parts:
                continue
            try:
                corpus.append(test_path.read_text(encoding="utf-8"))
            except OSError:
                continue
        return corpus
