"""Phase-domain dataflow rules (VH3xx): units tracked across the project.

The analyzer abstract-interprets every function with a tiny domain
lattice (:mod:`repro.analysis.domains`): values acquire a unit domain
from declared sources (``Annotated[float, Domain("wrapped_rad")]``
params, ``:domain return: ...`` docstring markers, known numpy
callables like ``np.angle`` / ``np.deg2rad`` / ``np.unwrap``) and the
domain is propagated through assignments, arithmetic, ``for`` targets
and call boundaries — including *inter-procedural* flow via the return
summaries the :mod:`repro.analysis.callgraph` build infers to a fixed
point.  Any flow that crosses domains is a finding:

* VH301 — degrees mixed into a radian context (or vice versa), the
  ``np.sin(headings_deg)`` class of bug;
* VH302 — wrapped phase consumed by linear arithmetic: ``a - b`` on
  wrapped values outside a ``wrap_phase(...)`` call, ``np.diff`` /
  ``np.mean`` over wrapped phases, an unwrapped track re-unwrapped;
* VH303 — plain frequency [Hz] confused with angular rate [rad/s]
  (the missing ``2*pi``);
* VH304 — a cross-module call whose argument domain contradicts the
  callee's declared parameter domain (the leak only an inter-procedural
  view can see).

The pass is deliberately flow-insensitive inside branches and gives up
(domain ``None``) rather than guess: silence is cheap, a false alarm in
CI is not.  Every finding carries a ``trace`` recording where each
operand acquired its domain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.domains import (
    PASSTHROUGH_CALLS,
    PASSTHROUGH_METHODS,
    WRAP_HOSTILE_CALLS,
    WRAP_HOSTILE_METHODS,
    WRAP_SAFE_CALLS,
    classify_mismatch,
    domain_from_annotation,
    domains_compatible,
)
from repro.analysis.engine import Finding, ModuleContext, ProjectRule, Severity
from repro.units import DEG, HZ, RAD, RAD_PER_S, UNWRAPPED_RAD, WRAPPED_RAD

if TYPE_CHECKING:
    from repro.analysis.callgraph import FunctionInfo, ProjectContext

__all__ = [
    "DegRadFlowRule",
    "WrappedUnwrappedFlowRule",
    "FreqAngularRateFlowRule",
    "CrossCallDomainLeakRule",
    "infer_return_domain",
]

_MEMO_KEY = "dataflow.domain_events"

#: Result domain of ``a - b`` / ``a + b`` when both sides share a domain.
#: Wrapped differences leave the wrapped interval, so they degrade to
#: generic radians (the flag for the unsafe case is separate).
_SUB_RESULT = {
    WRAPPED_RAD: RAD,
    UNWRAPPED_RAD: UNWRAPPED_RAD,
    RAD: RAD,
    DEG: DEG,
    HZ: HZ,
    RAD_PER_S: RAD_PER_S,
}


@dataclass(frozen=True)
class _Binding:
    domain: str
    origin: str  # "path:line: name <- source [domain]"


@dataclass(frozen=True)
class _Event:
    rule: str
    path: str
    line: int
    col: int
    message: str
    trace: tuple[str, ...]


def _contains_pi(node: ast.AST, module: ModuleContext) -> bool:
    for child in ast.walk(node):
        if isinstance(child, (ast.Attribute, ast.Name)):
            if module.qualified_name(child) in ("numpy.pi", "math.pi", "math.tau"):
                return True
    return False


class _DomainPass:
    """One function body, one forward pass, domains in, events out."""

    def __init__(
        self,
        info: "FunctionInfo",
        project: "ProjectContext",
        collect_events: bool = True,
    ) -> None:
        self.info = info
        self.project = project
        self.module = project.module_of(info)
        self.collect = collect_events
        self.events: list[_Event] = []
        self.return_domains: list[str | None] = []
        self.env: dict[str, _Binding] = {}
        for name, domain in info.declared_params.items():
            self.env[name] = _Binding(
                domain,
                f"{self.module.rel_path}:{info.node.lineno}: parameter "
                f"`{name}` declared [{domain}]",
            )

    # ------------------------------------------------------------ plumbing

    def _where(self, node: ast.AST) -> str:
        return f"{self.module.rel_path}:{getattr(node, 'lineno', self.info.node.lineno)}"

    def _emit(
        self, rule: str, node: ast.AST, message: str, trace: tuple[str, ...]
    ) -> None:
        if not self.collect:
            return
        self.events.append(
            _Event(
                rule=rule,
                path=self.module.rel_path,
                line=getattr(node, "lineno", self.info.node.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                trace=trace[:4],
            )
        )

    def _bind(self, name: str, domain: str | None, node: ast.AST, source: str) -> None:
        if domain is None:
            self.env.pop(name, None)
            return
        self.env[name] = _Binding(
            domain, f"{self._where(node)}: `{name}` <- {source} [{domain}]"
        )

    def _trace_of(self, node: ast.expr) -> tuple[str, ...]:
        """Provenance steps for the names appearing in ``node``."""
        steps: list[str] = []
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id in self.env:
                origin = self.env[child.id].origin
                if origin not in steps:
                    steps.append(origin)
        return tuple(steps[:3])

    # ---------------------------------------------------------- statements

    def run(self) -> None:
        self._run_body(self.info.node.body)

    def _run_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._run_stmt(stmt)

    def _run_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            domain = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, domain, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            declared = domain_from_annotation(stmt.annotation)
            domain = self._eval(stmt.value) if stmt.value is not None else None
            if (
                declared is not None
                and domain is not None
                and not domains_compatible(domain, declared)
            ):
                self._mismatch(stmt.value, domain, declared, context="annotated assignment")
            if isinstance(stmt.target, ast.Name):
                chosen = declared if declared is not None else domain
                self._bind(
                    stmt.target.id,
                    chosen,
                    stmt,
                    "declared annotation" if declared is not None else _describe(stmt.value),
                )
        elif isinstance(stmt, ast.AugAssign):
            value_domain = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id)
                combined = self._binop_domain(
                    stmt,
                    stmt.op,
                    current.domain if current else None,
                    value_domain,
                    stmt.target,
                    stmt.value,
                )
                self._bind(stmt.target.id, combined, stmt, "augmented assignment")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                domain = self._eval(stmt.value)
                self.return_domains.append(domain)
                declared = self.info.declared_return
                if (
                    declared is not None
                    and domain is not None
                    and not domains_compatible(domain, declared)
                ):
                    self._mismatch(
                        stmt.value,
                        domain,
                        declared,
                        context=f"return from `{self.info.qualname}`",
                    )
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._run_body(stmt.body)
            self._run_body(stmt.orelse)
        elif isinstance(stmt, (ast.While,)):
            self._eval(stmt.test)
            self._run_body(stmt.body)
            self._run_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            iter_domain = self._eval(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target.id, iter_domain, stmt, _describe(stmt.iter))
            self._run_body(stmt.body)
            self._run_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr)
            self._run_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._run_body(stmt.body)
            for handler in stmt.handlers:
                self._run_body(handler.body)
            self._run_body(stmt.orelse)
            self._run_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Nested defs/classes are indexed and analyzed as their own
        # functions by the project build; don't descend here.

    def _assign_target(
        self, target: ast.expr, domain: str | None, value: ast.expr
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, domain, target, _describe(value))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env.pop(element.id, None)

    # --------------------------------------------------------- expressions

    def _eval(self, node: ast.expr, wrap_safe: bool = False) -> str | None:
        if isinstance(node, ast.Name):
            binding = self.env.get(node.id)
            return binding.domain if binding else None
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, wrap_safe)
            right = self._eval(node.right, wrap_safe)
            return self._binop_domain(
                node, node.op, left, right, node.left, node.right, wrap_safe
            )
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, wrap_safe)
        if isinstance(node, ast.Subscript):
            self._eval(node.slice if isinstance(node.slice, ast.expr) else node.value)
            return self._eval(node.value)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            body = self._eval(node.body)
            orelse = self._eval(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            domains = {self._eval(element) for element in node.elts}
            return domains.pop() if len(domains) == 1 else None
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Attribute):
            # ``x.real`` / ``x.T`` of a domained name keeps the domain.
            if isinstance(node.value, ast.Name) and node.attr in ("real", "T", "flat"):
                return self._eval(node.value)
            return None
        return None

    def _eval_call(self, node: ast.Call) -> str | None:
        name = self.module.call_name(node)
        canonical = (
            self.project.canonical_call(name, module=self.info.module)
            if name is not None
            else None
        )
        wrap_safe = canonical in WRAP_SAFE_CALLS

        arg_domains = [self._eval(arg, wrap_safe=wrap_safe) for arg in node.args]
        kw_domains = {
            kw.arg: self._eval(kw.value, wrap_safe=wrap_safe)
            for kw in node.keywords
            if kw.arg is not None
        }

        # Method calls on a tracked name: ``phases.mean()`` etc.
        if name is None and isinstance(node.func, ast.Attribute):
            return self._eval_method_call(node)

        if canonical is None:
            return None

        if canonical in WRAP_HOSTILE_CALLS:
            target = arg_domains[0] if arg_domains else None
            if target == WRAPPED_RAD and node.args:
                self._emit(
                    "VH302",
                    node,
                    f"`{name}` applied to wrapped phase: linear arithmetic "
                    "jumps by 2*pi at the seam; unwrap first "
                    "(`unwrap_phase`) or use `circular_mean`",
                    self._trace_of(node.args[0])
                    + (f"{self._where(node)}: consumed by `{name}(...)`",),
                )
                return None
            return target

        if canonical == "numpy.interp" and len(node.args) >= 3:
            return arg_domains[2]
        if canonical == "numpy.where" and len(node.args) >= 3:
            return (
                arg_domains[1]
                if arg_domains[1] == arg_domains[2]
                else None
            )
        if canonical in PASSTHROUGH_CALLS:
            return arg_domains[0] if arg_domains else None

        signature = self.project.signature_for(canonical)
        if signature is None:
            return None

        info = self.project.functions.get(canonical)
        for index, domain in enumerate(arg_domains):
            expected = (
                signature.params[index] if index < len(signature.params) else None
            )
            if expected is None or domain is None:
                continue
            if not domains_compatible(domain, expected):
                self._call_mismatch(
                    node, node.args[index], name, canonical, info, domain, expected,
                    signature.param_names[index]
                    if index < len(signature.param_names)
                    else f"arg {index}",
                )
        for keyword, domain in kw_domains.items():
            expected = signature.domain_for_keyword(keyword)
            if expected is None or domain is None:
                continue
            if not domains_compatible(domain, expected):
                kw_node = next(
                    (kw.value for kw in node.keywords if kw.arg == keyword), node
                )
                self._call_mismatch(
                    node, kw_node, name, canonical, info, domain, expected, keyword
                )
        return signature.returns

    def _eval_method_call(self, node: ast.Call) -> str | None:
        func = node.func
        assert isinstance(func, ast.Attribute)
        receiver = self._eval(func.value)
        for arg in node.args:
            self._eval(arg)
        for kw in node.keywords:
            if kw.value is not None:
                self._eval(kw.value)
        if func.attr in WRAP_HOSTILE_METHODS and receiver == WRAPPED_RAD:
            self._emit(
                "VH302",
                node,
                f"`.{func.attr}()` on wrapped phase: linear arithmetic jumps "
                "by 2*pi at the seam; unwrap first or use `circular_mean`",
                self._trace_of(func.value)
                + (f"{self._where(node)}: consumed by `.{func.attr}()`",),
            )
            return None
        if func.attr in PASSTHROUGH_METHODS:
            return receiver
        return None

    def _binop_domain(
        self,
        node: ast.AST,
        op: ast.operator,
        left: str | None,
        right: str | None,
        left_node: ast.expr,
        right_node: ast.expr,
        wrap_safe: bool = False,
    ) -> str | None:
        if isinstance(op, (ast.Add, ast.Sub)):
            if left is not None and right is not None:
                if not domains_compatible(left, right):
                    self._mismatch_binop(node, left, right, left_node, right_node)
                    return None
                if (
                    isinstance(op, ast.Sub)
                    and left == WRAPPED_RAD
                    and right == WRAPPED_RAD
                    and not wrap_safe
                ):
                    self._emit(
                        "VH302",
                        node,
                        "subtraction of wrapped phases without re-wrapping: "
                        "the difference jumps by 2*pi at the +-pi seam; use "
                        "`phase_difference` or wrap the result (`wrap_phase`)",
                        self._trace_of(left_node) + self._trace_of(right_node),
                    )
                    return None
                merged = left if left == right else RAD
                return _SUB_RESULT.get(merged, merged) if isinstance(op, ast.Sub) else merged
            return left if left is not None else right
        if isinstance(op, (ast.Mult, ast.Div)):
            pi_left = _contains_pi(left_node, self.module)
            pi_right = _contains_pi(right_node, self.module)
            if isinstance(op, ast.Mult):
                if left == HZ and pi_right or right == HZ and pi_left:
                    return RAD_PER_S
                known, other_node = (
                    (left, right_node) if left is not None else (right, left_node)
                )
                if known is not None and _is_dimensionless(other_node):
                    return known
            else:
                if left == RAD_PER_S and pi_right:
                    return HZ
                # Division only preserves the unit when the *numerator*
                # carries it (``f / 2``); ``1 / f`` inverts the unit.
                if left is not None and _is_dimensionless(right_node):
                    return left
            return None
        return None

    # ------------------------------------------------------------- events

    def _mismatch(
        self, node: ast.expr, found: str, expected: str, context: str
    ) -> None:
        rule = classify_mismatch(found, expected)
        self._emit(
            rule,
            node,
            f"{context}: value of domain [{found}] flows where [{expected}] "
            f"is expected{_hint(found, expected)}",
            self._trace_of(node),
        )

    def _mismatch_binop(
        self,
        node: ast.AST,
        left: str,
        right: str,
        left_node: ast.expr,
        right_node: ast.expr,
    ) -> None:
        rule = classify_mismatch(left, right)
        self._emit(
            rule,
            node,
            f"arithmetic mixes [{left}] with [{right}]"
            f"{_hint(left, right)}",
            self._trace_of(left_node) + self._trace_of(right_node),
        )

    def _call_mismatch(
        self,
        call: ast.Call,
        arg_node: ast.expr,
        spelled: str | None,
        canonical: str,
        info: "FunctionInfo | None",
        found: str,
        expected: str,
        param: str,
    ) -> None:
        cross_module = info is not None and info.module != _caller_module(self)
        rule = (
            "VH304" if cross_module else classify_mismatch(found, expected)
        )
        label = spelled or canonical
        message = (
            f"call leaks [{found}] into `{label}({param}: [{expected}])`"
            f"{_hint(found, expected)}"
        )
        if cross_module:
            assert info is not None
            message = (
                f"cross-module domain leak: [{found}] passed to "
                f"`{info.qualname}` parameter `{param}` declared [{expected}]"
                f"{_hint(found, expected)}"
            )
        self._emit(
            rule,
            arg_node if hasattr(arg_node, "lineno") else call,
            message,
            self._trace_of(arg_node)
            + (f"{self._where(call)}: passed to `{label}` (`{param}`: [{expected}])",),
        )


def _caller_module(pass_: _DomainPass) -> str:
    return pass_.info.module


def _is_dimensionless(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float, complex))
    if isinstance(node, ast.UnaryOp):
        return _is_dimensionless(node.operand)
    return False


def _describe(node: ast.expr | None) -> str:
    if node is None:
        return "assignment"
    if isinstance(node, ast.Call):
        return f"{ast.unparse(node.func)}(...)" if hasattr(ast, "unparse") else "call"
    if isinstance(node, ast.Name):
        return f"`{node.id}`"
    return type(node).__name__.lower()


def _hint(a: str, b: str) -> str:
    pair = {a, b}
    if pair == {DEG, RAD} or pair == {DEG, WRAPPED_RAD} or pair == {DEG, UNWRAPPED_RAD}:
        return "; convert with `np.deg2rad`/`np.rad2deg`"
    if pair == {HZ, RAD_PER_S}:
        return "; convert with `omega = 2 * np.pi * f`"
    if pair == {WRAPPED_RAD, UNWRAPPED_RAD}:
        return "; `unwrap_phase` produces a continuous track, `wrap_phase` folds back"
    return ""


def infer_return_domain(info: "FunctionInfo", project: "ProjectContext") -> str | None:
    """Return domain of ``info`` inferred from its return expressions.

    Used by the callgraph summary pass; events are suppressed.  Returns
    a domain only when every ``return`` with a known domain agrees.
    """
    pass_ = _DomainPass(info, project, collect_events=False)
    pass_.run()
    known = {domain for domain in pass_.return_domains if domain is not None}
    if len(known) == 1 and None not in pass_.return_domains:
        return known.pop()
    if len(known) == 1:
        # Mixed known/unknown: still usable as a summary — the unknown
        # paths cannot be checked anyway, and a partial summary catches
        # more than no summary.
        return known.pop()
    return None


def _domain_events(project: "ProjectContext") -> list[_Event]:
    cached = project.memo.get(_MEMO_KEY)
    if cached is not None:
        return cached  # type: ignore[return-value]
    events: list[_Event] = []
    seen: set[tuple[str, int, int, str, str]] = set()
    for info in project.functions.values():
        pass_ = _DomainPass(info, project)
        pass_.run()
        for event in pass_.events:
            key = (event.path, event.line, event.col, event.rule, event.message)
            if key not in seen:
                seen.add(key)
                events.append(event)
    events.sort(key=lambda e: (e.path, e.line, e.col, e.rule))
    project.memo[_MEMO_KEY] = events
    return events


class _DomainFlowRule(ProjectRule):
    """Shared scaffolding: each concrete rule reports its slice of the
    one dataflow pass (memoised on the project context)."""

    severity = Severity.ERROR

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        for event in _domain_events(project):
            if event.rule == self.id:
                yield Finding(
                    path=event.path,
                    line=event.line,
                    col=event.col,
                    rule=self.id,
                    severity=self.severity,
                    message=event.message,
                    trace=event.trace,
                )


class DegRadFlowRule(_DomainFlowRule):
    id = "VH301"
    name = "deg-rad-flow"
    description = "degrees mixed into a radian context (or vice versa)"
    rationale = (
        "Every numeric path in this codebase runs in radians; degrees exist "
        "only at the presentation edge. A [deg] value reaching `np.sin`, "
        "`wrap_phase` or any radian-declared parameter is wrong by a factor "
        "of ~57 and no test that only checks shapes will notice."
    )


class WrappedUnwrappedFlowRule(_DomainFlowRule):
    id = "VH302"
    name = "wrapped-unwrapped-flow"
    description = "wrapped phase consumed by linear arithmetic, or wrapping-state mix-up"
    rationale = (
        "Wrapped phase lives on the circle: subtraction, `np.diff` and "
        "arithmetic means jump by 2*pi at the +-pi seam (Eq. 1 / Fig. 3 are "
        "meaningful only because the sanitizer re-wraps). Difference on the "
        "circle via `phase_difference`, average via `circular_mean`, and "
        "unwrap exactly once before DTW."
    )


class FreqAngularRateFlowRule(_DomainFlowRule):
    id = "VH303"
    name = "hz-radps-flow"
    description = "frequency [Hz] confused with angular rate [rad/s]"
    rationale = (
        "A frequency in Hz and an angular rate in rad/s differ by 2*pi — "
        "small enough to look plausible in a plot, large enough to wreck "
        "Doppler matching and gyro thresholds. The conversion must be "
        "explicit: `omega = 2 * np.pi * f`."
    )


class CrossCallDomainLeakRule(_DomainFlowRule):
    id = "VH304"
    name = "cross-call-domain-leak"
    description = "cross-module call whose argument contradicts the declared parameter domain"
    rationale = (
        "Per-module lint survives a refactor only until a value crosses a "
        "module boundary; this rule checks every project-internal call site "
        "against the callee's declared domains, so moving code between "
        "modules cannot silently change a value's meaning."
    )
