"""Determinism rules (VH1xx): no hidden entropy, no hidden clocks.

The serving layer's acceptance property — estimates served through the
:class:`~repro.serve.manager.SessionManager` are *bit-identical* to a
standalone replay — is only provable because every random draw in the
estimation path flows from an explicit seed and no estimate depends on
when it was computed.  These rules reject the constructs that erode
that property one innocent-looking line at a time.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import Finding, ModuleContext, Rule

__all__ = [
    "GlobalNumpyRandomRule",
    "StdlibRandomRule",
    "ClockReadRule",
    "UnseededGeneratorRule",
    "SeedlessSeedParamRule",
]

#: ``numpy.random`` attributes that are *not* draws from the legacy
#: global state: constructors, seeding plumbing and submodule types.
_NUMPY_RANDOM_SAFE = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "default_rng",
    "RandomState",  # covered separately by VH104
}

#: Clock reads.  Monotonic clocks are listed too: an estimate that
#: depends on *any* clock read cannot be replayed bit-identically, so
#: even ``perf_counter`` needs an allowlist entry (CLI progress timing,
#: loadgen throughput measurement) to appear in a covered module.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Callables that construct an RNG and fall back to OS entropy when the
#: seed argument is missing or ``None``.
_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "random.Random",
}


def _iter_calls(module: ModuleContext) -> Iterator[tuple[ast.Call, str]]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = module.call_name(node)
            if name is not None:
                yield node, name


class GlobalNumpyRandomRule(Rule):
    """Forbid draws from numpy's hidden global RandomState."""

    id = "VH101"
    name = "global-numpy-rng"
    description = "call into the global `np.random.*` state"
    rationale = (
        "Draws from numpy's module-level RandomState depend on every draw "
        "any other code made before them; replaying a session can never be "
        "bit-identical. Thread an explicit `np.random.Generator` instead."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node, name in _iter_calls(module):
            parts = name.split(".")
            if (
                len(parts) == 3
                and parts[:2] == ["numpy", "random"]
                and parts[2] not in _NUMPY_RANDOM_SAFE
            ):
                yield self.finding(
                    module,
                    node,
                    f"`{name}` draws from numpy's global RNG state; "
                    "thread a seeded `np.random.Generator` instead",
                )


class StdlibRandomRule(Rule):
    """Forbid draws from the stdlib `random` module's global instance."""

    id = "VH102"
    name = "stdlib-random"
    description = "call into the stdlib `random` module's global RNG"
    rationale = (
        "`random.random()` and friends share one process-global Mersenne "
        "Twister; any library call can perturb the stream. Estimation code "
        "must draw from an explicitly seeded generator."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.imports_module("random"):
            return
        for node, name in _iter_calls(module):
            parts = name.split(".")
            if len(parts) == 2 and parts[0] == "random" and parts[1] != "Random":
                yield self.finding(
                    module,
                    node,
                    f"`{name}` uses the process-global stdlib RNG; "
                    "use a seeded `random.Random` or `np.random.Generator`",
                )


class ClockReadRule(Rule):
    """Forbid clock reads (wall or monotonic) in estimation modules."""

    id = "VH103"
    name = "clock-read"
    description = "clock read (`time.time`, `datetime.now`, `perf_counter`, ...)"
    rationale = (
        "An estimate that depends on a clock read cannot be replayed "
        "bit-identically, and `time.time()` is not even monotonic (NTP "
        "steps it backwards). Estimation code must be a pure function of "
        "packets and stream timestamps; measurement harnesses that "
        "legitimately time wall progress (CLI, loadgen) carry reviewed "
        "allowlist entries."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node, name in _iter_calls(module):
            if name in _CLOCK_CALLS and module.imports_module(name.split(".")[0]):
                yield self.finding(
                    module,
                    node,
                    f"`{name}()` reads a clock; estimation paths must depend "
                    "only on stream timestamps (allowlist measurement code "
                    "explicitly in repro.analysis.config)",
                )


class UnseededGeneratorRule(Rule):
    """Forbid RNG construction that falls back to OS entropy."""

    id = "VH104"
    name = "unseeded-rng"
    description = "RNG constructed without an explicit seed"
    rationale = (
        "`np.random.default_rng()` with no (or None) seed pulls OS entropy, "
        "so two runs of the same session diverge. Every generator in this "
        "codebase is constructed from an explicit seed or SeedSequence."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node, name in _iter_calls(module):
            if name not in _RNG_CONSTRUCTORS:
                continue
            seed_args = [a for a in node.args if not isinstance(a, ast.Starred)]
            seed_kwarg = next((k.value for k in node.keywords if k.arg == "seed"), None)
            has_star = any(isinstance(a, ast.Starred) for a in node.args) or any(
                k.arg is None for k in node.keywords
            )
            seed = seed_kwarg if seed_kwarg is not None else (seed_args[0] if seed_args else None)
            explicit_none = isinstance(seed, ast.Constant) and seed.value is None
            if (seed is None and not has_star) or explicit_none:
                yield self.finding(
                    module,
                    node,
                    f"`{name}` without an explicit seed draws OS entropy; "
                    "pass a seed (or an rng threaded from one)",
                )


class SeedlessSeedParamRule(Rule):
    """Public constructors/functions must not default ``seed`` to None."""

    id = "VH105"
    name = "seedless-seed-param"
    description = "public `seed` parameter defaulting to None"
    rationale = (
        "A `seed=None` default makes the undeterministic path the default "
        "path: callers who forget the argument silently lose replayability. "
        "Default to a concrete integer seed instead."
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_") and node.name != "__init__":
                continue
            args = node.args
            positional = args.posonlyargs + args.args
            pairs = list(
                zip(positional[len(positional) - len(args.defaults):], args.defaults)
            ) + [
                (arg, default)
                for arg, default in zip(args.kwonlyargs, args.kw_defaults)
                if default is not None
            ]
            for arg, default in pairs:
                if (
                    arg.arg == "seed"
                    and isinstance(default, ast.Constant)
                    and default.value is None
                ):
                    yield self.finding(
                        module,
                        default,
                        f"`{node.name}` defaults `seed=None` (OS entropy); "
                        "default to a concrete integer seed",
                    )
