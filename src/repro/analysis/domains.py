"""The unit-domain lattice and the signature table the dataflow lint uses.

Static mirror of :mod:`repro.units`: this module knows which domains are
compatible, which VH3xx rule a given incompatible pair maps to, how
domains are declared in source (``Annotated[..., Domain("...")]`` or
``:domain name: ...`` docstring markers), and what the relevant numpy
callables do to domains (``np.deg2rad`` consumes ``deg`` and produces
``rad``; ``np.unwrap`` consumes ``wrapped_rad`` and produces
``unwrapped_rad``; ``np.asarray`` passes its argument's domain through).

Everything here is plain data + pure functions so that
:mod:`repro.analysis.dataflow` stays focused on propagation.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.units import (
    DEG,
    DOMAIN_NAMES,
    HZ,
    RAD,
    RAD_PER_S,
    UNWRAPPED_RAD,
    WRAPPED_RAD,
)

__all__ = [
    "Signature",
    "EXTERNAL_SIGNATURES",
    "PASSTHROUGH_CALLS",
    "PASSTHROUGH_METHODS",
    "WRAP_HOSTILE_CALLS",
    "WRAP_HOSTILE_METHODS",
    "WRAP_SAFE_CALLS",
    "classify_mismatch",
    "domains_compatible",
    "declared_domains_of",
    "domain_from_annotation",
]

#: The two unit families.  ``rad`` is the join of the two wrapping
#: states: a ``wrapped_rad`` or ``unwrapped_rad`` value is acceptable
#: where generic radians are expected, but not vice versa between the
#: two specific states.
_ANGLE_FAMILY = frozenset({RAD, WRAPPED_RAD, UNWRAPPED_RAD, DEG})
_FREQ_FAMILY = frozenset({HZ, RAD_PER_S})


def domains_compatible(a: str, b: str) -> bool:
    """True when a value of domain ``a`` may flow where ``b`` is expected."""
    if a == b:
        return True
    # Generic radians absorb (and supply) either wrapping state.
    rad_family = {RAD, WRAPPED_RAD, UNWRAPPED_RAD}
    if a in rad_family and b in rad_family:
        return a == RAD or b == RAD
    return False


def classify_mismatch(a: str, b: str) -> str:
    """Rule id for the incompatible pair ``(a, b)``.

    VH301 deg<->rad confusion, VH302 wrapped<->unwrapped confusion,
    VH303 Hz<->rad/s confusion.  Cross-family nonsense (an angle fed
    where a frequency is expected) reports under the frequency rule
    when a frequency domain is involved, else under VH301.
    """
    pair = {a, b}
    if pair & _FREQ_FAMILY:
        return "VH303"
    if DEG in pair:
        return "VH301"
    if pair == {WRAPPED_RAD, UNWRAPPED_RAD}:
        return "VH302"
    return "VH301"


@dataclass(frozen=True)
class Signature:
    """Domain behaviour of one callable.

    ``params`` maps parameter *position* to the expected domain (None =
    unconstrained); ``param_names`` gives the keyword spellings for the
    same slots.  ``returns`` is the produced domain (None = unknown).
    """

    params: tuple[str | None, ...] = ()
    returns: str | None = None
    param_names: tuple[str, ...] = ()

    def domain_for_keyword(self, keyword: str) -> str | None:
        if keyword in self.param_names:
            return self.params[self.param_names.index(keyword)]
        return None


#: Unit-relevant numpy (and stdlib math) callables, by canonical dotted
#: name as resolved through import aliases.
EXTERNAL_SIGNATURES: dict[str, Signature] = {
    "numpy.deg2rad": Signature((DEG,), RAD, ("x",)),
    "numpy.radians": Signature((DEG,), RAD, ("x",)),
    "numpy.rad2deg": Signature((RAD,), DEG, ("x",)),
    "numpy.degrees": Signature((RAD,), DEG, ("x",)),
    "numpy.unwrap": Signature((WRAPPED_RAD,), UNWRAPPED_RAD, ("p",)),
    "numpy.angle": Signature((), WRAPPED_RAD),
    "numpy.arctan2": Signature((), WRAPPED_RAD),
    "numpy.arcsin": Signature((), RAD),
    "numpy.arccos": Signature((), RAD),
    "numpy.arctan": Signature((), RAD),
    "numpy.sin": Signature((RAD,), None, ("x",)),
    "numpy.cos": Signature((RAD,), None, ("x",)),
    "numpy.tan": Signature((RAD,), None, ("x",)),
    "math.sin": Signature((RAD,), None, ("x",)),
    "math.cos": Signature((RAD,), None, ("x",)),
    "math.tan": Signature((RAD,), None, ("x",)),
    "math.radians": Signature((DEG,), RAD, ("x",)),
    "math.degrees": Signature((RAD,), DEG, ("x",)),
    "numpy.fft.fftfreq": Signature((), HZ),
    "numpy.fft.rfftfreq": Signature((), HZ),
}

#: Calls that return (a possibly reshaped copy of) their first argument
#: with the unit domain intact.
PASSTHROUGH_CALLS = frozenset(
    {
        "numpy.asarray",
        "numpy.array",
        "numpy.ascontiguousarray",
        "numpy.copy",
        "numpy.atleast_1d",
        "numpy.atleast_2d",
        "numpy.squeeze",
        "numpy.ravel",
        "numpy.reshape",
        "numpy.concatenate",
        "numpy.fft.fftshift",
        "numpy.abs",
        "numpy.absolute",
        "numpy.flip",
        "numpy.sort",
        "numpy.clip",
        "numpy.where",  # handled specially: joins args 2 and 3
        "float",
        "abs",
        "numpy.float64",
        "numpy.interp",  # interp(x, xp, fp) returns fp's domain — see dataflow
    }
)

#: Zero-argument ndarray methods (and ``astype``) that keep the domain.
PASSTHROUGH_METHODS = frozenset(
    {"copy", "astype", "ravel", "flatten", "reshape", "squeeze", "item", "mean", "sum"}
)

#: Reductions/differences that are *linear* in their input and therefore
#: meaningless on wrapped phases: ``np.diff`` across the +-pi seam jumps
#: by 2*pi, ``np.mean`` of wrapped angles averages the wrong way around
#: the circle.  Feeding a ``wrapped_rad`` value to any of these is the
#: canonical ViHOT bug (use ``unwrap_phase`` / ``circular_mean``).
WRAP_HOSTILE_CALLS = frozenset(
    {
        "numpy.diff",
        "numpy.gradient",
        "numpy.mean",
        "numpy.average",
        "numpy.median",
        "numpy.std",
        "numpy.var",
        "numpy.cumsum",
        "numpy.sum",
        "numpy.trapz",
    }
)

#: Same hazard, spelled as ndarray methods (``phases.mean()``).
WRAP_HOSTILE_METHODS = frozenset({"mean", "sum", "std", "var", "cumsum"})

#: Calls whose *arguments* may legitimately subtract wrapped phases: the
#: result is immediately re-wrapped, which is the one correct way to
#: difference on the circle.
WRAP_SAFE_CALLS = frozenset(
    {
        "repro.dsp.phase.wrap_phase",
        "repro.geometry.rotations.wrap_angle",
    }
)

#: ``:domain <param>: <name>`` / ``:domain return: <name>`` docstring lines.
_DOCSTRING_DOMAIN_RE = re.compile(
    r"^\s*:domain\s+(?P<param>\w+)\s*:\s*(?P<name>\w+)\s*$", re.MULTILINE
)


def domain_from_annotation(annotation: ast.expr | None) -> str | None:
    """Extract ``Domain("...")`` from an ``Annotated[...]`` expression.

    Matches syntactically: ``Annotated[T, Domain("wrapped_rad"), ...]``
    with ``Annotated`` and ``Domain`` under any import spelling whose
    final attribute matches (``typing.Annotated``, ``t.Annotated``, a
    bare ``Annotated``).  Returns the domain name or None.
    """
    if annotation is None or not isinstance(annotation, ast.Subscript):
        return None
    if _final_name(annotation.value) != "Annotated":
        return None
    inner = annotation.slice
    metadata = inner.elts[1:] if isinstance(inner, ast.Tuple) else []
    for meta in metadata:
        if (
            isinstance(meta, ast.Call)
            and _final_name(meta.func) == "Domain"
            and meta.args
            and isinstance(meta.args[0], ast.Constant)
            and isinstance(meta.args[0].value, str)
        ):
            name = meta.args[0].value
            if name in DOMAIN_NAMES:
                return name
    return None


def _final_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def declared_domains_of(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[dict[str, str], str | None]:
    """Declared ``(param -> domain, return domain)`` for a function.

    ``Annotated[..., Domain(...)]`` markers win; ``:domain p: name``
    docstring lines fill in anything the signature leaves out (the
    convention for ``ArrayLike`` params where ``Annotated`` is noisy).
    """
    params: dict[str, str] = {}
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        domain = domain_from_annotation(arg.annotation)
        if domain is not None:
            params[arg.arg] = domain
    returns = domain_from_annotation(fn.returns)

    docstring = ast.get_docstring(fn, clean=False) or ""
    for match in _DOCSTRING_DOMAIN_RE.finditer(docstring):
        param, name = match.group("param"), match.group("name")
        if name not in DOMAIN_NAMES:
            continue
        if param == "return":
            if returns is None:
                returns = name
        elif param not in params:
            params[param] = name
    return params, returns
