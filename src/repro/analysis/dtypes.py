"""The numeric-dtype lattice and declaration parsing for the VH5xx rules.

Static mirror of :class:`repro.units.DType`: this module knows which
dtype transitions lose information (``complex128 -> float64`` drops the
phase, ``float64 -> float32`` halves the mantissa), how dtypes are
declared in source (``Annotated[..., DType("...")]`` or ``:dtype name:
...`` docstring markers), how arithmetic promotes dtypes, and what the
relevant numpy callables do to dtypes (``np.angle`` of a complex array
is ``float64``; ``np.abs`` of ``complex128`` is its ``float64``
magnitude; ``astype``/``asarray(dtype=...)`` are *explicit* casts that
re-pin the tracked dtype and therefore silence VH503).

Everything here is plain data + pure functions so that
:mod:`repro.analysis.shapes` stays focused on propagation.
"""

from __future__ import annotations

import ast
import re

from repro.units import DTYPE_NAMES

__all__ = [
    "CAST_CALLS",
    "REAL_OF_COMPLEX",
    "declared_dtypes_of",
    "dtype_from_annotation",
    "dtype_from_expr",
    "dtype_kind",
    "dtype_width",
    "is_silent_downcast",
    "promote",
]

#: kind ordering for promotion: bool < int < float < complex.
_KIND_ORDER = ("bool", "int", "float", "complex")

#: Magnitude/real-part dtype of each complex width.
REAL_OF_COMPLEX = {"complex128": "float64", "complex64": "float32"}

#: Calls that *are* an explicit cast: canonical dotted name -> produced
#: dtype.  An explicit cast re-pins the tracked dtype, so a value routed
#: through one never trips VH503 — that is the remediation the rule asks
#: for ("make the narrowing visible in source").
CAST_CALLS: dict[str, str] = {
    "numpy.float32": "float32",
    "numpy.float64": "float64",
    "numpy.complex64": "complex64",
    "numpy.complex128": "complex128",
    "numpy.int32": "int32",
    "numpy.int64": "int64",
    "float": "float64",
    "int": "int64",
    "bool": "bool",
}

#: ``:dtype <param>: <name>`` / ``:dtype return: <name>`` docstring lines.
_DOCSTRING_DTYPE_RE = re.compile(
    r"^\s*:dtype\s+(?P<param>\w+)\s*:\s*(?P<name>\w+)\s*$", re.MULTILINE
)


def dtype_kind(name: str) -> str:
    """``bool`` / ``int`` / ``float`` / ``complex`` family of a dtype."""
    for kind in ("complex", "float", "int"):
        if name.startswith(kind):
            return kind
    return "bool"


def dtype_width(name: str) -> int:
    """Bit width of a dtype name (``bool`` counts as 8)."""
    digits = "".join(ch for ch in name if ch.isdigit())
    return int(digits) if digits else 8


def is_silent_downcast(src: str, dst: str) -> bool:
    """True when assigning a ``src`` value to a ``dst`` slot loses information.

    The VH503 transitions: any complex value landing in a non-complex
    slot (the phase — the quantity this whole pipeline tracks — is
    discarded), and any float/complex narrowing (``float64 -> float32``,
    ``complex128 -> complex64``).  Integer narrowing is out of scope:
    the estimation path carries no int arrays whose width matters.
    """
    if src == dst:
        return False
    src_kind, dst_kind = dtype_kind(src), dtype_kind(dst)
    if src_kind == "complex" and dst_kind != "complex":
        return True
    if src_kind in ("float", "complex") and src_kind == dst_kind:
        return dtype_width(dst) < dtype_width(src)
    return False


def promote(a: str | None, b: str | None) -> str | None:
    """Result dtype of elementwise arithmetic between ``a`` and ``b``.

    Mirrors numpy's same-kind promotion (wider width wins, complex
    beats float beats int); returns ``None`` when either side is
    unknown or the pair needs value-dependent casting rules.
    """
    if a is None or b is None:
        return None
    if a == b:
        return a
    ka, kb = dtype_kind(a), dtype_kind(b)
    if ka == kb:
        return a if dtype_width(a) >= dtype_width(b) else b
    # Cross-kind: the higher kind wins at its own width when the lower
    # kind fits (float64 + int64 -> float64, complex128 + float64 ->
    # complex128).  Mixed widths across kinds (complex64 + float64)
    # follow numpy rules we don't reproduce — give up.
    hi, lo = (a, b) if _KIND_ORDER.index(ka) > _KIND_ORDER.index(kb) else (b, a)
    if dtype_width(hi) >= dtype_width(lo) or dtype_kind(lo) in ("bool", "int"):
        return hi
    return None


def dtype_from_annotation(annotation: ast.expr | None) -> str | None:
    """Extract ``DType("...")`` from an ``Annotated[...]`` expression."""
    if annotation is None or not isinstance(annotation, ast.Subscript):
        return None
    if _final_name(annotation.value) != "Annotated":
        return None
    inner = annotation.slice
    metadata = inner.elts[1:] if isinstance(inner, ast.Tuple) else []
    for meta in metadata:
        if (
            isinstance(meta, ast.Call)
            and _final_name(meta.func) == "DType"
            and meta.args
            and isinstance(meta.args[0], ast.Constant)
            and isinstance(meta.args[0].value, str)
        ):
            name = meta.args[0].value
            if name in DTYPE_NAMES:
                return name
    return None


def _final_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def dtype_from_expr(node: ast.expr | None) -> str | None:
    """Dtype named by a ``dtype=`` argument expression, or None.

    Understands ``np.float32`` (any alias spelling — only the final
    attribute is matched, like the annotation parsers), the string
    ``"float32"``, and ``float`` / ``complex`` builtins.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in DTYPE_NAMES else None
    name = _final_name(node)
    if name is None:
        return None
    if name in DTYPE_NAMES:
        return name
    return {"float": "float64", "complex": "complex128", "bool": "bool"}.get(name)


def declared_dtypes_of(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> tuple[dict[str, str], str | None]:
    """Declared ``(param -> dtype, return dtype)`` for a function.

    ``Annotated[..., DType(...)]`` markers win; ``:dtype p: name``
    docstring lines fill in anything the signature leaves out (the
    convention for ``ArrayLike`` params where ``Annotated`` is noisy).
    """
    params: dict[str, str] = {}
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        dtype = dtype_from_annotation(arg.annotation)
        if dtype is not None:
            params[arg.arg] = dtype
    returns = dtype_from_annotation(fn.returns)

    docstring = ast.get_docstring(fn, clean=False) or ""
    for match in _DOCSTRING_DTYPE_RE.finditer(docstring):
        param, name = match.group("param"), match.group("name")
        if name not in DTYPE_NAMES:
            continue
        if param == "return":
            if returns is None:
                returns = name
        elif param not in params:
            params[param] = name
    return params, returns
