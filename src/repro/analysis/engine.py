"""The rule engine behind ``vihot lint``.

Deliberately small: a file walker, an import-aware module context, a
rule registry, and structured findings.  Rules (see
:mod:`repro.analysis.determinism` and :mod:`repro.analysis.contracts`)
are classes with an ``id`` and a ``check(module)`` generator; the
engine handles everything rule authors should not re-implement —
resolving ``np.random.default_rng`` through import aliases, inline
``# vihot: noqa[RULE]`` suppression, and the reviewed path allowlist.

Suppression has exactly two mechanisms, both auditable:

* inline — append ``# vihot: noqa[VH103]`` (or bare ``# vihot: noqa``)
  to the offending physical line;
* allowlist — register ``(path suffix, rule id, reason)`` in
  :data:`repro.analysis.config.DEFAULT_ALLOWLIST`, which is the
  reviewed place for whole-file exemptions such as CLI progress timing.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.callgraph import ProjectContext

__all__ = [
    "Allowlist",
    "Analyzer",
    "Finding",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "Severity",
]


class Severity(enum.Enum):
    """How bad a finding is; ``ERROR`` findings fail the build."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a source location.

    ``trace`` carries the dataflow provenance for project-scope rules
    (how the offending value reached its domain), empty for the
    per-module pattern rules.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: Severity = field(compare=False)
    message: str = field(compare=False)
    trace: tuple[str, ...] = field(default=(), compare=False)

    def format(self) -> str:
        head = f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"
        if not self.trace:
            return head
        return "\n".join([head, *(f"    trace: {step}" for step in self.trace)])

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "trace": list(self.trace),
        }


#: ``# vihot: noqa`` or ``# vihot: noqa[VH101,VH103]`` on the physical line.
_NOQA_RE = re.compile(r"#\s*vihot:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")


class ModuleContext:
    """One parsed module plus the name-resolution helpers rules share.

    The context canonicalises import aliases so rules can match on
    dotted names instead of guessing at spellings: with
    ``import numpy as np``, ``np.random.default_rng`` resolves to
    ``numpy.random.default_rng``; with ``from time import perf_counter``,
    the bare name ``perf_counter`` resolves to ``time.perf_counter``.
    """

    def __init__(self, path: Path, rel_path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._aliases = self._collect_aliases(tree)

    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> canonical dotted target, from this module's imports."""
        return dict(self._aliases)

    @staticmethod
    def _collect_aliases(tree: ast.Module) -> dict[str, str]:
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    target = item.name if item.asname else item.name.split(".")[0]
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for item in node.names:
                    if item.name == "*":
                        continue
                    aliases[item.asname or item.name] = f"{node.module}.{item.name}"
        return aliases

    def qualified_name(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a ``Name``/``Attribute`` chain, or None.

        Local shadowing is not tracked (a function that rebinds ``time``
        will confuse this), which is fine for a lint that errs on the
        side of reporting.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    def call_name(self, node: ast.Call) -> str | None:
        """Canonical dotted name of a call's callee, or None."""
        return self.qualified_name(node.func)

    def imports_module(self, dotted: str) -> bool:
        """True if the module imports ``dotted`` (or anything inside it).

        Lets rules about stdlib modules (``time``, ``random``) skip files
        where the name could only be a local variable.
        """
        return any(
            target == dotted or target.startswith(dotted + ".")
            for target in self._aliases.values()
        )

    def noqa_rules(self, line: int) -> frozenset[str] | None:
        """Rules suppressed on physical ``line``; empty set means *all*."""
        if not 1 <= line <= len(self.lines):
            return None
        match = _NOQA_RE.search(self.lines[line - 1])
        if match is None:
            return None
        rules = match.group("rules")
        if rules is None:
            return frozenset()
        return frozenset(r.strip() for r in rules.split(",") if r.strip())


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` / ``name`` / ``description`` / ``rationale``
    and implement :meth:`check`.  ``rationale`` is surfaced by
    ``vihot lint --list-rules`` so the "why" travels with the rule
    instead of living only in a reviewer's head; ``example`` (optional)
    is a minimal trigger snippet shown by ``vihot lint --explain``.
    """

    id: str = "VH000"
    name: str = "abstract-rule"
    severity: Severity = Severity.ERROR
    description: str = ""
    rationale: str = ""
    example: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleContext,
        node: ast.AST,
        message: str,
        trace: Sequence[str] = (),
    ) -> Finding:
        return Finding(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
            trace=tuple(trace),
        )


class ProjectRule(Rule):
    """A rule that needs the whole-project view (call graph, summaries).

    Subclasses implement :meth:`check_project` against a
    :class:`repro.analysis.callgraph.ProjectContext`; the per-module
    :meth:`check` hook is a no-op so a ``ProjectRule`` can sit in the
    same registry without firing twice.
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError


@dataclass(frozen=True)
class AllowlistEntry:
    """One reviewed exemption: ``rule`` is allowed anywhere ``suffix`` matches."""

    suffix: str
    rule: str
    reason: str


class Allowlist:
    """Reviewed per-file exemptions, matched on path suffix.

    Suffix matching (``repro/cli.py`` matches both the repo checkout and
    an installed site-packages tree) keeps entries stable across layouts.
    """

    def __init__(self, entries: Sequence[AllowlistEntry] = ()) -> None:
        self.entries: tuple[AllowlistEntry, ...] = tuple(entries)

    def allows(self, rel_path: str, rule: str) -> bool:
        normalized = rel_path.replace("\\", "/")
        return any(
            entry.rule == rule and normalized.endswith(entry.suffix)
            for entry in self.entries
        )


class Analyzer:
    """Walk files, run every rule, apply suppression, return findings.

    Rules come in two scopes: plain :class:`Rule` subclasses see one
    :class:`ModuleContext` at a time; :class:`ProjectRule` subclasses
    see a :class:`~repro.analysis.callgraph.ProjectContext` built once
    per run from every parsed module (the call-graph / import-resolution
    layer).  ``cache_dir`` lets the project build memoise its
    inter-procedural summaries keyed on a source-tree hash.
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        allowlist: Allowlist | None = None,
        cache_dir: Path | str | None = None,
    ) -> None:
        ids = [rule.id for rule in rules]
        duplicates = {i for i in ids if ids.count(i) > 1}
        if duplicates:
            raise ValueError(f"duplicate rule ids: {sorted(duplicates)}")
        self.rules: tuple[Rule, ...] = tuple(rules)
        self.allowlist = allowlist if allowlist is not None else Allowlist()
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    @property
    def project_rules(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if isinstance(r, ProjectRule))

    def run(self, paths: Iterable[Path]) -> list[Finding]:
        findings: list[Finding] = []
        modules: list[ModuleContext] = []
        for path in self._iter_files(paths):
            parsed = self._parse_file(path)
            if isinstance(parsed, Finding):
                findings.append(parsed)
                continue
            modules.append(parsed)
            findings.extend(self._check_module(parsed))
        findings.extend(self._check_project(modules))
        return sorted(findings)

    def check_file(self, path: Path) -> list[Finding]:
        source = path.read_text(encoding="utf-8")
        return self.check_source(source, path=path)

    def check_source(self, source: str, path: Path | None = None) -> list[Finding]:
        parsed = self._parse_source(source, path if path is not None else Path("<string>"))
        if isinstance(parsed, Finding):
            return [parsed]
        findings = self._check_module(parsed)
        findings.extend(self._check_project([parsed]))
        return findings

    def _parse_file(self, path: Path) -> "ModuleContext | Finding":
        return self._parse_source(path.read_text(encoding="utf-8"), path)

    def _parse_source(self, source: str, path: Path) -> "ModuleContext | Finding":
        rel_path = self._relativize(path)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return Finding(
                path=rel_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="VH000",
                severity=Severity.ERROR,
                message=f"syntax error: {exc.msg}",
            )
        return ModuleContext(path, rel_path, source, tree)

    def _check_module(self, module: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                continue
            findings.extend(self._filtered(rule.check(module), module))
        return findings

    def _check_project(self, modules: Sequence[ModuleContext]) -> list[Finding]:
        project_rules = self.project_rules
        if not project_rules or not modules:
            return []
        from repro.analysis.callgraph import ProjectContext

        project = ProjectContext.build(modules, cache_dir=self.cache_dir)
        by_path = {module.rel_path: module for module in modules}
        findings: list[Finding] = []
        for rule in project_rules:
            for finding in rule.check_project(project):
                module = by_path.get(finding.path)
                if module is None:
                    findings.append(finding)
                    continue
                findings.extend(self._filtered([finding], module))
        return findings

    def _filtered(
        self, candidates: Iterable[Finding], module: ModuleContext
    ) -> list[Finding]:
        kept: list[Finding] = []
        for finding in candidates:
            if self.allowlist.allows(module.rel_path, finding.rule):
                continue
            suppressed = module.noqa_rules(finding.line)
            if suppressed is not None and (not suppressed or finding.rule in suppressed):
                continue
            kept.append(finding)
        return kept

    @staticmethod
    def _iter_files(paths: Iterable[Path]) -> Iterator[Path]:
        for path in paths:
            if path.is_dir():
                yield from sorted(
                    p for p in path.rglob("*.py") if "__pycache__" not in p.parts
                )
            elif path.suffix == ".py":
                yield path

    @staticmethod
    def _relativize(path: Path) -> str:
        """Repo-relative-looking path (from the ``repro`` package root down)."""
        parts = path.parts
        if "repro" in parts:
            index = len(parts) - 1 - parts[::-1].index("repro")
            return "/".join(parts[index:])
        return str(path)
