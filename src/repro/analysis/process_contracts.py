"""Runtime cross-check of the process-safety contracts (VH6xx).

The static concurrency pass (:mod:`repro.analysis.concurrency`) reasons
about shared-memory lifecycle and per-worker seed isolation without
running the code.  This module closes the loop from the other side,
mirroring :mod:`repro.analysis.runtime_contracts`: it wraps
:class:`~repro.serve.shm.SharedCsiRing` (every acquisition and release
is recorded in a ledger) and the worker entrypoint
(:class:`~repro.serve.fabric.ShardWorker` construction records a
per-worker identity: its pid, its ring, and a digest of every RNG
generator state reachable from its constructor inputs), and asserts two
invariants after a run:

* :func:`assert_balanced` — every segment this process acquired was
  released, **verified against the kernel**: a name with no recorded
  release is probed with ``SharedMemory(name=...)``; only
  ``FileNotFoundError`` (the segment is truly gone — e.g. the parent
  unlinked a ring a forked child acquired by attaching) excuses the
  missing ledger entry.  This is what makes the check fork-safe:
  events recorded inside a forked worker live in the worker's memory
  and never reach the parent's ledger, but the kernel's view of the
  segment is shared.
* :func:`assert_worker_divergence` — no two recorded workers share an
  RNG stream state (the VH604 failure mode: fork copies generator
  state byte for byte, so a pre-fork stream makes every worker draw
  identical "random" sequences), and no two live workers share a ring.

The wrappers never change behaviour: originals run first, recording
happens after, and all original exceptions propagate untouched.
Install with :func:`activate` (idempotent), remove with
:func:`deactivate`.  Patching happens at the *class* level (methods,
not module attributes), so ``from repro.serve.shm import SharedCsiRing``
aliases are covered automatically — every importer shares the one class
object — and forked children inherit the instrumented classes.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable

import numpy as np

__all__ = [
    "ContractViolation",
    "ShmEvent",
    "WorkerRecord",
    "activate",
    "active",
    "assert_balanced",
    "assert_worker_divergence",
    "clear_records",
    "deactivate",
    "records",
    "summary",
    "worker_records",
]

#: Cap on retained events, so a long soak cannot grow memory without
#: bound.  Assertions always run over what was retained.
_MAX_RECORDS = 10_000


class ContractViolation(AssertionError):
    """An observed run diverged from a declared process-safety contract."""


@dataclass(frozen=True)
class ShmEvent:
    """One recorded shared-memory lifecycle crossing.

    Attributes:
        kind: ``"acquire"`` (ring constructed) or ``"release"`` (closed).
        name: the kernel segment name (``/psm_...``).
        owner: whether this process created the segment (vs attached).
        unlink: for releases, whether the segment name was removed
            (``None`` on acquires).
        pid: the recording process.
    """

    kind: str
    name: str
    owner: bool
    unlink: bool | None
    pid: int


@dataclass(frozen=True)
class WorkerRecord:
    """One worker-entrypoint crossing: identity for divergence checks.

    Attributes:
        pid: the process the worker was built in (forked workers record
            in their own memory; inline workers record in the parent).
        ring_name: segment name of the CSI ring this worker serves.
        rng_digests: sha256 prefixes of every ``np.random.Generator``
            state reachable from the constructor inputs (bounded scan).
    """

    pid: int
    ring_name: str
    rng_digests: tuple[str, ...]


_EVENTS: list[ShmEvent] = []
_WORKERS: list[WorkerRecord] = []
#: (owner class, attribute name, original function) per patched slot.
_PATCHED: list[tuple[type, str, Callable[..., Any]]] = []


def _record_event(event: ShmEvent) -> None:
    if len(_EVENTS) < _MAX_RECORDS:
        _EVENTS.append(event)


def _generator_digests(
    obj: Any, depth: int = 4, seen: set[int] | None = None
) -> list[str]:
    """sha256 prefixes of every Generator state reachable from ``obj``.

    Bounded, cycle-safe recursion through dicts, sequences and instance
    ``__dict__``s — enough to reach a generator smuggled in through
    ``manager_kwargs`` or stored on the manager at construction.
    """
    if seen is None:
        seen = set()
    if depth < 0 or id(obj) in seen:
        return []
    seen.add(id(obj))
    if isinstance(obj, np.random.Generator):
        state = repr(obj.bit_generator.state)
        return [hashlib.sha256(state.encode()).hexdigest()[:16]]
    out: list[str] = []
    if isinstance(obj, dict):
        for value in obj.values():
            out.extend(_generator_digests(value, depth - 1, seen))
    elif isinstance(obj, (list, tuple, set, frozenset)):
        for value in obj:
            out.extend(_generator_digests(value, depth - 1, seen))
    elif hasattr(obj, "__dict__"):
        for value in vars(obj).values():
            out.extend(_generator_digests(value, depth - 1, seen))
    return out


def active() -> bool:
    """Whether the process-contract wrappers are currently installed."""
    return bool(_PATCHED)


def activate() -> int:
    """Install the wrappers; returns the number of patched slots.

    Idempotent.  Must run in the parent *before* the fabric forks so
    children inherit the instrumented classes.
    """
    if _PATCHED:
        return len(_PATCHED)
    from repro.serve.fabric import ShardWorker
    from repro.serve.shm import SharedCsiRing

    ring_init = SharedCsiRing.__init__
    ring_close = SharedCsiRing.close
    worker_init = ShardWorker.__init__

    def checked_ring_init(self: Any, *args: Any, **kwargs: Any) -> None:
        ring_init(self, *args, **kwargs)
        _record_event(
            ShmEvent(
                kind="acquire",
                name=self.name,
                owner=self.owner,
                unlink=None,
                pid=os.getpid(),
            )
        )

    def checked_ring_close(
        self: Any, unlink: bool | None = None
    ) -> None:
        # Capture identity before the original drops the views/mapping.
        name = self.name
        owner = self.owner
        ring_close(self, unlink)
        _record_event(
            ShmEvent(
                kind="release",
                name=name,
                owner=owner,
                unlink=unlink if unlink is not None else owner,
                pid=os.getpid(),
            )
        )

    def checked_worker_init(self: Any, *args: Any, **kwargs: Any) -> None:
        worker_init(self, *args, **kwargs)
        ring = getattr(self, "_ring", None)
        if len(_WORKERS) < _MAX_RECORDS:
            _WORKERS.append(
                WorkerRecord(
                    pid=os.getpid(),
                    ring_name=getattr(ring, "name", ""),
                    rng_digests=tuple(sorted(_generator_digests(self))),
                )
            )

    for owner_cls, attr, wrapper, original in (
        (SharedCsiRing, "__init__", checked_ring_init, ring_init),
        (SharedCsiRing, "close", checked_ring_close, ring_close),
        (ShardWorker, "__init__", checked_worker_init, worker_init),
    ):
        wrapper.__vihot_pcontract__ = True  # type: ignore[attr-defined]
        setattr(owner_cls, attr, wrapper)
        _PATCHED.append((owner_cls, attr, original))
    return len(_PATCHED)


def deactivate() -> None:
    """Restore every patched method to the original."""
    while _PATCHED:
        owner_cls, attr, original = _PATCHED.pop()
        current = getattr(owner_cls, attr, None)
        if getattr(current, "__vihot_pcontract__", False):
            setattr(owner_cls, attr, original)


def records() -> tuple[ShmEvent, ...]:
    """Shm lifecycle events recorded since the last :func:`clear_records`."""
    return tuple(_EVENTS)


def worker_records() -> tuple[WorkerRecord, ...]:
    """Worker-entrypoint records since the last :func:`clear_records`."""
    return tuple(_WORKERS)


def clear_records() -> None:
    del _EVENTS[:]
    del _WORKERS[:]


def summary() -> dict[str, int]:
    """Event counts: acquires, releases, unlinks, workers, leak suspects."""
    acquires = sum(1 for e in _EVENTS if e.kind == "acquire")
    releases = sum(1 for e in _EVENTS if e.kind == "release")
    unlinks = sum(1 for e in _EVENTS if e.kind == "release" and e.unlink)
    return {
        "acquires": acquires,
        "releases": releases,
        "unlinks": unlinks,
        "workers": len(_WORKERS),
        "unreleased": len(_unreleased_names()),
    }


def _unreleased_names() -> list[str]:
    released = {e.name for e in _EVENTS if e.kind == "release"}
    return sorted(
        {e.name for e in _EVENTS if e.kind == "acquire"} - released
    )


def _segment_exists(name: str) -> bool:
    """Whether the kernel still knows ``name`` (the fork-safe probe)."""
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


def assert_balanced() -> None:
    """Every acquired segment was released (ledger, or kernel probe).

    Raises :class:`ContractViolation` naming the leaked segments: those
    with neither a recorded release nor a kernel that has forgotten the
    name.  Call after the fabric under test has been closed.
    """
    leaked = [name for name in _unreleased_names() if _segment_exists(name)]
    if leaked:
        raise ContractViolation(
            "shared-memory segments acquired but never released "
            f"(still attachable): {', '.join(leaked)} — every "
            "SharedCsiRing must reach close()/unlink() on shutdown and "
            "failover paths (VH602's runtime half)"
        )


def assert_worker_divergence() -> None:
    """No two workers share an RNG stream state or a CSI ring.

    A shared stream digest is the VH604 failure mode observed live: two
    workers would draw identical "random" sequences.  A shared ring
    means two workers consuming one queue — double-serving.  Vacuous
    when fewer than two workers were recorded in this process (forked
    workers record in their own memory).
    """
    seen_digest: dict[str, int] = {}
    seen_ring: dict[str, int] = {}
    for worker_index, record in enumerate(_WORKERS):
        for digest in record.rng_digests:
            if digest in seen_digest:
                raise ContractViolation(
                    f"workers #{seen_digest[digest]} and #{worker_index} "
                    f"share RNG stream state {digest}: per-worker draws "
                    "are identical (VH604's runtime half) — derive a "
                    "distinct seed per worker"
                )
            seen_digest[digest] = worker_index
        if record.ring_name:
            if record.ring_name in seen_ring:
                raise ContractViolation(
                    f"workers #{seen_ring[record.ring_name]} and "
                    f"#{worker_index} share CSI ring "
                    f"{record.ring_name}: one queue, two consumers"
                )
            seen_ring[record.ring_name] = worker_index
