"""Runtime cross-check of the declared shape/dtype contracts (VH5xx).

The static shape pass (:mod:`repro.analysis.shapes`) reasons about the
``:shape``/``:dtype`` docstring markers without ever running the code.
This module closes the loop from the other side: it wraps the annotated
kernel boundaries at run time, records the shapes and dtypes that
actually flow through them, and raises :class:`ContractViolation` when
an observed call diverges from its declaration.  The tier-1 suite runs
with the wrappers installed (``pytest --runtime-contracts``), so a
declaration the static pass trusts is also one the tests have witnessed.

Semantics mirror the static pass:

* Axis symbols (``S``, ``B``, ``m``, ...) bind to concrete sizes *per
  call*: within one call every occurrence of a symbol must agree —
  ``stacked_dtw_distance(queries=(3, 40), candidates=(3, 7, 50))`` binds
  ``S=3`` once and checks both parameters and the ``(S, B)`` return
  against it.  Integer literals must match exactly.
* A declaration with alternatives (``(T,) | (S, T)``) accepts a value
  matching any one alternative; rank disambiguates first, then symbol
  consistency.
* Declared dtypes are exact: ``:dtype return: float64`` means the value
  must come back as ``float64``, not merely something castable.

The wrappers never pre-empt a function's own validation: the wrapped
function runs first, and its exceptions propagate untouched.  Contracts
only judge calls the kernel itself accepted — they exist to catch
*silent* divergence, not to re-raise loud errors.

Install with :func:`activate` (idempotent), remove with
:func:`deactivate`.  Because ``from x import f`` re-binds names,
activation patches every alias of a boundary function found across the
already-imported ``repro`` modules, and restores each one on
deactivation.
"""

from __future__ import annotations

import functools
import inspect
import sys
from dataclasses import dataclass, field
from types import ModuleType
from typing import Any, Callable

import numpy as np

from repro.analysis.dtypes import _DOCSTRING_DTYPE_RE
from repro.analysis.shapes import _DOCSTRING_SHAPE_RE, _parse_shape_spec

__all__ = [
    "CONTRACT_BOUNDARIES",
    "ContractViolation",
    "ObservedCall",
    "activate",
    "active",
    "clear_records",
    "deactivate",
    "records",
    "summary",
]

#: Dotted names of the annotated kernel boundaries the runtime check
#: wraps.  Every entry must resolve to a function whose docstring
#: carries at least one ``:shape``/``:dtype`` marker — :func:`activate`
#: refuses to install a wrapper with nothing to check, so a renamed or
#: de-annotated kernel fails loudly here instead of silently passing.
CONTRACT_BOUNDARIES: tuple[str, ...] = (
    "repro.dsp.dtw.batched_dtw_distance",
    "repro.dsp.dtw.stacked_dtw_distance",
    "repro.dsp.windows.sliding_windows",
    "repro.dsp.phase.unwrap_phase",
    "repro.core.sanitize.antenna_phase_difference",
    "repro.core.sanitize.sanitize_stream",
    "repro.core.sanitize.sanitize_streams",
    "repro.dsp.spectral.doppler_spread",
)

#: Cap on retained observations, so a long soak cannot grow memory
#: without bound.  Violations always raise regardless of the cap.
_MAX_RECORDS = 10_000


class ContractViolation(AssertionError):
    """An observed call diverged from its declared shape/dtype contract."""


@dataclass(frozen=True)
class ObservedCall:
    """One recorded crossing of an annotated boundary.

    Attributes:
        boundary: dotted name of the wrapped function.
        shapes: observed array shape per checked parameter (and
            ``"return"``), in call order.
        dtypes: observed dtype name per checked parameter.
        bindings: the axis-symbol sizes this call pinned (``{"S": 3}``).
    """

    boundary: str
    shapes: tuple[tuple[str, tuple[int, ...]], ...]
    dtypes: tuple[tuple[str, str], ...]
    bindings: tuple[tuple[str, int], ...]


@dataclass
class _Contract:
    """The parsed declaration of one boundary function."""

    boundary: str
    func: Callable[..., Any]
    signature: inspect.Signature
    # param -> tuple of shape alternatives (each a tuple of str|int)
    shapes: dict[str, tuple[tuple[str | int, ...], ...]]
    shape_return: tuple[tuple[str | int, ...], ...] | None
    dtypes: dict[str, str]
    dtype_return: str | None
    # (module, attribute) slots holding this function, for patch/restore
    slots: list[tuple[ModuleType, str]] = field(default_factory=list)


_RECORDS: list[ObservedCall] = []
_ACTIVE: list[_Contract] = []


def _parse_contract(boundary: str) -> _Contract:
    module_name, _, func_name = boundary.rpartition(".")
    __import__(module_name)
    module = sys.modules[module_name]
    func = getattr(module, func_name)
    doc = inspect.getdoc(func) or ""
    shapes: dict[str, tuple[tuple[str | int, ...], ...]] = {}
    for match in _DOCSTRING_SHAPE_RE.finditer(doc):
        parsed = _parse_shape_spec(match.group("spec"))
        if parsed:
            shapes[match.group("param")] = parsed
    dtypes: dict[str, str] = {}
    for match in _DOCSTRING_DTYPE_RE.finditer(doc):
        dtypes[match.group("param")] = match.group("name")
    shape_return = shapes.pop("return", None)
    dtype_return = dtypes.pop("return", None)
    if not shapes and not dtypes and shape_return is None and dtype_return is None:
        raise ValueError(
            f"{boundary} declares no :shape/:dtype markers; remove it from "
            "CONTRACT_BOUNDARIES or annotate the function"
        )
    return _Contract(
        boundary=boundary,
        func=func,
        signature=inspect.signature(func),
        shapes=shapes,
        shape_return=shape_return,
        dtypes=dtypes,
        dtype_return=dtype_return,
    )


def _try_bind(
    declared: tuple[str | int, ...],
    observed: tuple[int, ...],
    bindings: dict[str, int],
) -> dict[str, int] | None:
    """Bindings extended by matching ``observed`` against ``declared``.

    ``None`` when the shapes cannot be reconciled (rank mismatch,
    literal mismatch, or a symbol already bound to a different size).
    """
    if len(declared) != len(observed):
        return None
    trial = dict(bindings)
    for token, size in zip(declared, observed):
        if isinstance(token, int):
            if token != size:
                return None
        else:
            bound = trial.get(token)
            if bound is None:
                trial[token] = size
            elif bound != size:
                return None
    return trial


def _fmt_alts(alternatives: tuple[tuple[str | int, ...], ...]) -> str:
    def one(shape: tuple[str | int, ...]) -> str:
        inner = ", ".join(str(t) for t in shape)
        return f"({inner},)" if len(shape) == 1 else f"({inner})"

    return " | ".join(one(s) for s in alternatives)


def _check_shape(
    contract: _Contract,
    param: str,
    observed: tuple[int, ...],
    alternatives: tuple[tuple[str | int, ...], ...],
    bindings: dict[str, int],
) -> dict[str, int]:
    for declared in alternatives:
        trial = _try_bind(declared, observed, bindings)
        if trial is not None:
            return trial
    raise ContractViolation(
        f"{contract.boundary}: {param} has shape {observed}, which does not "
        f"match the declared {_fmt_alts(alternatives)}"
        + (f" under bindings {bindings}" if bindings else "")
    )


def _check_dtype(
    contract: _Contract, param: str, observed: str, declared: str
) -> None:
    if observed != declared:
        raise ContractViolation(
            f"{contract.boundary}: {param} has dtype {observed}, "
            f"declared {declared}"
        )


def _observe(
    contract: _Contract, args: tuple[Any, ...], kwargs: dict[str, Any], result: Any
) -> None:
    try:
        bound = contract.signature.bind(*args, **kwargs)
    except TypeError:
        return  # the call itself was malformed; not a contract matter
    bindings: dict[str, int] = {}
    shapes: list[tuple[str, tuple[int, ...]]] = []
    dtypes: list[tuple[str, str]] = []
    for param in contract.signature.parameters:
        if param not in bound.arguments:
            continue
        wants_shape = param in contract.shapes
        wants_dtype = param in contract.dtypes
        if not wants_shape and not wants_dtype:
            continue
        value = np.asarray(bound.arguments[param])
        if wants_shape:
            bindings = _check_shape(
                contract, param, value.shape, contract.shapes[param], bindings
            )
            shapes.append((param, value.shape))
        if wants_dtype:
            observed = value.dtype.name
            _check_dtype(contract, param, observed, contract.dtypes[param])
            dtypes.append((param, observed))
    if contract.shape_return is not None or contract.dtype_return is not None:
        value = np.asarray(result)
        if contract.shape_return is not None:
            bindings = _check_shape(
                contract, "return", value.shape, contract.shape_return, bindings
            )
            shapes.append(("return", value.shape))
        if contract.dtype_return is not None:
            observed = value.dtype.name
            _check_dtype(contract, "return", observed, contract.dtype_return)
            dtypes.append(("return", observed))
    if len(_RECORDS) < _MAX_RECORDS:
        _RECORDS.append(
            ObservedCall(
                boundary=contract.boundary,
                shapes=tuple(shapes),
                dtypes=tuple(dtypes),
                bindings=tuple(sorted(bindings.items())),
            )
        )


def _wrap(contract: _Contract) -> Callable[..., Any]:
    func = contract.func

    @functools.wraps(func)
    def checked(*args: Any, **kwargs: Any) -> Any:
        result = func(*args, **kwargs)
        _observe(contract, args, kwargs, result)
        return result

    # Mark the wrapper so activate() can recognise an already-patched
    # slot and stay idempotent.
    checked.__vihot_contract__ = contract  # type: ignore[attr-defined]
    return checked


def _alias_slots(func: Callable[..., Any]) -> list[tuple[ModuleType, str]]:
    """Every imported-module attribute currently bound to ``func``.

    ``from x import f`` copies the binding, so patching only the home
    module would leave importers calling the unchecked original.  The
    scan covers all of ``sys.modules`` (not just ``repro.*``): test
    modules and downstream glue alias these kernels too, and every
    patched slot is recorded and restored on :func:`deactivate`.
    """
    slots: list[tuple[ModuleType, str]] = []
    for module in list(sys.modules.values()):
        if not isinstance(module, ModuleType):
            continue
        for attr, value in list(vars(module).items()):
            if value is func:
                slots.append((module, attr))
    return slots


def active() -> bool:
    """Whether the contract wrappers are currently installed."""
    return bool(_ACTIVE)


def activate() -> int:
    """Install the runtime checks on every boundary; returns the count.

    Idempotent: calling twice installs nothing new.  Modules imported
    *after* activation that ``from x import f`` a boundary get the
    wrapped function automatically (they import the patched binding).
    """
    if _ACTIVE:
        return len(_ACTIVE)
    for boundary in CONTRACT_BOUNDARIES:
        contract = _parse_contract(boundary)
        wrapper = _wrap(contract)
        contract.slots = _alias_slots(contract.func)
        for module, attr in contract.slots:
            setattr(module, attr, wrapper)
        _ACTIVE.append(contract)
    return len(_ACTIVE)


def deactivate() -> None:
    """Restore every patched binding to the original function."""
    while _ACTIVE:
        contract = _ACTIVE.pop()
        for module, attr in contract.slots:
            current = getattr(module, attr, None)
            if getattr(current, "__vihot_contract__", None) is contract:
                setattr(module, attr, contract.func)


def records() -> tuple[ObservedCall, ...]:
    """The observations recorded since the last :func:`clear_records`."""
    return tuple(_RECORDS)


def clear_records() -> None:
    del _RECORDS[:]


def summary() -> dict[str, int]:
    """Observed call count per boundary (only boundaries seen at all)."""
    counts: dict[str, int] = {}
    for record in _RECORDS:
        counts[record.boundary] = counts.get(record.boundary, 0) + 1
    return counts
