"""Array shape & dtype dataflow rules (VH5xx): axes tracked across the project.

The analyzer abstract-interprets every function with a symbolic shape
lattice: arrays acquire a shape — a tuple of axis tokens, each a
declared symbol (``"S"``, ``"m"``), a literal int, or ``None`` for
*unknown* — from declared sources (``Annotated[np.ndarray,
Shape("S", "m")]`` params, ``:shape return: (S, B)`` docstring markers,
shape-transparent numpy callables) and the shape is propagated through
assignments, arithmetic, indexing, ``np.stack`` / ``transpose`` /
``squeeze`` and call boundaries using the same
:mod:`repro.analysis.callgraph` project view the VH3xx rules ride.
Dtypes travel alongside (:mod:`repro.analysis.dtypes`).  Findings:

* VH501 — a call-site argument whose tracked shape cannot match any
  declared alternative of the callee parameter (rank or axis symbols
  disagree);
* VH502 — batch-axis mixup: the argument *would* match, except its
  known axes are a permutation of the declared ones — the
  ``queries.T`` / swapped ``(m, S)`` class of bug that broadcasting
  happily accepts and silently mis-ranks every candidate;
* VH503 — silent dtype downcast: a ``complex*`` value flowing into a
  real slot or a ``float64`` into ``float32`` without an explicit
  ``astype`` / constructor cast in source;
* VH504 — implicit broadcasting across declared axes: elementwise
  arithmetic trailing-aligns two *different* declared symbols (e.g.
  ``(S, m) * (B,)``), which numpy only accepts when one of them happens
  to be 1 — a shape coincidence, not a contract.

Like the domain pass, this pass is flow-insensitive inside branches and
gives up (shape ``None``) rather than guess: silence is cheap, a false
alarm in CI is not.  The one asymmetry worth naming: axis *symbols* are
a shared vocabulary (:data:`repro.units.AXIS_SYMBOLS`), so ``(S, m)``
meeting a declared ``(B, L)`` is a mismatch even though every size
might coincide at runtime — that coincidence is exactly what the rules
exist to forbid.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from repro.analysis.dtypes import (
    CAST_CALLS,
    REAL_OF_COMPLEX,
    dtype_from_expr,
    dtype_kind,
    is_silent_downcast,
    promote,
)
from repro.analysis.engine import Finding, ModuleContext, ProjectRule, Severity
from repro.units import AXIS_SYMBOLS

if TYPE_CHECKING:
    from repro.analysis.callgraph import FunctionInfo, ProjectContext

__all__ = [
    "BatchAxisMixupRule",
    "DtypeDowncastRule",
    "ImplicitBroadcastRule",
    "ShapeCallMismatchRule",
    "declared_shapes_of",
    "shape_from_annotation",
]

_MEMO_KEY = "shapes.array_events"

# Axis tokens are ``str`` symbols, literal ``int`` extents, or ``None``
# (unknown); a shape is a tuple of tokens, or ``None`` when the whole
# shape is unknown; a declaration is a tuple of accepted shapes.

#: Sentinel dtype for Python numeric literals: they promote *weakly*
#: (``float32_array * 2.0`` stays float32), unlike a tracked array dtype.
_WEAK = "weak"

#: ``:shape <param>: (S, m) | (S, B, L)`` docstring lines.
_DOCSTRING_SHAPE_RE = re.compile(
    r"^\s*:shape\s+(?P<param>\w+)\s*:\s*(?P<spec>\([^)\n]*\)(?:\s*\|\s*\([^)\n]*\))*)\s*$",
    re.MULTILINE,
)
_SHAPE_TOKEN_RE = re.compile(r"^(?:[A-Za-z_]\w*|\d+)$")


def _parse_one_shape(text: str) -> "tuple[str | int, ...] | None":
    """``"(S, m)"`` -> ``("S", "m")``; None when any token is malformed."""
    body = text.strip()
    if not (body.startswith("(") and body.endswith(")")):
        return None
    tokens: list[str | int] = []
    inner = body[1:-1].strip()
    if not inner:
        return ()
    for piece in inner.rstrip(",").split(","):
        token = piece.strip()
        if not _SHAPE_TOKEN_RE.match(token):
            return None
        tokens.append(int(token) if token.isdigit() else token)
    return tuple(tokens)


def _parse_shape_spec(spec: str) -> "tuple[tuple[str | int, ...], ...]":
    """Parse ``"(B, L) | (S, B, L)"`` into alternatives (empty on error)."""
    alternatives: list[tuple[str | int, ...]] = []
    for part in spec.split("|"):
        shape = _parse_one_shape(part)
        if shape is None:
            return ()
        alternatives.append(shape)
    return tuple(alternatives)


def shape_from_annotation(
    annotation: ast.expr | None,
) -> "tuple[str | int, ...] | None":
    """Extract ``Shape("S", "m")`` from an ``Annotated[...]`` expression."""
    if annotation is None or not isinstance(annotation, ast.Subscript):
        return None
    if _final_name(annotation.value) != "Annotated":
        return None
    inner = annotation.slice
    metadata = inner.elts[1:] if isinstance(inner, ast.Tuple) else []
    for meta in metadata:
        if isinstance(meta, ast.Call) and _final_name(meta.func) == "Shape":
            tokens: list[str | int] = []
            for arg in meta.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    tokens.append(arg.value)
                elif isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                    tokens.append(arg.value)
                else:
                    break
            else:
                return tuple(tokens)
    return None


def _final_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def declared_shapes_of(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> "tuple[dict[str, tuple[tuple[str | int, ...], ...]], tuple[tuple[str | int, ...], ...] | None]":
    """Declared ``(param -> shape alternatives, return alternatives)``.

    ``Annotated[..., Shape(...)]`` markers win (one alternative);
    ``:shape p: (S, m) | (S, B, L)`` docstring lines fill in anything the
    signature leaves out — the convention for ``ArrayLike`` params and
    rank-polymorphic kernels.
    """
    params: dict[str, tuple[tuple[str | int, ...], ...]] = {}
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        shape = shape_from_annotation(arg.annotation)
        if shape is not None:
            params[arg.arg] = (shape,)
    returns: tuple[tuple[str | int, ...], ...] | None = None
    return_shape = shape_from_annotation(fn.returns)
    if return_shape is not None:
        returns = (return_shape,)

    docstring = ast.get_docstring(fn, clean=False) or ""
    for match in _DOCSTRING_SHAPE_RE.finditer(docstring):
        param = match.group("param")
        alternatives = _parse_shape_spec(match.group("spec"))
        if not alternatives:
            continue
        if param == "return":
            if returns is None:
                returns = alternatives
        elif param not in params:
            params[param] = alternatives
    return params, returns


# ---------------------------------------------------------------------------
# Shape compatibility
# ---------------------------------------------------------------------------


def _tokens_compatible(found: "str | int | None", declared: "str | int") -> bool:
    """May a tracked axis ``found`` satisfy a declared axis?

    Unknown matches anything; ints must agree; an int meeting a symbol
    is accepted (the symbol binds that size); two symbols must be the
    *same* symbol — the shared-vocabulary rule that makes ``(S, m)`` vs
    ``(m, S)`` detectable at all.
    """
    if found is None:
        return True
    if isinstance(found, int) and isinstance(declared, int):
        return found == declared
    if isinstance(found, int) or isinstance(declared, int):
        return True
    return found == declared


def _shape_matches(
    found: "tuple[str | int | None, ...]", declared: "tuple[str | int, ...]"
) -> bool:
    return len(found) == len(declared) and all(
        _tokens_compatible(f, d) for f, d in zip(found, declared)
    )


def _is_permutation(
    found: "tuple[str | int | None, ...]", declared: "tuple[str | int, ...]"
) -> bool:
    """Same known symbols, different order — the VH502 signature."""
    if len(found) != len(declared) or len(found) < 2:
        return False
    if not all(isinstance(t, str) for t in found):
        return False
    if not all(isinstance(t, str) for t in declared):
        return False
    return sorted(found) == sorted(declared) and tuple(found) != tuple(declared)  # type: ignore[type-var]


def _fmt(shape: "Sequence[str | int | None]") -> str:
    return "(" + ", ".join("?" if t is None else str(t) for t in shape) + ")"


def _fmt_alternatives(alternatives: "Sequence[tuple[str | int, ...]]") -> str:
    return " | ".join(_fmt(a) for a in alternatives)


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _ArrayVal:
    """Abstract array value: symbolic shape (or None) + dtype (or None)."""

    shape: "tuple[str | int | None, ...] | None" = None
    dtype: str | None = None

    @property
    def empty(self) -> bool:
        return self.shape is None and self.dtype is None


_UNKNOWN = _ArrayVal()


@dataclass(frozen=True)
class _Binding:
    val: _ArrayVal
    origin: str


@dataclass(frozen=True)
class _Event:
    rule: str
    path: str
    line: int
    col: int
    message: str
    trace: tuple[str, ...]


#: Shape- and dtype-transparent calls: result mirrors the first argument.
_PASSTHROUGH_CALLS = frozenset(
    {
        "numpy.ascontiguousarray",
        "numpy.copy",
        "numpy.unwrap",
        "numpy.sort",
        "numpy.flip",
        "numpy.clip",
        "numpy.cumsum",
        "numpy.gradient",
        "numpy.fft.fftshift",
    }
)

#: Elementwise float-producing ufuncs: shape passes through, int
#: inputs promote to float64, float/complex widths are preserved.
_FLOAT_UFUNCS = frozenset(
    {
        "numpy.sin",
        "numpy.cos",
        "numpy.tan",
        "numpy.exp",
        "numpy.sqrt",
        "numpy.log",
        "numpy.log10",
        "numpy.arcsin",
        "numpy.arccos",
        "numpy.arctan",
        "numpy.deg2rad",
        "numpy.rad2deg",
        "numpy.radians",
        "numpy.degrees",
    }
)

#: Axis-dropping reductions (``axis=`` int literal drops that axis, no
#: axis collapses to a scalar, ``keepdims`` makes us give up).
_REDUCTIONS = frozenset(
    {
        "numpy.sum",
        "numpy.mean",
        "numpy.median",
        "numpy.std",
        "numpy.var",
        "numpy.max",
        "numpy.min",
        "numpy.amax",
        "numpy.amin",
        "numpy.argmax",
        "numpy.argmin",
        "numpy.prod",
        "numpy.nanmean",
        "numpy.nansum",
    }
)

_REDUCTION_METHODS = frozenset(
    {"sum", "mean", "std", "var", "max", "min", "argmax", "argmin", "prod"}
)


class _ShapePass:
    """One function body, one forward pass, shapes/dtypes in, events out."""

    def __init__(self, info: "FunctionInfo", project: "ProjectContext") -> None:
        self.info = info
        self.project = project
        self.module = project.module_of(info)
        self.events: list[_Event] = []
        self.env: dict[str, _Binding] = {}
        for name in [*info.positional, *info.kwonly]:
            alternatives = info.declared_shapes.get(name)
            shape = (
                alternatives[0]
                if alternatives is not None and len(alternatives) == 1
                else None
            )
            dtype = info.declared_dtypes.get(name)
            if shape is None and dtype is None:
                continue
            self.env[name] = _Binding(
                _ArrayVal(shape, dtype),
                f"{self.module.rel_path}:{info.node.lineno}: parameter "
                f"`{name}` declared "
                + (f"{_fmt(shape)}" if shape is not None else f"[{dtype}]"),
            )

    # ------------------------------------------------------------ plumbing

    def _where(self, node: ast.AST) -> str:
        return f"{self.module.rel_path}:{getattr(node, 'lineno', self.info.node.lineno)}"

    def _emit(
        self, rule: str, node: ast.AST, message: str, trace: tuple[str, ...]
    ) -> None:
        self.events.append(
            _Event(
                rule=rule,
                path=self.module.rel_path,
                line=getattr(node, "lineno", self.info.node.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                trace=trace[:4],
            )
        )

    def _bind(self, name: str, val: _ArrayVal, node: ast.AST, source: str) -> None:
        if val.empty:
            self.env.pop(name, None)
            return
        label = _fmt(val.shape) if val.shape is not None else f"[{val.dtype}]"
        self.env[name] = _Binding(
            val, f"{self._where(node)}: `{name}` <- {source} {label}"
        )

    def _trace_of(self, node: ast.expr) -> tuple[str, ...]:
        steps: list[str] = []
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id in self.env:
                origin = self.env[child.id].origin
                if origin not in steps:
                    steps.append(origin)
        return tuple(steps[:3])

    # ---------------------------------------------------------- statements

    def run(self) -> None:
        self._run_body(self.info.node.body)

    def _run_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._run_stmt(stmt)

    def _run_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            val = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, val, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            from repro.analysis.dtypes import dtype_from_annotation

            declared_shape = shape_from_annotation(stmt.annotation)
            declared_dtype = dtype_from_annotation(stmt.annotation)
            val = self._eval(stmt.value) if stmt.value is not None else _UNKNOWN
            if declared_shape is not None and val.shape is not None:
                self._check_shape(
                    stmt.value if stmt.value is not None else stmt,
                    val.shape,
                    (declared_shape,),
                    context="annotated assignment",
                )
            self._check_dtype(
                stmt.value if stmt.value is not None else stmt,
                val.dtype,
                declared_dtype,
                context="annotated assignment",
            )
            if isinstance(stmt.target, ast.Name):
                chosen = _ArrayVal(
                    declared_shape if declared_shape is not None else val.shape,
                    declared_dtype if declared_dtype is not None else val.dtype,
                )
                self._bind(stmt.target.id, chosen, stmt, "annotated assignment")
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id)
                combined = self._broadcast(
                    stmt,
                    current.val if current else _UNKNOWN,
                    value,
                    stmt.target,
                    stmt.value,
                )
                self._bind(stmt.target.id, combined, stmt, "augmented assignment")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                val = self._eval(stmt.value)
                declared = self.info.declared_shape_return
                if declared is not None and val.shape is not None:
                    self._check_shape(
                        stmt.value,
                        val.shape,
                        declared,
                        context=f"return from `{self.info.qualname}`",
                    )
                self._check_dtype(
                    stmt.value,
                    val.dtype,
                    self.info.declared_dtype_return,
                    context=f"return from `{self.info.qualname}`",
                    symmetric=True,
                )
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            self._run_body(stmt.body)
            self._run_body(stmt.orelse)
        elif isinstance(stmt, ast.For):
            iter_val = self._eval(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                element = (
                    _ArrayVal(iter_val.shape[1:], iter_val.dtype)
                    if iter_val.shape is not None and len(iter_val.shape) >= 1
                    else _ArrayVal(None, iter_val.dtype)
                )
                self._bind(stmt.target.id, element, stmt, _describe(stmt.iter))
            self._run_body(stmt.body)
            self._run_body(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._eval(item.context_expr)
            self._run_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._run_body(stmt.body)
            for handler in stmt.handlers:
                self._run_body(handler.body)
            self._run_body(stmt.orelse)
            self._run_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
        # Nested defs/classes are indexed as their own functions.

    def _assign_target(
        self, target: ast.expr, val: _ArrayVal, value: ast.expr
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind(target.id, val, target, _describe(value))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env.pop(element.id, None)

    # --------------------------------------------------------- expressions

    def _eval(self, node: ast.expr) -> _ArrayVal:
        if isinstance(node, ast.Name):
            binding = self.env.get(node.id)
            return binding.val if binding else _UNKNOWN
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float, complex)
            ):
                return _UNKNOWN
            return _ArrayVal((), _WEAK)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            if isinstance(node.op, (ast.MatMult, ast.BitAnd, ast.BitOr, ast.BitXor)):
                return _UNKNOWN
            return self._broadcast(node, left, right, node.left, node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            body = self._eval(node.body)
            orelse = self._eval(node.orelse)
            return body if body == orelse else _UNKNOWN
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return _UNKNOWN
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value)
            return _UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._eval(element)
            return _UNKNOWN
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        return _UNKNOWN

    def _eval_attribute(self, node: ast.Attribute) -> _ArrayVal:
        receiver = self._eval(node.value)
        if node.attr == "T":
            shape = (
                tuple(reversed(receiver.shape))
                if receiver.shape is not None
                else None
            )
            return _ArrayVal(shape, receiver.dtype)
        if node.attr in ("real", "imag"):
            dtype = (
                REAL_OF_COMPLEX.get(receiver.dtype, receiver.dtype)
                if receiver.dtype is not None
                else None
            )
            return _ArrayVal(receiver.shape, dtype)
        return _UNKNOWN

    def _eval_subscript(self, node: ast.Subscript) -> _ArrayVal:
        receiver = self._eval(node.value)
        if isinstance(node.slice, ast.expr):
            self._eval(node.slice)
        if receiver.shape is None:
            return _ArrayVal(None, receiver.dtype)
        items = (
            list(node.slice.elts)
            if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        shape: list[str | int | None] = []
        remaining = list(receiver.shape)
        for item in items:
            index = _literal_int(item)
            if isinstance(item, ast.Slice):
                if not remaining:
                    return _ArrayVal(None, receiver.dtype)
                axis = remaining.pop(0)
                full = item.lower is None and item.upper is None and item.step is None
                shape.append(axis if full else None)
            elif index is not None:
                if not remaining:
                    return _ArrayVal(None, receiver.dtype)
                remaining.pop(0)
            elif isinstance(item, ast.Constant) and item.value is None:
                shape.append(1)  # np.newaxis
            else:
                return _ArrayVal(None, receiver.dtype)  # fancy/unknown indexing
        shape.extend(remaining)
        return _ArrayVal(tuple(shape), receiver.dtype)

    # -------------------------------------------------------------- calls

    def _eval_call(self, node: ast.Call) -> _ArrayVal:
        if isinstance(node.func, ast.Attribute):
            # A dotted call whose root is a tracked local is an array
            # method call (`phases.astype(...)`), not a module function:
            # `call_name` spells both as dotted names, so disambiguate
            # by the environment before canonical resolution.
            root: ast.expr = node.func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in self.env:
                return self._eval_method_call(node)
        name = self.module.call_name(node)
        if name is None and isinstance(node.func, ast.Attribute):
            return self._eval_method_call(node)
        canonical = (
            self.project.canonical_call(name, module=self.info.module)
            if name is not None
            else None
        )
        arg_vals = [self._eval(arg) for arg in node.args]
        kw_vals = {
            kw.arg: self._eval(kw.value)
            for kw in node.keywords
            if kw.arg is not None
        }
        if canonical is None:
            return _UNKNOWN

        external = self._eval_external(node, canonical, arg_vals, kw_vals)
        if external is not None:
            return external

        info = self.project.functions.get(canonical)
        if info is None:
            return _UNKNOWN
        self._check_call(node, name or canonical, info, arg_vals, kw_vals)
        returns = info.declared_shape_return
        shape = returns[0] if returns is not None and len(returns) == 1 else None
        return _ArrayVal(shape, info.declared_dtype_return)

    def _eval_external(
        self,
        node: ast.Call,
        canonical: str,
        arg_vals: list[_ArrayVal],
        kw_vals: dict[str, _ArrayVal],
    ) -> _ArrayVal | None:
        """Shape/dtype effect of a known numpy/builtin call, else None."""
        first = arg_vals[0] if arg_vals else _UNKNOWN

        if canonical in CAST_CALLS:
            return _ArrayVal(first.shape, CAST_CALLS[canonical])
        if canonical in ("numpy.asarray", "numpy.array"):
            dtype = dtype_from_expr(_kw_node(node, "dtype"))
            if dtype is None and len(node.args) >= 2:
                dtype = dtype_from_expr(node.args[1])
            return _ArrayVal(first.shape, dtype if dtype is not None else first.dtype)
        if canonical in _PASSTHROUGH_CALLS:
            return first
        if canonical in _FLOAT_UFUNCS:
            dtype = first.dtype
            if dtype is not None and dtype_kind(dtype) in ("int", "bool"):
                dtype = "float64"
            return _ArrayVal(first.shape, dtype)
        if canonical in ("numpy.abs", "numpy.absolute", "abs"):
            dtype = (
                REAL_OF_COMPLEX.get(first.dtype, first.dtype)
                if first.dtype is not None
                else None
            )
            return _ArrayVal(first.shape, dtype)
        if canonical == "numpy.angle":
            return _ArrayVal(first.shape, "float64")
        if canonical == "numpy.stack":
            return self._eval_stack(node)
        if canonical == "numpy.concatenate":
            return self._eval_concatenate(node)
        if canonical == "numpy.transpose":
            return self._eval_transpose(node, first)
        if canonical == "numpy.swapaxes" and len(node.args) == 3:
            return _ArrayVal(
                _swap(first.shape, _literal_int(node.args[1]), _literal_int(node.args[2])),
                first.dtype,
            )
        if canonical == "numpy.expand_dims" and len(node.args) == 2:
            axis = _literal_int(node.args[1])
            if first.shape is not None and axis is not None:
                pos = axis if axis >= 0 else len(first.shape) + 1 + axis
                if 0 <= pos <= len(first.shape):
                    shape = first.shape[:pos] + (1,) + first.shape[pos:]
                    return _ArrayVal(shape, first.dtype)
            return _ArrayVal(None, first.dtype)
        if canonical == "numpy.squeeze":
            return self._squeeze(first, _axis_of(node))
        if canonical in _REDUCTIONS:
            return self._reduce(first, node, canonical)
        if canonical == "numpy.diff":
            if first.shape is not None and len(first.shape) >= 1:
                return _ArrayVal(first.shape[:-1] + (None,), first.dtype)
            return _ArrayVal(None, first.dtype)
        if canonical in ("numpy.zeros", "numpy.ones", "numpy.empty", "numpy.full"):
            dtype = dtype_from_expr(_kw_node(node, "dtype"))
            shape = _literal_shape(node.args[0]) if node.args else None
            return _ArrayVal(shape, dtype if dtype is not None else "float64")
        if canonical in (
            "numpy.zeros_like",
            "numpy.ones_like",
            "numpy.empty_like",
            "numpy.full_like",
        ):
            dtype = dtype_from_expr(_kw_node(node, "dtype"))
            return _ArrayVal(first.shape, dtype if dtype is not None else first.dtype)
        if canonical == "numpy.where" and len(node.args) == 3:
            a, b = arg_vals[1], arg_vals[2]
            shape = a.shape if a.shape == b.shape else None
            return _ArrayVal(shape, promote(a.dtype, b.dtype))
        if canonical == "numpy.interp" and len(node.args) >= 3:
            return _ArrayVal(arg_vals[0].shape, "float64")
        if canonical in ("numpy.atleast_1d", "numpy.atleast_2d", "numpy.ravel"):
            return _ArrayVal(None, first.dtype)
        if canonical == "numpy.reshape":
            return _ArrayVal(None, first.dtype)
        return None

    def _eval_stack(self, node: ast.Call) -> _ArrayVal:
        if not node.args or not isinstance(node.args[0], (ast.List, ast.Tuple)):
            return _UNKNOWN
        elements = [self._eval(el) for el in node.args[0].elts]
        if not elements:
            return _UNKNOWN
        shapes = {el.shape for el in elements}
        dtype = elements[0].dtype
        for el in elements[1:]:
            dtype = promote(dtype, el.dtype) if dtype != el.dtype else dtype
        if len(shapes) != 1 or None in shapes:
            return _ArrayVal(None, dtype)
        base = elements[0].shape
        assert base is not None
        axis = _axis_of(node) or 0
        pos = axis if axis >= 0 else len(base) + 1 + axis
        if not 0 <= pos <= len(base):
            return _ArrayVal(None, dtype)
        return _ArrayVal(base[:pos] + (len(elements),) + base[pos:], dtype)

    def _eval_concatenate(self, node: ast.Call) -> _ArrayVal:
        if not node.args or not isinstance(node.args[0], (ast.List, ast.Tuple)):
            return _UNKNOWN
        elements = [self._eval(el) for el in node.args[0].elts]
        shapes = {el.shape for el in elements}
        if len(shapes) != 1 or None in shapes or not elements:
            return _UNKNOWN
        base = elements[0].shape
        assert base is not None
        axis = _axis_of(node) or 0
        pos = axis if axis >= 0 else len(base) + axis
        if not 0 <= pos < len(base):
            return _UNKNOWN
        shape = base[:pos] + (None,) + base[pos + 1:]
        return _ArrayVal(shape, elements[0].dtype)

    def _eval_transpose(self, node: ast.Call, first: _ArrayVal) -> _ArrayVal:
        if first.shape is None:
            return _ArrayVal(None, first.dtype)
        if len(node.args) <= 1:
            return _ArrayVal(tuple(reversed(first.shape)), first.dtype)
        axes_node = node.args[1]
        axes = (
            [_literal_int(el) for el in axes_node.elts]
            if isinstance(axes_node, (ast.Tuple, ast.List))
            else None
        )
        if (
            axes is None
            or None in axes
            or sorted(axes) != list(range(len(first.shape)))  # type: ignore[type-var]
        ):
            return _ArrayVal(None, first.dtype)
        return _ArrayVal(tuple(first.shape[i] for i in axes), first.dtype)  # type: ignore[index]

    def _eval_method_call(self, node: ast.Call) -> _ArrayVal:
        func = node.func
        assert isinstance(func, ast.Attribute)
        receiver = self._eval(func.value)
        for arg in node.args:
            self._eval(arg)
        for kw in node.keywords:
            self._eval(kw.value)
        method = func.attr
        if method == "astype":
            dtype = dtype_from_expr(node.args[0]) if node.args else None
            if dtype is None:
                dtype = dtype_from_expr(_kw_node(node, "dtype"))
            return _ArrayVal(receiver.shape, dtype)
        if method == "copy":
            return receiver
        if method == "transpose":
            return self._eval_transpose(node, receiver) if not node.args else _ArrayVal(
                None, receiver.dtype
            )
        if method == "swapaxes" and len(node.args) == 2:
            return _ArrayVal(
                _swap(receiver.shape, _literal_int(node.args[0]), _literal_int(node.args[1])),
                receiver.dtype,
            )
        if method == "squeeze":
            return self._squeeze(receiver, _axis_of(node, position=0))
        if method in ("reshape", "ravel", "flatten"):
            return _ArrayVal(None, receiver.dtype)
        if method in _REDUCTION_METHODS:
            return self._reduce(receiver, node, method, axis_position=0)
        if method == "item":
            return _ArrayVal((), receiver.dtype)
        return _UNKNOWN

    def _squeeze(self, receiver: _ArrayVal, axis: int | None) -> _ArrayVal:
        if receiver.shape is None:
            return _ArrayVal(None, receiver.dtype)
        if axis is not None:
            pos = axis if axis >= 0 else len(receiver.shape) + axis
            if 0 <= pos < len(receiver.shape):
                shape = receiver.shape[:pos] + receiver.shape[pos + 1:]
                return _ArrayVal(shape, receiver.dtype)
            return _ArrayVal(None, receiver.dtype)
        if all(isinstance(t, int) for t in receiver.shape):
            shape = tuple(t for t in receiver.shape if t != 1)
            return _ArrayVal(shape, receiver.dtype)
        return _ArrayVal(None, receiver.dtype)  # symbolic axes: can't prove != 1

    def _reduce(
        self,
        receiver: _ArrayVal,
        node: ast.Call,
        name: str,
        axis_position: int = 1,
    ) -> _ArrayVal:
        dtype = receiver.dtype
        if dtype is not None and name in ("numpy.mean", "numpy.nanmean", "mean"):
            if dtype_kind(dtype) in ("int", "bool"):
                dtype = "float64"
        if name in ("numpy.argmax", "numpy.argmin", "argmax", "argmin"):
            dtype = "int64"
        if any(kw.arg == "keepdims" for kw in node.keywords):
            return _ArrayVal(None, dtype)
        axis = _axis_of(node, position=axis_position)
        if receiver.shape is None:
            return _ArrayVal(None, dtype)
        if axis is None:
            has_axis_kw = any(kw.arg == "axis" for kw in node.keywords) or (
                len(node.args) > axis_position
            )
            return _ArrayVal(None if has_axis_kw else (), dtype)
        pos = axis if axis >= 0 else len(receiver.shape) + axis
        if 0 <= pos < len(receiver.shape):
            return _ArrayVal(
                receiver.shape[:pos] + receiver.shape[pos + 1:], dtype
            )
        return _ArrayVal(None, dtype)

    # ------------------------------------------------------------- checks

    def _check_call(
        self,
        node: ast.Call,
        spelled: str,
        info: "FunctionInfo",
        arg_vals: list[_ArrayVal],
        kw_vals: dict[str, _ArrayVal],
    ) -> None:
        names = [*info.positional, *info.kwonly]
        pairs: list[tuple[str, _ArrayVal, ast.expr]] = []
        for index, val in enumerate(arg_vals):
            if index < len(info.positional):
                pairs.append((info.positional[index], val, node.args[index]))
        for keyword, val in kw_vals.items():
            if keyword in names:
                kw_node = next(
                    (kw.value for kw in node.keywords if kw.arg == keyword), node
                )
                pairs.append((keyword, val, kw_node))
        for param, val, arg_node in pairs:
            alternatives = info.declared_shapes.get(param)
            if alternatives is not None and val.shape is not None:
                if not any(_shape_matches(val.shape, alt) for alt in alternatives):
                    permuted = any(
                        _is_permutation(val.shape, alt) for alt in alternatives
                    )
                    rule = "VH502" if permuted else "VH501"
                    kind = (
                        "batch-axis mixup: argument"
                        if permuted
                        else "shape mismatch: argument"
                    )
                    self._emit(
                        rule,
                        arg_node,
                        f"{kind} {_fmt(val.shape)} passed to "
                        f"`{info.qualname}` parameter `{param}` declared "
                        f"{_fmt_alternatives(alternatives)}"
                        + (
                            "; the axes are a permutation of the declared "
                            "order — transpose back before the call, "
                            "broadcasting will not save you here"
                            if permuted
                            else ""
                        ),
                        self._trace_of(arg_node)
                        + (
                            f"{self._where(node)}: passed to `{spelled}` "
                            f"(`{param}`: {_fmt_alternatives(alternatives)})",
                        ),
                    )
            declared_dtype = info.declared_dtypes.get(param)
            if (
                declared_dtype is not None
                and val.dtype is not None
                and val.dtype != _WEAK
                and is_silent_downcast(val.dtype, declared_dtype)
            ):
                self._emit(
                    "VH503",
                    arg_node,
                    f"silent dtype downcast: [{val.dtype}] value passed to "
                    f"`{info.qualname}` parameter `{param}` declared "
                    f"[{declared_dtype}]; cast explicitly "
                    f"(`.astype(np.{declared_dtype})`) if the narrowing is "
                    "intended",
                    self._trace_of(arg_node)
                    + (
                        f"{self._where(node)}: passed to `{spelled}` "
                        f"(`{param}`: [{declared_dtype}])",
                    ),
                )

    def _check_shape(
        self,
        node: ast.AST,
        found: "tuple[str | int | None, ...]",
        alternatives: "tuple[tuple[str | int, ...], ...]",
        context: str,
    ) -> None:
        if any(_shape_matches(found, alt) for alt in alternatives):
            return
        permuted = any(_is_permutation(found, alt) for alt in alternatives)
        if permuted:
            rule = "VH502"
            message = (
                f"{context}: batch-axis mixup — axes {_fmt(found)} are a "
                f"permutation of the declared {_fmt_alternatives(alternatives)}"
            )
        else:
            rule = "VH501"
            message = (
                f"{context}: value of shape {_fmt(found)} flows where "
                f"{_fmt_alternatives(alternatives)} is declared"
            )
        trace = self._trace_of(node) if isinstance(node, ast.expr) else ()
        self._emit(rule, node, message, trace)

    def _check_dtype(
        self,
        node: ast.AST,
        found: str | None,
        declared: str | None,
        context: str,
        symmetric: bool = False,
    ) -> None:
        """Flag a silent downcast between ``found`` and ``declared``.

        At a call site only ``found -> declared`` narrowing is a hazard
        (the callee treats the wider value as the declared dtype).  At a
        return boundary (``symmetric=True``) the reverse direction also
        diverges: returning float32 where float64 is promised silently
        degrades every caller's precision.
        """
        if found is None or declared is None or found == _WEAK:
            return
        narrowing = is_silent_downcast(found, declared) or (
            symmetric and is_silent_downcast(declared, found)
        )
        if not narrowing:
            return
        trace = self._trace_of(node) if isinstance(node, ast.expr) else ()
        self._emit(
            "VH503",
            node,
            f"{context}: silent dtype downcast — [{found}] value where "
            f"[{declared}] is declared; cast explicitly "
            f"(`.astype(np.{declared})`) if the narrowing is intended",
            trace,
        )

    def _broadcast(
        self,
        node: ast.AST,
        left: _ArrayVal,
        right: _ArrayVal,
        left_node: ast.expr,
        right_node: ast.expr,
    ) -> _ArrayVal:
        dtype = (
            right.dtype
            if left.dtype == _WEAK
            else left.dtype
            if right.dtype == _WEAK
            else promote(left.dtype, right.dtype)
        )
        if left.shape is None or right.shape is None:
            return _ArrayVal(None, dtype)
        longer, shorter = (
            (left.shape, right.shape)
            if len(left.shape) >= len(right.shape)
            else (right.shape, left.shape)
        )
        offset = len(longer) - len(shorter)
        merged: list[str | int | None] = list(longer[:offset])
        ok = True
        for a, b in zip(longer[offset:], shorter):
            if a == b:
                merged.append(a)
            elif a is None or b is None:
                merged.append(None)
            elif a == 1:
                merged.append(b)
            elif b == 1:
                merged.append(a)
            else:
                # Two different known, non-1 axes aligned: numpy only
                # accepts this when one *happens* to be 1 at runtime.
                self._emit(
                    "VH504",
                    node,
                    f"implicit broadcast across declared axes: "
                    f"{_fmt(left.shape)} with {_fmt(right.shape)} aligns "
                    f"`{a}` against `{b}`; reshape or index explicitly so "
                    "the pairing is visible",
                    self._trace_of(left_node) + self._trace_of(right_node),
                )
                ok = False
                break
        if not ok:
            return _ArrayVal(None, dtype)
        return _ArrayVal(tuple(merged), dtype)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _kw_node(node: ast.Call, keyword: str) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _literal_int(node: ast.expr) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None


def _literal_shape(node: ast.expr) -> "tuple[str | int | None, ...] | None":
    if isinstance(node, (ast.Tuple, ast.List)):
        tokens = [_literal_int(el) for el in node.elts]
        return tuple(tokens)
    single = _literal_int(node)
    return (single,) if single is not None else None


def _axis_of(node: ast.Call, position: int = 1) -> int | None:
    for kw in node.keywords:
        if kw.arg == "axis":
            return _literal_int(kw.value)
    if len(node.args) > position:
        return _literal_int(node.args[position])
    return None


def _swap(
    shape: "tuple[str | int | None, ...] | None", i: int | None, j: int | None
) -> "tuple[str | int | None, ...] | None":
    if shape is None or i is None or j is None:
        return None
    rank = len(shape)
    i = i if i >= 0 else rank + i
    j = j if j >= 0 else rank + j
    if not (0 <= i < rank and 0 <= j < rank):
        return None
    out = list(shape)
    out[i], out[j] = out[j], out[i]
    return tuple(out)


def _describe(node: ast.expr | None) -> str:
    if node is None:
        return "assignment"
    if isinstance(node, ast.Call):
        return f"{ast.unparse(node.func)}(...)"
    if isinstance(node, ast.Name):
        return f"`{node.id}`"
    return type(node).__name__.lower()


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------


def _array_events(project: "ProjectContext") -> list[_Event]:
    cached = project.memo.get(_MEMO_KEY)
    if cached is not None:
        return cached  # type: ignore[return-value]
    events: list[_Event] = []
    seen: set[tuple[str, int, int, str, str]] = set()
    for info in project.functions.values():
        pass_ = _ShapePass(info, project)
        pass_.run()
        for event in pass_.events:
            key = (event.path, event.line, event.col, event.rule, event.message)
            if key not in seen:
                seen.add(key)
                events.append(event)
    events.sort(key=lambda e: (e.path, e.line, e.col, e.rule))
    project.memo[_MEMO_KEY] = events
    return events


class _ArrayFlowRule(ProjectRule):
    """Shared scaffolding: each concrete rule reports its slice of the
    one shape/dtype pass (memoised on the project context)."""

    severity = Severity.ERROR

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        for event in _array_events(project):
            if event.rule == self.id:
                yield Finding(
                    path=event.path,
                    line=event.line,
                    col=event.col,
                    rule=self.id,
                    severity=self.severity,
                    message=event.message,
                    trace=event.trace,
                )


class ShapeCallMismatchRule(_ArrayFlowRule):
    id = "VH501"
    name = "shape-call-mismatch"
    description = "call-site argument shape contradicts the callee's declared axes"
    rationale = (
        "The batched path stacks (S, m) queries against (B, L) candidate "
        "banks; one wrong rank or axis symbol at a kernel boundary and "
        "broadcasting manufactures a plausible-looking wrong answer instead "
        "of an error. Declared axes make the contract checkable at every "
        "project-internal call site."
    )
    example = (
        "def stacked(queries):\n"
        '    """:shape queries: (S, m)"""\n'
        "\n"
        "def caller(windows):\n"
        '    """:shape windows: (W, m)"""\n'
        "    return stacked(windows)  # VH501: (W, m) where (S, m) declared"
    )


class BatchAxisMixupRule(_ArrayFlowRule):
    id = "VH502"
    name = "batch-axis-mixup"
    description = "argument axes are a permutation of the declared ones (transposed batch)"
    rationale = (
        "A transposed stack — (m, S) where (S, m) is declared — is the most "
        "dangerous shape bug in a fleet-batched pipeline: when S == m (or "
        "after broadcasting pads it out) every session silently receives "
        "another session's estimate. Permutations are separated from plain "
        "mismatches (VH501) because the fix is different: transpose back at "
        "the producer, don't reshape at the consumer."
    )
    example = (
        "def stacked(queries):\n"
        '    """:shape queries: (S, m)"""\n'
        "\n"
        "def caller(queries):\n"
        '    """:shape queries: (S, m)"""\n'
        "    return stacked(queries.T)  # VH502: (m, S) is (S, m) transposed"
    )


class DtypeDowncastRule(_ArrayFlowRule):
    id = "VH503"
    name = "silent-dtype-downcast"
    description = "complex->real or float64->float32 narrowing with no visible cast"
    rationale = (
        "CSI phase lives in the complex argument; a complex value landing in "
        "a real slot silently discards it, and float64->float32 halves the "
        "mantissa mid-pipeline — both produce answers, not errors. An "
        "explicit `.astype(...)` (or `np.float32(...)`) re-pins the tracked "
        "dtype and is never flagged: the rule's demand is only that "
        "narrowing be visible in source."
    )
    example = (
        "def power(csi):\n"
        '    """:dtype csi: complex128"""\n'
        "    x: Annotated[np.ndarray, DType(\"float64\")] = csi  # VH503\n"
        "    y = np.abs(csi)  # fine: |.| is the explicit magnitude"
    )


class ImplicitBroadcastRule(_ArrayFlowRule):
    id = "VH504"
    name = "implicit-axis-broadcast"
    description = "elementwise arithmetic trailing-aligns two different declared axes"
    rationale = (
        "numpy broadcasting pairs axes by position from the right, not by "
        "meaning: (S, m) * (B,) runs whenever B happens to equal m and "
        "produces per-session garbage. If two differently-named axes must "
        "interact, the pairing has to be spelled out (reshape, newaxis, or "
        "an explicit loop) so the intent survives review."
    )
    example = (
        "def weight(queries, bank_scale):\n"
        '    """\n'
        "    :shape queries: (S, m)\n"
        "    :shape bank_scale: (B,)\n"
        '    """\n'
        "    return queries * bank_scale  # VH504: aligns `m` against `B`"
    )
