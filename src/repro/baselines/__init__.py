"""Baselines ViHOT is compared against (and ablations of its design)."""

from repro.baselines.pointmap import PointMappingTracker
from repro.baselines.nearest import NearestFingerprintTracker
from repro.baselines.camera_only import CameraOnlyTracker

__all__ = [
    "PointMappingTracker",
    "NearestFingerprintTracker",
    "CameraOnlyTracker",
]
