"""Camera-only head tracking — the conventional solution (Sec. 2.1).

Wraps :class:`repro.sensors.camera.CameraTracker` in the same
``TrackingResult`` interface as ViHOT so the benchmarks can compare the
two directly: sampling rate (30 fps vs 400-500 Hz), motion blur at speed,
and night-time degradation (set ``CameraConfig.light_level`` low).
"""

from __future__ import annotations


import numpy as np

from repro.core.tracker import Estimate, TrackingResult
from repro.sensors.camera import CameraConfig, CameraTracker


class CameraOnlyTracker:
    """Head tracking from camera frames alone."""

    def __init__(
        self,
        scene,
        config: CameraConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._camera = CameraTracker(scene, config, rng=rng)

    @property
    def camera(self) -> CameraTracker:
        return self._camera

    def process(self, t_start: float, t_end: float) -> TrackingResult:
        """Track ``[t_start, t_end]``; estimates appear at frame times.

        Dropped frames produce gaps — downstream consumers see stale
        estimates, exactly the motion-blur failure Sec. 2.1 describes.
        """
        stream = self._camera.yaw_stream(t_start, t_end)
        result = TrackingResult()
        values = np.asarray(stream.values)
        for k in range(len(stream)):
            t = float(stream.times[k])
            result.estimates.append(
                Estimate(
                    time=t,
                    target_time=t,
                    orientation=float(values[k]),
                    mode="camera",
                )
            )
        return result

    def sampling_rate_hz(self, t_start: float, t_end: float) -> float:
        """Achieved estimate rate over a span (drops included)."""
        stream = self._camera.yaw_stream(t_start, t_end)
        if len(stream) < 2:
            return 0.0
        return (len(stream) - 1) / stream.duration
