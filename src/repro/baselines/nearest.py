"""Euclidean nearest-window fingerprint baseline.

The classic CSI-fingerprinting recipe from indoor localisation: slide a
fixed-length window and pick the profile segment with the smallest
point-wise distance — no time warping, no length search.  It fails
whenever the run-time head speed differs from the profiling speed
(Sec. 3.4.4's motivation for DTW), which the ablation benchmark shows.
"""

from __future__ import annotations


import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.position import PositionEstimator
from repro.core.profile import CsiProfile
from repro.core.sanitize import sanitize_stream
from repro.core.tracker import Estimate, TrackingResult
from repro.dsp.phase import wrap_phase
from repro.dsp.resample import resample_uniform
from repro.dsp.windows import sliding_windows
from repro.net.link import CsiStream


class NearestFingerprintTracker:
    """Fixed-length window matching under a plain circular-L1 distance."""

    def __init__(
        self, profile: CsiProfile, config: ViHOTConfig | None = None
    ) -> None:
        if len(profile) == 0:
            raise ValueError("cannot track against an empty profile")
        self._profile = profile
        self._config = config if config is not None else ViHOTConfig()

    def _match(self, query: np.ndarray, index: int):
        pos = self._profile[index]
        length = len(query)
        if length > len(pos.phases):
            return None
        candidates = sliding_windows(
            pos.phases, length, self._config.profile_stride
        )
        diff = np.mod(candidates - query[None, :] + np.pi, 2.0 * np.pi) - np.pi
        distances = np.mean(np.abs(diff), axis=1)
        k = int(np.argmin(distances))
        end = k * self._config.profile_stride + length - 1
        return float(pos.orientations[end]), float(distances[k])

    def process(
        self,
        stream: CsiStream,
        estimate_stride_s: float = 0.05,
        t_start: float | None = None,
    ) -> TrackingResult:
        """Track a session with rigid window matching."""
        if estimate_stride_s <= 0:
            raise ValueError("estimate_stride_s must be positive")
        config = self._config
        phase = sanitize_stream(stream.times, stream.csi)
        position = PositionEstimator(
            self._profile,
            window_s=config.stable_window_s,
            std_threshold_rad=config.stable_std_rad,
        )
        if t_start is None:
            t_start = phase.start + max(config.window_s, config.stable_window_s)
        default_position = len(self._profile) // 2

        result = TrackingResult()
        previous = None
        t = float(t_start)
        while t <= phase.end + 1e-9:
            index = position.update(phase, t)
            mode = "csi" if index is not None else "init"
            if index is None:
                index = default_position
            window = phase.slice(t - config.window_s, t)
            if len(window) >= 2 and window.duration >= 0.5 * config.window_s:
                uniform = resample_uniform(window, config.resample_rate_hz)
                query = wrap_phase(np.asarray(uniform.values))
                matched = self._match(query, index) if len(query) >= 2 else None
            else:
                matched = None
            if matched is None:
                if previous is None:
                    t += estimate_stride_s
                    continue
                estimate = Estimate(t, t, previous.orientation, "held", index)
            else:
                orientation, distance = matched
                estimate = Estimate(t, t, orientation, mode, index, distance)
            result.estimates.append(estimate)
            previous = estimate
            t += estimate_stride_s
        return result
