"""Naive single-point inverse mapping — the strawman of Sec. 3.4.2.

Eq. (5) hopes for an inverse mapping ``theta = R^{-1}(phi)`` applied to
the instantaneous phase.  The paper rejects it because the
phase-to-orientation relation is non-injective: this tracker implements it
anyway (nearest profiled phase sample wins) so the ablation benchmarks can
quantify exactly how much the DTW series matching buys.
"""

from __future__ import annotations


import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.position import PositionEstimator
from repro.core.profile import CsiProfile
from repro.core.sanitize import sanitize_stream
from repro.core.tracker import Estimate, TrackingResult
from repro.dsp.phase import phase_difference, wrap_phase
from repro.net.link import CsiStream


class PointMappingTracker:
    """Maps each instantaneous phase reading to its nearest profile sample.

    Shares ViHOT's sanitisation and position estimation so the comparison
    isolates the series-matching stage.
    """

    def __init__(
        self, profile: CsiProfile, config: ViHOTConfig | None = None
    ) -> None:
        if len(profile) == 0:
            raise ValueError("cannot track against an empty profile")
        self._profile = profile
        self._config = config if config is not None else ViHOTConfig()

    def process(
        self,
        stream: CsiStream,
        estimate_stride_s: float = 0.05,
        t_start: float | None = None,
    ) -> TrackingResult:
        """Track a session with per-sample inverse mapping."""
        if estimate_stride_s <= 0:
            raise ValueError("estimate_stride_s must be positive")
        config = self._config
        phase = sanitize_stream(stream.times, stream.csi)
        position = PositionEstimator(
            self._profile,
            window_s=config.stable_window_s,
            std_threshold_rad=config.stable_std_rad,
        )
        if t_start is None:
            t_start = phase.start + config.stable_window_s
        default_position = len(self._profile) // 2

        result = TrackingResult()
        t = float(t_start)
        while t <= phase.end + 1e-9:
            index = position.update(phase, t)
            mode = "csi" if index is not None else "init"
            if index is None:
                index = default_position
            pos = self._profile[index]
            phi = wrap_phase(float(phase.value_at(t)))
            distances = np.abs(phase_difference(pos.phases, phi))
            k = int(np.argmin(distances))
            result.estimates.append(
                Estimate(
                    time=t,
                    target_time=t,
                    orientation=float(pos.orientations[k]),
                    mode=mode,
                    position_index=index,
                    dtw_distance=float(distances[k]),
                )
            )
            t += estimate_stride_s
        return result
