"""Cabin world model: geometry, occupants, motions and the RF scene."""

from repro.cabin.geometry import CabinLayout, rx_layout, RX_LAYOUT_NAMES
from repro.cabin.head import HeadModel
from repro.cabin.driver import (
    DriverProfile,
    YawTrajectory,
    scan_trajectory,
    glance_trajectory,
    constant_trajectory,
    HeadPositionModel,
)
from repro.cabin.steering import SteeringModel, SteeringTrajectory
from repro.cabin.vehicle import VehicleKinematics
from repro.cabin.passenger import PassengerModel
from repro.cabin.micromotion import (
    BreathingMotion,
    EyeBlinkMotion,
    MusicVibrationMotion,
)
from repro.cabin.vibration import VibrationModel
from repro.cabin.scene import CabinScene

__all__ = [
    "CabinLayout",
    "rx_layout",
    "RX_LAYOUT_NAMES",
    "HeadModel",
    "DriverProfile",
    "YawTrajectory",
    "scan_trajectory",
    "glance_trajectory",
    "constant_trajectory",
    "HeadPositionModel",
    "SteeringModel",
    "SteeringTrajectory",
    "VehicleKinematics",
    "PassengerModel",
    "BreathingMotion",
    "EyeBlinkMotion",
    "MusicVibrationMotion",
    "VibrationModel",
    "CabinScene",
]
