"""Driver behaviour: head-yaw trajectories and head-position dynamics.

Two trajectory families matter for ViHOT:

* ``scan_trajectory`` — the profiling motion of Sec. 3.3: the driver
  sweeps the head continuously from the anatomic leftmost to the rightmost
  orientation and back, at a deliberate speed, for ~10 s per head position.
* ``glance_trajectory`` — run-time driving: mostly facing the road, with
  quick mirror checks and shoulder glances at 100-150 deg/s (Sec. 5.1's
  "normal head-turning speed around 100-120 deg/s").

``HeadPositionModel`` adds what makes the problem two-level (Sec. 3.4):
the head centre is not fixed.  A lean offset models the discrete profiled
positions (Fig. 5) and re-seating shifts (Sec. 5.2.4); a slow
Ornstein-Uhlenbeck sway models natural postural drift within a trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cabin.geometry import DRIVER_HEAD_CENTER
from repro.cabin.head import HeadModel
from repro.cabin.trajectory import PiecewiseTrajectory, TrajectoryBuilder

# Re-export under the domain name used throughout the tracker code.
YawTrajectory = PiecewiseTrajectory


def constant_trajectory(
    duration_s: float, yaw_rad: float = 0.0, t_start: float = 0.0
) -> YawTrajectory:
    """Head held at a fixed yaw (facing front by default)."""
    return PiecewiseTrajectory.constant(yaw_rad, t_start, t_start + duration_s)


#: Profiling-scan defaults (Sec. 3.3): sweep extent and speed.
_SCAN_AMPLITUDE_RAD = float(np.deg2rad(80.0))
_SCAN_SPEED_RAD_S = float(np.deg2rad(60.0))

#: Run-time glance defaults (Sec. 5.1): quick mirror checks.
_GLANCE_SPEED_RAD_S = float(np.deg2rad(110.0))
_GLANCE_MAX_RAD = float(np.deg2rad(85.0))
_GLANCE_MIN_RAD = float(np.deg2rad(25.0))


def scan_trajectory(
    duration_s: float,
    amplitude_rad: float = _SCAN_AMPLITUDE_RAD,
    speed_rad_s: float = _SCAN_SPEED_RAD_S,
    t_start: float = 0.0,
    rng: np.random.Generator | None = None,
    amplitude_jitter: float = 0.06,
) -> YawTrajectory:
    """Continuous left-right head sweeps for profiling (Sec. 3.3).

    Starts facing front, swings to ``-amplitude`` (driver's left), then
    sweeps between the extremes until ``duration_s`` is exhausted, ending
    wherever the clock runs out.  ``rng`` adds a small per-sweep amplitude
    jitter, mimicking that a human never hits identical end points, which
    is part of why repeated profiling rounds give slightly different
    curves (Fig. 3).
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if amplitude_rad <= 0 or speed_rad_s <= 0:
        raise ValueError("amplitude and speed must be positive")
    builder = TrajectoryBuilder(t_start, 0.0)
    target_sign = -1.0
    t_end = t_start + duration_s
    while builder.time < t_end:
        jitter = 0.0
        if rng is not None:
            jitter = rng.normal(0.0, amplitude_jitter * amplitude_rad)
        target = target_sign * amplitude_rad + jitter
        builder.ramp_to(target, speed_rad_s)
        target_sign = -target_sign
    trajectory = builder.build()
    # Trim: re-interpolate the final knot exactly at t_end.
    end_value = float(np.interp(t_end, trajectory.knot_times, trajectory.knot_values))
    keep = trajectory.knot_times < t_end
    return YawTrajectory(
        np.append(trajectory.knot_times[keep], t_end),
        np.append(trajectory.knot_values[keep], end_value),
        trajectory.smoothing_s,
    )


def glance_trajectory(
    duration_s: float,
    rng: np.random.Generator,
    speed_rad_s: float = _GLANCE_SPEED_RAD_S,
    glances_per_minute: float = 14.0,
    max_glance_rad: float = _GLANCE_MAX_RAD,
    min_glance_rad: float = _GLANCE_MIN_RAD,
    dwell_range_s: tuple = (0.25, 0.9),
    t_start: float = 0.0,
) -> YawTrajectory:
    """Run-time driving: face front, with randomly timed quick glances.

    Glance targets are drawn uniformly in ``[min, max]`` degrees with a
    random side (mirrors on both sides); the head dwells briefly at the
    target and returns to front — matching how Sec. 5.1 describes typical
    driving ("drivers ... will never keep the neck twisted for a long
    time").
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if glances_per_minute <= 0:
        raise ValueError("glances_per_minute must be positive")
    builder = TrajectoryBuilder(t_start, 0.0)
    t_end = t_start + duration_s
    mean_gap = 60.0 / glances_per_minute
    while True:
        gap = float(rng.uniform(0.45 * mean_gap, 1.55 * mean_gap))
        if builder.time + gap >= t_end:
            break
        builder.hold(gap)
        side = 1.0 if rng.random() < 0.5 else -1.0
        target = side * float(rng.uniform(min_glance_rad, max_glance_rad))
        dwell = float(rng.uniform(*dwell_range_s))
        builder.ramp_to(target, speed_rad_s)
        builder.hold(dwell)
        builder.ramp_to(0.0, speed_rad_s)
    if builder.time < t_end:
        builder.hold(t_end - builder.time)
    return builder.build()


@dataclass(frozen=True)
class HeadPositionModel:
    """Head-centre track: lean offset + deterministic slow sway.

    The sway is an OU process realised once (from ``seed``) on a coarse
    grid covering ``horizon_s``, so every query with the same model sees
    the same world — profiling, channel synthesis and ground-truth reads
    must agree on where the head was.

    Attributes:
        base_center: nominal head centre [m].
        lean_m: forward/backward lean along +x (positive = toward rear,
            i.e. leaning back).  The profiled positions of Fig. 5 differ
            in this coordinate.
        sway_std_m: standard deviation of the postural sway per axis.
        sway_tau_s: OU correlation time of the sway.
        seed: RNG seed realising the sway path.
        horizon_s: time horizon the sway path covers.
    """

    base_center: np.ndarray = field(default_factory=lambda: DRIVER_HEAD_CENTER.copy())
    lean_m: float = 0.0
    sway_std_m: float = 0.0012
    sway_tau_s: float = 6.0
    seed: int = 7
    horizon_s: float = 900.0

    _GRID_HZ = 20.0

    def __post_init__(self) -> None:
        center = np.asarray(self.base_center, dtype=np.float64)
        if center.shape != (3,):
            raise ValueError(f"base_center must be a 3-vector, got {center.shape}")
        if self.sway_std_m < 0:
            raise ValueError("sway_std_m must be non-negative")
        if self.sway_tau_s <= 0 or self.horizon_s <= 0:
            raise ValueError("sway_tau_s and horizon_s must be positive")
        object.__setattr__(self, "base_center", center)
        object.__setattr__(self, "_sway_cache", None)

    def _sway_path(self):
        """Lazily realise the sway on a coarse grid (deterministic)."""
        if self._sway_cache is None:
            rng = np.random.default_rng(self.seed)
            n = int(self.horizon_s * self._GRID_HZ) + 2
            grid = np.arange(n) / self._GRID_HZ
            dt = 1.0 / self._GRID_HZ
            rho = np.exp(-dt / self.sway_tau_s)
            innovation = self.sway_std_m * np.sqrt(1.0 - rho**2)
            path = np.empty((n, 3), dtype=np.float64)
            path[0] = rng.normal(0.0, self.sway_std_m, 3)
            noise = rng.normal(0.0, innovation, (n - 1, 3))
            for k in range(1, n):
                path[k] = rho * path[k - 1] + noise[k - 1]
            object.__setattr__(self, "_sway_cache", (grid, path))
        return self._sway_cache

    def centers(self, times: np.ndarray) -> np.ndarray:
        """Head centre positions, shape ``(T, 3)``."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        if np.any(times < 0) or np.any(times > self.horizon_s):
            raise ValueError(
                f"times outside the realised horizon [0, {self.horizon_s}]"
            )
        base = self.base_center + np.array([self.lean_m, 0.0, 0.0])
        if self.sway_std_m == 0.0:
            return np.broadcast_to(base, (len(times), 3)).copy()
        grid, path = self._sway_path()
        sway = np.stack(
            [np.interp(times, grid, path[:, d]) for d in range(3)], axis=1
        )
        return base[None, :] + sway

    def with_lean(
        self,
        lean_m: float,
        # None inherits self.seed — deterministic, never OS entropy.
        seed: int | None = None,  # vihot: noqa[VH105]
    ) -> HeadPositionModel:
        """Copy with a different lean (a new profiled head position)."""
        return HeadPositionModel(
            base_center=self.base_center,
            lean_m=lean_m,
            sway_std_m=self.sway_std_m,
            sway_tau_s=self.sway_tau_s,
            seed=self.seed if seed is None else seed,
            horizon_s=self.horizon_s,
        )


@dataclass(frozen=True)
class DriverProfile:
    """Per-driver physical traits (Sec. 5.2.5 tests three drivers).

    Attributes:
        name: label ("A", "B", "C").
        head_radius_m: blocking-sphere radius.
        head_height_m: head-centre height offset from the nominal centre
            (taller drivers sit higher).
        turn_speed_rad_s: habitual glance speed.
        face_scale: scales the scattering-centre offsets (head size).
    """

    name: str = "A"
    head_radius_m: float = 0.095
    head_height_m: float = 0.0
    turn_speed_rad_s: float = np.deg2rad(110.0)
    face_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.head_radius_m <= 0 or self.face_scale <= 0:
            raise ValueError("head_radius_m and face_scale must be positive")
        if self.turn_speed_rad_s <= 0:
            raise ValueError("turn_speed_rad_s must be positive")

    def head_model(self) -> HeadModel:
        """HeadModel with this driver's scaled scattering geometry."""
        base = HeadModel()
        coeffs = tuple(c * self.face_scale for c in base.depth_coeffs)
        return HeadModel(
            radius=self.head_radius_m,
            rcs_m2=base.rcs_m2 * self.face_scale,
            depth_coeffs=coeffs,
            lateral_swing_m=base.lateral_swing_m * self.face_scale,
            name_prefix=f"driver-{self.name}",
        )

    def position_model(self, lean_m: float = 0.0, seed: int = 7) -> HeadPositionModel:
        """HeadPositionModel at this driver's seat height."""
        center = DRIVER_HEAD_CENTER + np.array([0.0, 0.0, self.head_height_m])
        return HeadPositionModel(base_center=center, lean_m=lean_m, seed=seed)
