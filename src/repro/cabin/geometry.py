"""Cabin geometry: the car frame, antenna layouts and static clutter.

Frame convention (DESIGN.md): origin at the phone mount on the dashboard
in front of the driver; +x toward the car's rear (the driver sits at +x),
+y toward the passenger side, +z up.  A mid-size sedan cabin (the paper's
Toyota Camry) spans roughly 1.9 m (x) x 1.45 m (y) x 1.2 m (z) around the
front seats.

Five RX-antenna layouts mirror Sec. 5.2.2:

1. ``behind-driver`` (the paper's Fig. 9 / best layout): one antenna
   behind the driver's head so its LOS is blocked and its phase is
   dominated by the head reflection, the other near the rear-view mirror
   with a clean LOS reference.
2. ``center-console``: both antennas low on the centre console.
3. ``rear-shelf``: both far back on the parcel shelf.
4. ``a-pillars``: one antenna on each A-pillar.
5. ``overhead``: both in an overhead console, close together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.vec import normalize, vec3
from repro.rf.antenna import Antenna, DipolePattern, IsotropicPattern
from repro.rf.surfaces import ReflectingPlane, default_cabin_surfaces

#: The phone mount on the dashboard — the car frame's origin [m].
PHONE_POSITION = vec3(0.0, 0.0, 0.0)

#: Nominal driver head centre in the car frame [m].
DRIVER_HEAD_CENTER = vec3(0.55, 0.0, 0.15)

#: Nominal front passenger head centre [m].
PASSENGER_HEAD_CENTER = vec3(0.55, 0.70, 0.15)

#: Steering wheel hub centre [m] (between the phone and the driver).
STEERING_WHEEL_CENTER = vec3(0.28, 0.0, -0.12)

#: Steering wheel rim radius [m].
STEERING_WHEEL_RADIUS = 0.19

#: Cabin bounding box for static clutter, (min, max) corners [m].
CABIN_BOUNDS = (vec3(0.05, -0.55, -0.45), vec3(1.85, 0.90, 0.65))

_RX_LAYOUTS: dict[str, tuple[tuple[float, float, float], ...]] = {
    "behind-driver": ((1.05, 0.00, 0.33), (0.25, 0.25, 0.35)),
    "center-console": ((0.45, 0.35, -0.15), (0.50, 0.42, -0.15)),
    "rear-shelf": ((1.75, -0.25, 0.30), (1.75, 0.30, 0.30)),
    "a-pillars": ((0.10, -0.45, 0.40), (0.10, 0.78, 0.40)),
    "overhead": ((0.35, 0.18, 0.60), (0.35, 0.30, 0.60)),
}

#: Layout names in the paper's "Layout 1..5" order.
RX_LAYOUT_NAMES: tuple[str, ...] = tuple(_RX_LAYOUTS.keys())


def rx_layout(name_or_index) -> list[Antenna]:
    """Build the RX antenna pair for a named (or 1-based indexed) layout."""
    if isinstance(name_or_index, int):
        if not 1 <= name_or_index <= len(RX_LAYOUT_NAMES):
            raise ValueError(
                f"layout index must be 1..{len(RX_LAYOUT_NAMES)}, got {name_or_index}"
            )
        name = RX_LAYOUT_NAMES[name_or_index - 1]
    else:
        name = str(name_or_index)
    if name not in _RX_LAYOUTS:
        raise ValueError(f"unknown layout {name!r}; choose from {RX_LAYOUT_NAMES}")
    positions = _RX_LAYOUTS[name]
    return [
        Antenna(vec3(*pos), IsotropicPattern(), name=f"rx{k + 1}-{name}")
        for k, pos in enumerate(positions)
    ]


@dataclass(frozen=True)
class CabinLayout:
    """Antenna placement plus static clutter for one cabin configuration.

    Attributes:
        tx_antenna: the phone.  By default its dipole axis points at the
            passenger's head, the Sec. 3.5 placement that puts the
            radiation null on the passenger.
        rx_antennas: the receiver NIC's antennas.
        num_clutter: how many static scatterers to scatter through the
            cabin (seats, pillars, console electronics, ...).
        clutter_seed: RNG seed for clutter placement, so one cabin keeps
            identical clutter across profiling and run-time sessions.
        surfaces: large planar reflectors (glass, roof) contributing
            first-order image-method paths.
    """

    tx_antenna: Antenna = field(
        default_factory=lambda: Antenna(
            vec3(0.0, 0.0, 0.0),
            DipolePattern(axis=normalize(PASSENGER_HEAD_CENTER)),
            name="phone",
        )
    )
    rx_antennas: tuple[Antenna, ...] = field(
        default_factory=lambda: tuple(rx_layout("behind-driver"))
    )
    num_clutter: int = 6
    clutter_seed: int = 2018
    surfaces: tuple[ReflectingPlane, ...] = field(
        default_factory=lambda: tuple(default_cabin_surfaces())
    )

    def __post_init__(self) -> None:
        if self.num_clutter < 0:
            raise ValueError(f"num_clutter must be >= 0, got {self.num_clutter}")
        object.__setattr__(self, "rx_antennas", tuple(self.rx_antennas))
        object.__setattr__(self, "surfaces", tuple(self.surfaces))

    def static_clutter(self) -> list[tuple[np.ndarray, float]]:
        """Deterministic ``(position, rcs)`` list for the cabin's clutter.

        Metal interior objects can be strong reflectors (footnote 2 of the
        paper), but they are stationary, so their paths contribute a
        constant phasor.  RCS values span 0.002-0.015 m^2 (upholstered surfaces scatter weakly; the strongest metal faces are behind the dash).
        """
        rng = np.random.default_rng(self.clutter_seed)
        low, high = CABIN_BOUNDS
        positions = rng.uniform(low, high, size=(self.num_clutter, 3))
        rcs = rng.uniform(0.002, 0.015, size=self.num_clutter)
        return [(positions[k], float(rcs[k])) for k in range(self.num_clutter)]

    def with_rx_layout(self, name_or_index) -> CabinLayout:
        """Copy of this layout with a different RX antenna placement."""
        return CabinLayout(
            tx_antenna=self.tx_antenna,
            rx_antennas=tuple(rx_layout(name_or_index)),
            num_clutter=self.num_clutter,
            clutter_seed=self.clutter_seed,
            surfaces=self.surfaces,
        )
