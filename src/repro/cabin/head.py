"""The driver's head as an RF object.

The head is a sphere (LOS blocker) carrying an *effective scattering
centre*.  A human head at 2.4 GHz (wavelength ~12 cm, head diameter
~19 cm) sits in the Mie regime: the backscatter is well described by one
dominant scattering centre whose position depends on which part of the
head faces the illuminator.  As the head yaws, the nose (protruding),
cheeks, ears and occiput (receding) successively face the phone, so the
effective centre slides back and forth *along the illumination axis* by a
few centimetres.  Both the TX->head and head->RX path lengths change by
that depth, which at 2.4 GHz converts to a CSI phase swing of a couple of
radians across the yaw range — the physical origin of the
phase-vs-orientation curves of Fig. 3.

The depth profile is a low-order Fourier series in yaw:

    depth(theta) = c1 cos(theta) + c2 cos(2 theta) + c3 sin(theta)

``c1`` captures nose-front vs flat-back, ``c2`` the cheek/ear dip on both
sides, and ``c3`` the left-right asymmetry of a real face (noses are never
perfectly centred, and the jawline is asymmetric) — without it, +theta and
-theta would be indistinguishable.

Yaw convention: theta = 0 faces the front of the car (-x direction, i.e.
toward the phone); positive theta turns toward the passenger (+y).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.multipath import BlockerTrack, ScattererTrack


def facing_direction(yaw_rad: np.ndarray) -> np.ndarray:
    """Unit vector(s) the head faces, shape ``(..., 3)``."""
    yaw_rad = np.asarray(yaw_rad, dtype=np.float64)
    return np.stack(
        [-np.cos(yaw_rad), np.sin(yaw_rad), np.zeros_like(yaw_rad)], axis=-1
    )


def lateral_direction(yaw_rad: np.ndarray) -> np.ndarray:
    """Unit vector(s) toward the driver's left, shape ``(..., 3)``."""
    yaw_rad = np.asarray(yaw_rad, dtype=np.float64)
    return np.stack(
        [np.sin(yaw_rad), np.cos(yaw_rad), np.zeros_like(yaw_rad)], axis=-1
    )


@dataclass(frozen=True)
class HeadModel:
    """Geometry and scattering behaviour of one person's head.

    Attributes:
        radius: blocking-sphere radius [m]; adult heads are ~0.09-0.10.
        rcs_m2: radar cross-section of the dominant scattering centre.
            Human heads at 2.4 GHz measure ~0.05-0.15 m^2.
        depth_coeffs: ``(c1, c2, c3)`` [m] of the aspect-depth profile
            (see module docstring).  Defaults give a ~5 cm total path
            swing over a +-85 degree sweep.
        lateral_swing_m: small lateral drift of the scattering centre as
            the head turns (the bright spot walks toward the leading
            cheek), adding cross-range structure for off-axis antennas.
        back_rcs_m2: weak secondary centre on the occiput; its
            interference with the main centre adds the gentle ripples
            real CSI curves show.
        rcs_aspect_gain: fractional RCS modulation with aspect (a face
            reflects a little more strongly than an ear).
        creeping_coeffs: ``(e1, e2, e3)`` [m] of the aspect-dependent
            excess path the creeping wave around the head accrues on a
            blocked LOS (same Fourier basis as ``depth_coeffs``).  This
            is the dominant orientation->phase coupling for an antenna
            shadowed by the head (the paper's Layout 1).
        ripple_amp_m / ripple_cycles / ripple_phase_rad: a higher-order
            ripple on the creeping profile (hair, ears, jawline pass
            through the grazing path several times per sweep).  This is
            what makes the phase-orientation curve locally non-injective
            (Fig. 3): the same phase value recurs at nearby orientations,
            defeating single-point inversion (Sec. 3.4.2) while leaving
            series matching intact.
        transmission: amplitude of the blocked LOS relative to free
            space (creeping energy dominates near grazing incidence, ~-4 dB).
        name_prefix: prepended to scatterer names for diagnostics.
    """

    radius: float = 0.095
    rcs_m2: float = 0.030
    depth_coeffs: tuple[float, float, float] = (0.016, 0.009, 0.005)
    lateral_swing_m: float = 0.025
    back_rcs_m2: float = 0.006
    rcs_aspect_gain: float = 0.25
    creeping_coeffs: tuple[float, float, float] = (0.006, 0.004, 0.030)
    ripple_amp_m: float = 0.0015
    ripple_cycles: float = 3.0
    ripple_phase_rad: float = 0.7
    transmission: float = 0.65
    name_prefix: str = "driver"

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"head radius must be positive, got {self.radius}")
        if self.rcs_m2 <= 0 or self.back_rcs_m2 < 0:
            raise ValueError("head RCS values must be positive (back may be 0)")
        if len(self.depth_coeffs) != 3:
            raise ValueError("depth_coeffs must be (c1, c2, c3)")
        if not 0.0 <= self.rcs_aspect_gain < 1.0:
            raise ValueError("rcs_aspect_gain must be in [0, 1)")
        if len(self.creeping_coeffs) != 3:
            raise ValueError("creeping_coeffs must be (e1, e2, e3)")
        if not 0.0 <= self.transmission <= 1.0:
            raise ValueError(f"transmission must be in [0, 1], got {self.transmission}")
        if self.ripple_amp_m < 0 or self.ripple_cycles < 0:
            raise ValueError("ripple parameters must be non-negative")

    def depth_profile(self, yaw_rad: np.ndarray) -> np.ndarray:
        """Scattering-centre depth toward the illuminator [m] vs yaw."""
        yaw_rad = np.asarray(yaw_rad, dtype=np.float64)
        c1, c2, c3 = self.depth_coeffs
        return c1 * np.cos(yaw_rad) + c2 * np.cos(2.0 * yaw_rad) + c3 * np.sin(yaw_rad)

    def creeping_excess_path(self, yaw_rad: np.ndarray) -> np.ndarray:
        """Aspect-dependent excess path [m] of the creeping wave vs yaw.

        This is only the head-shape term — the wave hugs whatever profile
        the head presents, so a nose or a jawline in the path lengthens
        it.  The geometric detour around the blocking sphere itself is
        computed by the channel from the actual geometry
        (:meth:`repro.rf.multipath.BlockerTrack.creeping_excess`), which
        is what makes the blocked path sensitive to the head *position*.
        """
        yaw_rad = np.asarray(yaw_rad, dtype=np.float64)
        e1, e2, e3 = self.creeping_coeffs
        ripple = self.ripple_amp_m * np.sin(
            self.ripple_cycles * yaw_rad + self.ripple_phase_rad
        )
        return (
            e1 * np.cos(yaw_rad)
            + e2 * np.cos(2.0 * yaw_rad)
            + e3 * np.sin(yaw_rad)
            + ripple
        )

    def scatterer_tracks(
        self,
        centers: np.ndarray,
        yaw_rad: np.ndarray,
        toward: np.ndarray,
    ) -> list[ScattererTrack]:
        """Scattering-centre tracks for the RF channel.

        Args:
            centers: head centre track, shape ``(T, 3)``.
            yaw_rad: head yaw per sample, shape ``(T,)``.
            toward: the illuminator position (the phone), shape ``(3,)``;
                the aspect-depth displacement acts along the line from
                the head centre to this point.
        """
        centers = np.asarray(centers, dtype=np.float64)
        yaw_rad = np.asarray(yaw_rad, dtype=np.float64)
        toward = np.asarray(toward, dtype=np.float64)
        if centers.ndim != 2 or centers.shape[1] != 3:
            raise ValueError(f"centers must have shape (T, 3), got {centers.shape}")
        if yaw_rad.shape != (len(centers),):
            raise ValueError(
                f"yaw must have shape ({len(centers)},), got {yaw_rad.shape}"
            )
        if toward.shape != (3,):
            raise ValueError(f"toward must be a 3-vector, got {toward.shape}")

        to_tx = toward[None, :] - centers
        norms = np.linalg.norm(to_tx, axis=1, keepdims=True)
        if np.any(norms < 1e-9):
            raise ValueError("head centre coincides with the illuminator")
        axis = to_tx / norms
        # Horizontal direction perpendicular to the illumination axis.
        up = np.array([0.0, 0.0, 1.0])
        lateral = np.cross(up, axis)
        lateral_norm = np.linalg.norm(lateral, axis=1, keepdims=True)
        lateral_norm[lateral_norm < 1e-9] = 1.0
        lateral = lateral / lateral_norm

        depth = self.depth_profile(yaw_rad)
        side = self.lateral_swing_m * np.sin(yaw_rad)
        main = centers + depth[:, None] * axis + side[:, None] * lateral
        rcs = self.rcs_m2 * (1.0 + self.rcs_aspect_gain * (np.cos(yaw_rad) - 1.0) / 2.0)

        tracks = [ScattererTrack(f"{self.name_prefix}-head-front", main, rcs)]
        if self.back_rcs_m2 > 0:
            back = centers - (0.85 * self.radius) * axis
            tracks.append(
                ScattererTrack(
                    f"{self.name_prefix}-head-back", back, self.back_rcs_m2
                )
            )
        return tracks

    def blocker_track(
        self, centers: np.ndarray, yaw_rad: np.ndarray | None = None
    ) -> BlockerTrack:
        """The head sphere as an LOS blocker.

        With ``yaw_rad`` supplied, the blocker carries the
        aspect-dependent creeping excess path — the orientation coupling
        for shadowed antennas.
        """
        extra = None
        if yaw_rad is not None:
            extra = self.creeping_excess_path(yaw_rad)
        return BlockerTrack(
            f"{self.name_prefix}-head",
            centers,
            self.radius,
            extra_path_m=extra,
            transmission=self.transmission,
        )
