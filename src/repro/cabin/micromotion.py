"""Micro-motions in the cabin (Sec. 5.3.1 / Fig. 15).

Breathing, eye blinks and loudspeaker-driven panel vibration displace
reflecting surfaces by fractions of a millimetre to a few millimetres —
one to two orders of magnitude less than the centimetre-scale swing of the
head's scattering centres during a turn.  Each model here produces a
``ScattererTrack`` whose position is modulated accordingly, so Fig. 15's
comparison ("head turning causes much stronger phase variations") emerges
from the same channel code path as everything else.

Every model realises its randomness from a seed at construction, making
repeated queries consistent (the channel and any diagnostics must see the
same world).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.vec import vec3
from repro.rf.multipath import ScattererTrack


@dataclass(frozen=True)
class BreathingMotion:
    """Chest wall displacement: ~2.5 mm sinusoid at ~0.25 Hz.

    The torso is a large reflector (RCS ~ head-sized or bigger) but its
    displacement is tiny, so its phase footprint is small.
    """

    position: np.ndarray = field(default_factory=lambda: vec3(0.62, 0.0, -0.18))
    amplitude_m: float = 0.0025
    rate_hz: float = 0.25
    rcs_m2: float = 0.008
    axis: np.ndarray = field(default_factory=lambda: vec3(-1.0, 0.0, 0.0))
    phase_rad: float = 0.0
    name: str = "breathing-chest"

    def tracks(self, times: np.ndarray) -> list[ScattererTrack]:
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        displacement = self.amplitude_m * np.sin(
            2.0 * np.pi * self.rate_hz * times + self.phase_rad
        )
        positions = np.asarray(self.position) + displacement[:, None] * np.asarray(
            self.axis
        )
        return [ScattererTrack(self.name, positions, self.rcs_m2)]


@dataclass(frozen=True)
class EyeBlinkMotion:
    """Eyelid/eyeball micro-motion: sub-millimetre bursts near the face.

    "Intense eye motion" in Fig. 15 is modelled as 0.5 mm saccade bursts
    at a few hertz; even the intense case stays far below head turning.
    """

    position: np.ndarray = field(default_factory=lambda: vec3(0.47, 0.02, 0.17))
    amplitude_m: float = 0.0005
    burst_rate_hz: float = 3.0
    rcs_m2: float = 0.002
    seed: int = 11
    name: str = "eye-motion"

    def tracks(self, times: np.ndarray) -> list[ScattererTrack]:
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        rng = np.random.default_rng(self.seed)
        # Random saccade phase jumps on a coarse grid, interpolated.
        if len(times) == 0:
            return [ScattererTrack(self.name, np.zeros((0, 3)), self.rcs_m2)]
        horizon = float(times[-1]) + 1.0
        grid_n = max(int(horizon * self.burst_rate_hz * 2), 2)
        grid = np.linspace(0.0, horizon, grid_n)
        jumps = rng.uniform(-1.0, 1.0, grid_n)
        displacement = self.amplitude_m * np.interp(times, grid, jumps)
        positions = np.asarray(self.position) + displacement[:, None] * np.array(
            [0.0, 1.0, 0.0]
        )
        return [ScattererTrack(self.name, positions, self.rcs_m2)]


@dataclass(frozen=True)
class MusicVibrationMotion:
    """Loudspeaker-driven panel vibration: ~0.4 mm at tens of hertz."""

    position: np.ndarray = field(default_factory=lambda: vec3(0.08, 0.30, 0.05))
    amplitude_m: float = 0.0004
    rate_hz: float = 45.0
    rcs_m2: float = 0.040
    axis: np.ndarray = field(default_factory=lambda: vec3(0.0, 0.0, 1.0))
    name: str = "music-panel"

    def tracks(self, times: np.ndarray) -> list[ScattererTrack]:
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        displacement = self.amplitude_m * np.sin(2.0 * np.pi * self.rate_hz * times)
        positions = np.asarray(self.position) + displacement[:, None] * np.asarray(
            self.axis
        )
        return [ScattererTrack(self.name, positions, self.rcs_m2)]
