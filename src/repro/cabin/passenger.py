"""Front-seat passenger: an interfering head beside the driver.

Sec. 3.5/5.3.4: a passenger's head turns pollute the CSI.  ViHOT's
mitigation is geometric — the phone's radiation null points at the
passenger and the passenger's reflection path is longer — so the model
only needs to put a realistic head in the passenger seat and move it
occasionally ("a normal passenger who turns his head infrequently to look
at roadside scenes").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cabin.driver import HeadPositionModel, YawTrajectory, glance_trajectory
from repro.cabin.geometry import PASSENGER_HEAD_CENTER, PHONE_POSITION
from repro.cabin.head import HeadModel
from repro.rf.multipath import BlockerTrack, ScattererTrack


def passenger_glance_trajectory(
    duration_s: float,
    rng: np.random.Generator,
    t_start: float = 0.0,
) -> YawTrajectory:
    """Infrequent, slower roadside glances for the passenger."""
    return glance_trajectory(
        duration_s,
        rng,
        speed_rad_s=np.deg2rad(70.0),
        glances_per_minute=5.0,
        max_glance_rad=np.deg2rad(90.0),
        min_glance_rad=np.deg2rad(35.0),
        dwell_range_s=(1.0, 3.0),
        t_start=t_start,
    )


@dataclass(frozen=True)
class PassengerModel:
    """A passenger head (scatterers + blocker) with its own motion.

    Attributes:
        head: the passenger's head geometry.
        positions: head-centre track model (seated in the passenger seat).
        yaw: the passenger's glance trajectory; ``None`` means a perfectly
            still passenger.
    """

    head: HeadModel = field(
        default_factory=lambda: HeadModel(name_prefix="passenger")
    )
    positions: HeadPositionModel = field(
        default_factory=lambda: HeadPositionModel(
            base_center=PASSENGER_HEAD_CENTER.copy(), seed=23
        )
    )
    yaw: YawTrajectory | None = None

    def _yaw_at(self, times: np.ndarray) -> np.ndarray:
        if self.yaw is None:
            return np.zeros(len(times))
        return self.yaw.value(times)

    def scatterer_tracks(self, times: np.ndarray) -> list[ScattererTrack]:
        """Passenger head scatterers at ``times``."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        centers = self.positions.centers(times)
        return self.head.scatterer_tracks(
            centers, self._yaw_at(times), toward=PHONE_POSITION
        )

    def blocker_tracks(self, times: np.ndarray) -> list[BlockerTrack]:
        """Passenger head as an LOS blocker."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        return [self.head.blocker_track(self.positions.centers(times))]
