"""The full cabin scene: everything the channel and the sensors observe.

``CabinScene`` composes the layout, the driver (head geometry, head
position, yaw trajectory), optional steering activity, optional passenger,
micro-motions, antenna vibration and static clutter into the scene
interface consumed by :class:`repro.rf.channel.ChannelSimulator`, and also
exposes the ground-truth accessors the sensor models and the evaluation
harness read (driver yaw, car yaw rate).

Every stochastic element realises its randomness from its own seed at
construction, so a scene is a deterministic function of time — the channel
synthesis, the IMU streams and the ground truth all agree on one world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.cabin.driver import HeadPositionModel, YawTrajectory
from repro.cabin.geometry import CabinLayout
from repro.cabin.head import HeadModel
from repro.cabin.micromotion import BreathingMotion
from repro.cabin.passenger import PassengerModel
from repro.cabin.steering import SteeringModel, SteeringTrajectory
from repro.cabin.trajectory import PiecewiseTrajectory
from repro.cabin.vehicle import VehicleKinematics
from repro.cabin.vibration import VibrationModel
from repro.rf.antenna import Antenna
from repro.rf.multipath import BlockerTrack, ScattererTrack


@dataclass
class CabinScene:
    """One deterministic cabin world.

    Attributes:
        layout: antennas + static clutter.
        driver_head: the driver's head geometry.
        driver_positions: the driver's head-centre track model.
        driver_yaw_trajectory: the driver's head yaw over time.
        steering: wheel/hand geometry; ``None`` removes the hands from the
            scene entirely (e.g. a bench test without a driver's arms).
        steering_trajectory: wheel angle over time (``None`` = wheel held
            straight, hands at rest on the rim).
        vehicle: kinematics converting wheel angle into car yaw rate.
        passenger: optional front passenger.
        micromotions: extra micro-motion sources (breathing is included by
            default; see ``default_micromotions``).
        vibration: RX antenna vibration model (``None`` = rigid antennas).
    """

    layout: CabinLayout = field(default_factory=CabinLayout)
    driver_head: HeadModel = field(default_factory=HeadModel)
    driver_positions: HeadPositionModel = field(default_factory=HeadPositionModel)
    driver_yaw_trajectory: YawTrajectory = field(
        default_factory=lambda: PiecewiseTrajectory.constant(0.0, 0.0, 60.0)
    )
    steering: SteeringModel | None = field(default_factory=SteeringModel)
    steering_trajectory: SteeringTrajectory | None = None
    vehicle: VehicleKinematics = field(default_factory=VehicleKinematics)
    passenger: PassengerModel | None = None
    micromotions: Sequence = field(default_factory=lambda: [BreathingMotion()])
    vibration: VibrationModel | None = None

    # ------------------------------------------------------------------
    # Scene interface for ChannelSimulator
    # ------------------------------------------------------------------
    @property
    def tx_antenna(self) -> Antenna:
        return self.layout.tx_antenna

    @property
    def rx_antennas(self):
        return self.layout.rx_antennas

    @property
    def surfaces(self):
        """Planar reflectors for the channel's image-method paths."""
        return self.layout.surfaces

    def rx_offsets(self, times: np.ndarray) -> np.ndarray:
        """Antenna vibration offsets, shape ``(n_rx, T, 3)``."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        n_rx = len(self.rx_antennas)
        if self.vibration is None:
            return np.zeros((n_rx, len(times), 3))
        return self.vibration.offsets(times, n_rx)

    def scatterer_tracks(self, times: np.ndarray) -> list[ScattererTrack]:
        """Every reflector in the cabin, sampled at ``times``."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        tracks: list[ScattererTrack] = []

        centers = self.driver_positions.centers(times)
        yaw = self.driver_yaw_trajectory.value(times)
        tracks.extend(
            self.driver_head.scatterer_tracks(
                centers, yaw, toward=self.tx_antenna.position
            )
        )

        if self.steering is not None:
            tracks.extend(
                self.steering.scatterer_tracks(times, self.steering_trajectory)
            )

        if self.passenger is not None:
            tracks.extend(self.passenger.scatterer_tracks(times))

        for motion in self.micromotions:
            tracks.extend(motion.tracks(times))

        for position, rcs in self.layout.static_clutter():
            constant = np.broadcast_to(position, (len(times), 3)).copy()
            tracks.append(ScattererTrack("static-clutter", constant, rcs))
        return tracks

    def blocker_tracks(self, times: np.ndarray) -> list[BlockerTrack]:
        """LOS-blocking spheres (driver head, passenger head)."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        centers = self.driver_positions.centers(times)
        yaw = self.driver_yaw_trajectory.value(times)
        blockers = [self.driver_head.blocker_track(centers, yaw)]
        if self.passenger is not None:
            blockers.extend(self.passenger.blocker_tracks(times))
        return blockers

    # ------------------------------------------------------------------
    # Ground truth / sensor feeds
    # ------------------------------------------------------------------
    def driver_yaw(self, times) -> np.ndarray:
        """True head yaw [rad] at ``times``."""
        return self.driver_yaw_trajectory.value(times)

    def driver_yaw_rate(self, times) -> np.ndarray:
        """True head yaw rate [rad/s] at ``times``."""
        return self.driver_yaw_trajectory.rate(times)

    def driver_head_centers(self, times) -> np.ndarray:
        """True head centre positions, shape ``(T, 3)``."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        return self.driver_positions.centers(times)

    def car_yaw_rate(self, times) -> np.ndarray:
        """Car body yaw rate [rad/s] — what the phone IMU senses."""
        return self.vehicle.yaw_rate(times, self.steering_trajectory)

    def steering_angle(self, times) -> np.ndarray:
        """Steering-wheel angle [rad] at ``times``."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        if self.steering_trajectory is None:
            return np.zeros(len(times))
        return self.steering_trajectory.value(times)
