"""Steering wheel, hands-on-wheel scatterers and steering trajectories.

Sec. 3.6: turning the steering wheel moves the driver's hands through the
signal field, producing CSI phase swings that look like head turns
(Fig. 8).  We model two hands gripping the rim; their world positions
rotate with the wheel angle.  The vehicle kinematics convert the wheel
angle into the car yaw rate that the phone IMU observes — the physical
signal the steering identifier (Sec. 3.6.2) keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cabin.geometry import STEERING_WHEEL_CENTER, STEERING_WHEEL_RADIUS
from repro.cabin.trajectory import PiecewiseTrajectory, TrajectoryBuilder
from repro.rf.multipath import ScattererTrack

SteeringTrajectory = PiecewiseTrajectory


#: Steering defaults (Sec. 3.6): lane-keeping jitter and turn dynamics.
_LANE_JITTER_RAD = float(np.deg2rad(3.0))
_TURN_ANGLE_RANGE_RAD = (float(np.deg2rad(120.0)), float(np.deg2rad(360.0)))
_WHEEL_RATE_RAD_S = float(np.deg2rad(180.0))


def lane_keeping_trajectory(
    duration_s: float,
    rng: np.random.Generator,
    jitter_rad: float = _LANE_JITTER_RAD,
    correction_rate_hz: float = 0.4,
    t_start: float = 0.0,
) -> SteeringTrajectory:
    """Small bursty corrections that keep the car straight (Sec. 3.6).

    These are the "small & bursty steering motion" whose CSI effect the
    tracker filters with the jump filter, as opposed to large turns.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    builder = TrajectoryBuilder(t_start, 0.0)
    t_end = t_start + duration_s
    mean_gap = 1.0 / correction_rate_hz
    while True:
        gap = float(rng.uniform(0.5 * mean_gap, 1.5 * mean_gap))
        if builder.time + gap >= t_end:
            break
        builder.hold(gap)
        target = float(rng.normal(0.0, jitter_rad))
        builder.ramp_to(target, np.deg2rad(40.0))
        builder.ramp_to(0.0, np.deg2rad(40.0))
    if builder.time < t_end:
        builder.hold(t_end - builder.time)
    return builder.build()


def turning_trajectory(
    duration_s: float,
    rng: np.random.Generator,
    turns_per_minute: float = 2.0,
    turn_angle_range_rad: tuple[float, float] = _TURN_ANGLE_RANGE_RAD,
    wheel_rate_rad_s: float = _WHEEL_RATE_RAD_S,
    t_start: float = 0.0,
) -> SteeringTrajectory:
    """Lane keeping plus occasional large intersection turns.

    Each turn winds the wheel to a large angle, holds through the corner,
    then unwinds — the "large-scale steering event" of Sec. 3.6 that the
    identifier must catch.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    builder = TrajectoryBuilder(t_start, 0.0)
    t_end = t_start + duration_s
    mean_gap = 60.0 / turns_per_minute
    while True:
        gap = float(rng.uniform(0.5 * mean_gap, 1.5 * mean_gap))
        if builder.time + gap >= t_end:
            break
        builder.hold(gap)
        side = 1.0 if rng.random() < 0.5 else -1.0
        angle = side * float(rng.uniform(*turn_angle_range_rad))
        builder.ramp_to(angle, wheel_rate_rad_s)
        builder.hold(float(rng.uniform(0.8, 2.0)))
        builder.ramp_to(0.0, wheel_rate_rad_s)
    if builder.time < t_end:
        builder.hold(t_end - builder.time)
    return builder.build(smoothing_s=0.15)


@dataclass(frozen=True)
class SteeringModel:
    """The wheel rim and the driver's hands as scatterers.

    The wheel rim lies in the y-z plane at ``center`` (it faces the
    driver along +x).  A rim point at wheel-angle ``phi`` sits at
    ``center + radius * (0, sin(phi), cos(phi))`` — ``phi = 0`` is the
    top of the wheel.  Hands grip at 10-and-2 (+-50 degrees from top) and
    rotate with the wheel.
    """

    center: np.ndarray = field(default_factory=lambda: STEERING_WHEEL_CENTER.copy())
    radius: float = STEERING_WHEEL_RADIUS
    hand_angles_rad: tuple[float, float] = (-np.deg2rad(50.0), np.deg2rad(50.0))
    hand_rcs_m2: float = 0.008

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=np.float64)
        if center.shape != (3,):
            raise ValueError(f"wheel center must be a 3-vector, got {center.shape}")
        if self.radius <= 0:
            raise ValueError(f"wheel radius must be positive, got {self.radius}")
        if self.hand_rcs_m2 < 0:
            raise ValueError("hand_rcs_m2 must be non-negative")
        object.__setattr__(self, "center", center)

    def rim_point(self, phi_rad: np.ndarray) -> np.ndarray:
        """World position(s) of the rim point at wheel-angle ``phi``."""
        phi_rad = np.asarray(phi_rad, dtype=np.float64)
        offset = np.stack(
            [
                np.zeros_like(phi_rad),
                self.radius * np.sin(phi_rad),
                self.radius * np.cos(phi_rad),
            ],
            axis=-1,
        )
        return self.center + offset

    def scatterer_tracks(
        self,
        times: np.ndarray,
        wheel_angle: SteeringTrajectory | None,
    ) -> list[ScattererTrack]:
        """Hand scatterer tracks for the channel (empty if no steering)."""
        times = np.asarray(times, dtype=np.float64)
        if wheel_angle is None:
            angles = np.zeros(len(times))
        else:
            angles = wheel_angle.value(times)
        tracks = []
        for k, grip in enumerate(self.hand_angles_rad):
            positions = self.rim_point(angles + grip)
            tracks.append(
                ScattererTrack(f"steering-hand-{k + 1}", positions, self.hand_rcs_m2)
            )
        return tracks
