"""Piecewise-linear 1-D trajectories with corner smoothing.

Head yaw, steering-wheel angle and vehicle speed are all described as
knot sequences ``(t_k, value_k)`` evaluated with linear interpolation.  A
short boxcar smoothing (applied by averaging the interpolant over a small
time window) rounds the corners, because real necks and hands accelerate
smoothly — and because perfectly sharp corners would give DTW artificial
landmarks to latch onto.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Number of quadrature points used for the boxcar smoothing average.
_SMOOTH_TAPS = 9


@dataclass(frozen=True)
class PiecewiseTrajectory:
    """A smoothed piecewise-linear function of time.

    Attributes:
        knot_times: strictly increasing knot timestamps [s].
        knot_values: value at each knot.
        smoothing_s: width of the boxcar smoothing window [s]; 0 disables.
    """

    knot_times: np.ndarray
    knot_values: np.ndarray
    smoothing_s: float = 0.08

    def __post_init__(self) -> None:
        times = np.asarray(self.knot_times, dtype=np.float64)
        values = np.asarray(self.knot_values, dtype=np.float64)
        if times.ndim != 1 or len(times) < 1:
            raise ValueError("knot_times must be a non-empty 1-D array")
        if values.shape != times.shape:
            raise ValueError(
                f"knot shapes differ: {times.shape} times vs {values.shape} values"
            )
        if len(times) > 1 and np.any(np.diff(times) <= 0):
            raise ValueError("knot_times must be strictly increasing")
        if self.smoothing_s < 0:
            raise ValueError(f"smoothing_s must be >= 0, got {self.smoothing_s}")
        object.__setattr__(self, "knot_times", times)
        object.__setattr__(self, "knot_values", values)

    @property
    def start(self) -> float:
        return float(self.knot_times[0])

    @property
    def end(self) -> float:
        return float(self.knot_times[-1])

    def _raw(self, times: np.ndarray) -> np.ndarray:
        return np.interp(times, self.knot_times, self.knot_values)

    def value(self, times) -> np.ndarray:
        """Evaluate the smoothed trajectory at ``times`` (scalar or array)."""
        scalar = np.ndim(times) == 0
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        if self.smoothing_s == 0.0 or len(self.knot_times) < 2:
            out = self._raw(times)
        else:
            offsets = np.linspace(
                -self.smoothing_s / 2.0, self.smoothing_s / 2.0, _SMOOTH_TAPS
            )
            out = np.mean(
                [self._raw(times + off) for off in offsets], axis=0
            )
        return float(out[0]) if scalar else out

    def rate(self, times, dt: float = 1e-3) -> np.ndarray:
        """Central-difference time derivative of the smoothed value."""
        scalar = np.ndim(times) == 0
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        out = (self.value(times + dt / 2) - self.value(times - dt / 2)) / dt
        return float(out[0]) if scalar else out

    def shift(self, dt: float) -> PiecewiseTrajectory:
        """Copy with knots moved ``dt`` later."""
        return PiecewiseTrajectory(
            self.knot_times + dt, self.knot_values, self.smoothing_s
        )

    def scaled(self, factor: float) -> PiecewiseTrajectory:
        """Copy with values multiplied by ``factor``."""
        return PiecewiseTrajectory(
            self.knot_times, self.knot_values * factor, self.smoothing_s
        )

    @staticmethod
    def constant(value: float, t_start: float = 0.0, t_end: float = 1.0) -> PiecewiseTrajectory:
        """A trajectory pinned to ``value`` over ``[t_start, t_end]``."""
        if t_end <= t_start:
            raise ValueError(f"need t_end > t_start, got [{t_start}, {t_end}]")
        return PiecewiseTrajectory(
            np.array([t_start, t_end]), np.array([value, value]), smoothing_s=0.0
        )


class TrajectoryBuilder:
    """Incrementally appends hold/ramp segments into a trajectory."""

    def __init__(self, t_start: float = 0.0, value: float = 0.0) -> None:
        self._times = [float(t_start)]
        self._values = [float(value)]

    @property
    def time(self) -> float:
        """Current (latest) knot time."""
        return self._times[-1]

    @property
    def value(self) -> float:
        """Current (latest) knot value."""
        return self._values[-1]

    def hold(self, duration: float) -> TrajectoryBuilder:
        """Stay at the current value for ``duration`` seconds."""
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        if duration > 0:
            self._times.append(self.time + duration)
            self._values.append(self.value)
        return self

    def ramp_to(self, target: float, rate: float) -> TrajectoryBuilder:
        """Move linearly to ``target`` at ``abs(rate)`` units per second."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        delta = abs(target - self.value)
        new_time = self.time + delta / rate
        # Guard vanishing deltas: a sub-ulp ramp would create a knot at
        # the same timestamp and violate strict monotonicity.
        if delta > 0 and new_time > self.time:
            self._times.append(new_time)
            self._values.append(float(target))
        return self

    def build(self, smoothing_s: float = 0.08) -> PiecewiseTrajectory:
        """Finish and return the trajectory."""
        return PiecewiseTrajectory(
            np.array(self._times), np.array(self._values), smoothing_s
        )
