"""Vehicle kinematics: steering angle -> car yaw rate.

The phone is mounted rigidly on the dashboard, so the phone IMU measures
the car body's rotation, not the driver's.  Sec. 3.6.1: "the car body will
turn only if the driver's hand turns the steering wheel" — this module is
the physical link the steering identifier relies on.  A simple kinematic
bicycle model suffices: at the paper's sub-15 mph campus speeds tyre slip
is negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cabin.trajectory import PiecewiseTrajectory


@dataclass(frozen=True)
class VehicleKinematics:
    """Kinematic bicycle model parameters.

    Attributes:
        speed_mps: vehicle speed (paper: "safe speed below 15 mph",
            ~6.7 m/s; default 6.0).
        wheelbase_m: distance between axles (Camry: ~2.78 m).
        steering_ratio: steering-wheel angle / road-wheel angle (~15).
    """

    speed_mps: float = 6.0
    wheelbase_m: float = 2.78
    steering_ratio: float = 15.0

    def __post_init__(self) -> None:
        if self.speed_mps < 0:
            raise ValueError(f"speed_mps must be >= 0, got {self.speed_mps}")
        if self.wheelbase_m <= 0 or self.steering_ratio <= 0:
            raise ValueError("wheelbase_m and steering_ratio must be positive")

    def yaw_rate(
        self,
        times: np.ndarray,
        wheel_angle: PiecewiseTrajectory | None,
    ) -> np.ndarray:
        """Car yaw rate [rad/s] from the steering-wheel angle trajectory."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        if wheel_angle is None or self.speed_mps == 0.0:
            return np.zeros(len(times))
        road_angle = wheel_angle.value(times) / self.steering_ratio
        return self.speed_mps / self.wheelbase_m * np.tan(road_angle)

    def lateral_accel(
        self,
        times: np.ndarray,
        wheel_angle: PiecewiseTrajectory | None,
    ) -> np.ndarray:
        """Lateral acceleration [m/s^2]: ``v * yaw_rate``."""
        return self.speed_mps * self.yaw_rate(times, wheel_angle)
