"""Road-induced antenna vibration (Sec. 5.3.2 / Fig. 16).

Bumpy roads shake the RX antennas; the paper stresses their long soft coil
antennas as a worst case.  We model each antenna's displacement as
low-pass-filtered Gaussian noise (suspension + antenna-whip dynamics pass
mostly < ~20 Hz), realised deterministically from a seed so the channel
sees a repeatable world.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class VibrationModel:
    """Per-antenna position jitter from road vibration.

    Attributes:
        amplitude_m: RMS displacement per axis.  ~3 mm models the paper's
            worst-case soft coil antennas on a bumpy campus road; 0
            disables vibration (parked car).
        bandwidth_hz: first-order low-pass corner of the displacement.
        seed: realisation seed (each antenna gets an independent stream).
        horizon_s: time horizon the realisation covers.
    """

    amplitude_m: float = 0.003
    bandwidth_hz: float = 15.0
    seed: int = 5
    horizon_s: float = 900.0

    _GRID_HZ = 120.0

    def __post_init__(self) -> None:
        if self.amplitude_m < 0:
            raise ValueError(f"amplitude_m must be >= 0, got {self.amplitude_m}")
        if self.bandwidth_hz <= 0 or self.horizon_s <= 0:
            raise ValueError("bandwidth_hz and horizon_s must be positive")
        object.__setattr__(self, "_path_cache", {})

    def _path(self, antenna_index: int) -> tuple:
        cache = self._path_cache
        if antenna_index not in cache:
            rng = np.random.default_rng((self.seed, antenna_index))
            n = int(self.horizon_s * self._GRID_HZ) + 2
            grid = np.arange(n) / self._GRID_HZ
            white = rng.normal(0.0, 1.0, (n, 3))
            # One-pole low-pass, then rescale to the requested RMS.
            alpha = np.exp(-2.0 * np.pi * self.bandwidth_hz / self._GRID_HZ)
            path = np.empty_like(white)
            path[0] = white[0]
            for k in range(1, n):
                path[k] = alpha * path[k - 1] + (1.0 - alpha) * white[k]
            std = np.std(path, axis=0)
            std[std == 0] = 1.0
            path = path / std * self.amplitude_m
            cache[antenna_index] = (grid, path)
        return cache[antenna_index]

    def offsets(self, times: np.ndarray, num_antennas: int) -> np.ndarray:
        """Displacements, shape ``(num_antennas, T, 3)``."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        if num_antennas < 0:
            raise ValueError(f"num_antennas must be >= 0, got {num_antennas}")
        if self.amplitude_m == 0.0:
            return np.zeros((num_antennas, len(times), 3))
        if len(times) and (times[0] < 0 or times[-1] > self.horizon_s):
            raise ValueError(
                f"times outside the realised horizon [0, {self.horizon_s}]"
            )
        out = np.empty((num_antennas, len(times), 3), dtype=np.float64)
        for a in range(num_antennas):
            grid, path = self._path(a)
            for d in range(3):
                out[a, :, d] = np.interp(times, grid, path[:, d])
        return out
