"""Command-line interface: ``vihot <subcommand>``.

The workflows a user actually runs, end to end:

* ``vihot simulate-capture`` — synthesize a capture session (the stand-in
  for logging an Intel 5300 in a car) and save it as ``.npz``.
* ``vihot profile`` — run the Sec. 3.3 profiling pass for a scenario and
  save the driver's CSI profile.
* ``vihot track`` — track a saved capture against a saved profile; write
  the estimates as CSV and print a summary.
* ``vihot figure`` — regenerate one of the paper's figures and print its
  rows (the same output as the corresponding benchmark).
* ``vihot report`` — regenerate every figure at a chosen scale and write
  a combined text report.
* ``vihot serve-bench`` — drive a fleet of simulated cabins through the
  ``repro.serve`` session manager and report serving throughput,
  scheduler behaviour and the bit-identical-to-standalone check.

Everything is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.profile import CsiProfile
from repro.core.tracker import ViHOTTracker
from repro.experiments import figures
from repro.experiments.presets import PRESETS, preset_scenario
from repro.experiments.report import format_summary_table
from repro.net.link import CsiStream

#: Figure registry for ``vihot figure`` / ``vihot report``: name ->
#: (callable, takes campaign kwargs?).
FIGURES = {
    "fig02": (figures.fig02_head_plane, False),
    "fig03": (figures.fig03_phase_curves, False),
    "fig08": (figures.fig08_steering_phase, False),
    "fig10": (figures.fig10_prediction, True),
    "fig11": (figures.fig11_layout_curves, False),
    "fig12": (figures.fig12_antenna_layouts, True),
    "fig13a": (figures.fig13a_profile_interval, True),
    "fig13b": (figures.fig13b_window_size, True),
    "fig13c": (figures.fig13c_turn_speed, True),
    "fig13d": (figures.fig13d_drivers, True),
    "fig14": (figures.fig14_speed_curves, False),
    "fig15": (figures.fig15_micromotions, False),
    "fig16": (figures.fig16_vibration_phase, False),
    "fig17a": (figures.fig17a_vibration, True),
    "fig17b": (figures.fig17b_steering_identifier, True),
    "fig17c": (figures.fig17c_passenger, True),
    "fig17d": (figures.fig17d_interference, True),
    "sampling-rate": (figures.sampling_rate, False),
    "ablation-matching": (figures.ablation_matching, True),
    "ablation-position": (figures.ablation_position, True),
    "ablation-length": (figures.ablation_length_search, True),
    "ablation-sanitize": (figures.ablation_sanitization, False),
}

# Sec. 7 extension experiments join the registry lazily to keep import
# costs down for the common subcommands.
def _register_extensions() -> None:
    from repro.experiments import extensions

    FIGURES.setdefault("ext-5ghz", (extensions.extension_5ghz, True))
    FIGURES.setdefault("ext-fusion", (extensions.extension_fusion, True))


_register_extensions()


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="scenario seed")
    parser.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="campus",
        help="driving-condition preset",
    )
    parser.add_argument("--driver", choices=("A", "B", "C"), default="A")
    parser.add_argument(
        "--duration", type=float, default=20.0, help="run-time session seconds"
    )


def _scenario_from_args(args):
    return preset_scenario(
        args.preset,
        seed=args.seed,
        driver=args.driver,
        runtime_duration_s=args.duration,
    )


def cmd_simulate_capture(args) -> int:
    scenario = _scenario_from_args(args)
    stream, _scene = scenario.runtime_capture(args.session)
    stream.save(args.output)
    rate = (len(stream) - 1) / (stream.times[-1] - stream.times[0])
    print(f"wrote {args.output}: {len(stream)} packets at {rate:.0f} Hz "
          f"({'with' if stream.imu is not None else 'no'} IMU side-channel)")
    return 0


def cmd_profile(args) -> int:
    from repro.core.quality import assess_profile

    scenario = _scenario_from_args(args)
    start = time.perf_counter()
    profile = scenario.build_profile()
    profile.save(args.output)
    print(f"profiled {len(profile)} head positions in {time.perf_counter() - start:.1f}s "
          f"-> {args.output}")
    print(f"phi0 fingerprints: {np.round(profile.phi0_fingerprints(), 3)}")
    quality = assess_profile(profile)
    print(f"profile quality: {quality}")
    return 0 if quality.verdict != "poor" else 2


def cmd_track(args) -> int:
    profile = CsiProfile.load(args.profile)
    stream = CsiStream.load(args.capture)
    config = ViHOTConfig(
        window_s=args.window / 1000.0, horizon_s=args.horizon / 1000.0
    )
    tracker = ViHOTTracker(profile, config)
    start = time.perf_counter()
    result = tracker.process(stream, estimate_stride_s=args.stride / 1000.0)
    elapsed = time.perf_counter() - start
    if len(result) == 0:
        print("no estimates produced (capture too short?)", file=sys.stderr)
        return 1

    if args.output:
        with open(args.output, "w") as fh:
            fh.write("time_s,target_time_s,orientation_deg,mode\n")
            for e in result.estimates:
                fh.write(
                    f"{e.time:.4f},{e.target_time:.4f},"
                    f"{np.rad2deg(e.orientation):.2f},{e.mode}\n"
                )
        print(f"wrote {len(result)} estimates to {args.output}")

    modes = {m: result.modes.count(m) for m in sorted(set(result.modes))}
    rate = len(result) / (result.times[-1] - result.times[0])
    print(f"{len(result)} estimates at {rate:.0f} Hz "
          f"({len(result) / elapsed:.0f} estimates/s wall), modes: {modes}")
    spread = np.rad2deg(result.orientations)
    print(f"orientation span: [{spread.min():+.1f}, {spread.max():+.1f}] deg")

    from repro.core.diagnostics import diagnose, should_reprofile

    health = diagnose(result, stream)
    print(f"health: {health}")
    if should_reprofile(health):
        print("recommendation: re-profile this driver (Sec. 3.3 update)")
    return 0


def cmd_figure(args) -> int:
    fn, campaign = FIGURES[args.name]
    kwargs = {"seed": args.seed}
    if campaign:
        kwargs.update(
            num_sessions=args.sessions, runtime_duration_s=args.duration
        )
    start = time.perf_counter()
    result = fn(**kwargs)
    print(f"[{args.name} in {time.perf_counter() - start:.0f}s]")
    _print_figure(args.name, result)
    return 0


def _print_figure(name: str, result) -> None:
    if isinstance(result, dict) and result and all(
        isinstance(v, dict) and "summary" in v for v in result.values()
    ):
        rows = {str(k): v["summary"] for k, v in result.items()}
        print(format_summary_table(rows, title=name))
    elif isinstance(result, dict) and all(
        np.isscalar(v) for v in result.values()
    ):
        for k, v in result.items():
            print(f"  {k:28s} {v:.4g}")
    else:
        print(f"  {name}: series data with keys {list(result)[:6]} "
              "(use the python API for the raw arrays)")


def cmd_report(args) -> int:
    lines = []
    for name in args.only or FIGURES:
        fn, campaign = FIGURES[name]
        kwargs = {"seed": args.seed}
        if campaign:
            kwargs.update(
                num_sessions=args.sessions, runtime_duration_s=args.duration
            )
        start = time.perf_counter()
        result = fn(**kwargs)
        stamp = f"[{name}: {time.perf_counter() - start:.0f}s]"
        print(stamp)
        lines.append(stamp)
        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            _print_figure(name, result)
        print(buffer.getvalue(), end="")
        lines.append(buffer.getvalue())
    if args.output:
        Path(args.output).write_text("\n".join(lines))
        print(f"\nwrote report to {args.output}")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis import (
        concurrency_rules,
        dataflow_rules,
        default_rules,
        run_analysis,
        shape_rules,
    )

    if args.explain is not None:
        return _explain_rule(args.explain)
    rules = (
        default_rules()
        + (dataflow_rules() if args.dataflow else [])
        + (shape_rules() if args.shapes else [])
        + (concurrency_rules() if args.concurrency else [])
    )
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id} {rule.name} [{rule.severity}]")
            print(f"    {rule.description}")
            print(f"    why: {rule.rationale}")
        return 0
    start = time.perf_counter()
    findings = run_analysis(
        paths=args.paths or None,
        use_default_allowlist=not args.no_default_allowlist,
        dataflow=args.dataflow,
        shapes=args.shapes,
        concurrency=args.concurrency,
        cache_dir=args.cache_dir,
    )
    elapsed = time.perf_counter() - start
    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
    if findings:
        print(
            f"vihot lint: {len(findings)} finding(s) — see docs/static-analysis.md "
            "for rationale and suppression",
            file=sys.stderr,
        )
        return 1
    if args.budget_file is not None and not _lint_budget_ok(
        Path(args.budget_file), elapsed
    ):
        return 1
    if args.format != "json":
        print("vihot lint: clean")
    return 0


def _explain_rule(rule_id: str) -> int:
    """Print one rule's full documentation (``vihot lint --explain VH502``)."""
    from repro.analysis import (
        concurrency_rules,
        dataflow_rules,
        default_rules,
        shape_rules,
    )

    wanted = rule_id.strip().upper()
    for rule in (
        default_rules() + dataflow_rules() + shape_rules() + concurrency_rules()
    ):
        if rule.id != wanted:
            continue
        print(f"{rule.id} {rule.name} [{rule.severity}]")
        print(f"    {rule.description}")
        print()
        print(f"    {rule.rationale}")
        if rule.example:
            print()
            print("    example:")
            for line in rule.example.splitlines():
                print(f"        {line}")
        return 0
    print(
        f"vihot lint: unknown rule {rule_id!r}; see --list-rules "
        "(add --dataflow/--shapes/--concurrency for the opt-in sets)",
        file=sys.stderr,
    )
    return 2


def _lint_budget_ok(budget_path: Path, elapsed_s: float) -> bool:
    """Enforce (or record) the lint-runtime budget.

    The budget file pins a recorded baseline; the run fails when it took
    more than ``max_ratio`` times that long, so a perf regression in the
    analyzer itself cannot creep into CI unnoticed.  A missing file is
    recorded rather than failed, which is how the baseline is (re)set.
    """
    if not budget_path.exists():
        budget_path.parent.mkdir(parents=True, exist_ok=True)
        budget_path.write_text(
            json.dumps({"baseline_s": round(elapsed_s, 3), "max_ratio": 2.0}, indent=2)
            + "\n"
        )
        print(f"vihot lint: recorded runtime baseline {elapsed_s:.2f}s to {budget_path}")
        return True
    budget = json.loads(budget_path.read_text())
    baseline = float(budget["baseline_s"])
    max_ratio = float(budget.get("max_ratio", 2.0))
    if elapsed_s > max_ratio * baseline:
        print(
            f"FAIL: lint took {elapsed_s:.2f}s, over {max_ratio:g}x the recorded "
            f"{baseline:.2f}s baseline ({budget_path}); investigate the "
            "regression or re-record the baseline by deleting the file",
            file=sys.stderr,
        )
        return False
    return True


def _finish_chaos_result(chaos, json_path) -> int:
    """Print a ChaosResult, optionally dump JSON, return the exit code."""
    print(chaos.summary())
    print(chaos.metrics_line)
    if json_path:
        Path(json_path).write_text(json.dumps(chaos.as_dict(), indent=2))
        print(f"wrote {json_path}")
    if chaos.unhandled > 0:
        print(
            f"FAIL: {chaos.unhandled} exception(s) escaped the serving layer",
            file=sys.stderr,
        )
        return 1
    if not chaos.all_healthy:
        print(
            f"FAIL: fleet did not recover after faults cleared: "
            f"{chaos.final_health}",
            file=sys.stderr,
        )
        return 1
    return 0


def _finish_load_result(result, json_path) -> int:
    """Print a LoadResult, optionally dump JSON, return the exit code."""
    print(result.summary())
    print(result.metrics_line)
    if json_path:
        Path(json_path).write_text(json.dumps(result.as_dict(), indent=2))
        print(f"wrote {json_path}")
    if not result.bit_identical:
        print("FAIL: served estimates differ from standalone replay", file=sys.stderr)
        return 1
    if result.drops > 0:
        print(f"WARN: {result.drops} packets shed by backpressure", file=sys.stderr)
    return 0


def _write_prometheus(path: str | None, snapshot) -> None:
    if not path:
        return
    from repro.serve.export import render_prometheus

    Path(path).write_text(render_prometheus(snapshot))
    print(f"wrote {path}")


def cmd_serve_bench(args) -> int:
    from repro.serve import run_chaos, run_load

    if args.open_loop:
        if args.chaos or args.scenario:
            print(
                "--open-loop is its own driver; drop --chaos/--scenario",
                file=sys.stderr,
            )
            return 2
        from repro.serve.openloop import SloSpec, run_open_loop

        slo = SloSpec.parse(args.slo) if args.slo else None
        result = run_open_loop(
            num_sessions=args.sessions,
            duration_s=args.duration,
            rate_hz=args.rate,
            tick_interval_s=args.tick / 1000.0,
            speedup=args.speedup,
            workers=args.workers,
            slo=slo,
            stride_s=args.stride / 1000.0,
            budget_s=args.budget / 1000.0,
            queue_depth=args.queue_depth,
            seed=args.seed,
        )
        print(result.summary())
        if args.json:
            Path(args.json).write_text(json.dumps(result.as_dict(), indent=2))
            print(f"wrote {args.json}")
        _write_prometheus(args.prom_out, result.snapshot)
        if result.slo_checked and not result.slo_met:
            for violation in result.violations:
                print(f"FAIL SLO: {violation}", file=sys.stderr)
            return 1
        return 0

    if args.scenario:
        from repro.scenarios import resolve_scenario, run_scenario, run_scenario_chaos

        spec = resolve_scenario(args.scenario)
        print(f"scenario {spec.name} [{spec.tier}] id={spec.scenario_id}")
        if args.chaos:
            return _finish_chaos_result(run_scenario_chaos(spec), args.json)
        result = run_scenario(spec, workers=args.workers)
        _write_prometheus(args.prom_out, result.snapshot)
        return _finish_load_result(result, args.json)

    if args.chaos:
        chaos = run_chaos(
            num_sessions=args.sessions,
            duration_s=args.duration,
            rate_hz=args.rate,
            tick_interval_s=args.tick / 1000.0,
            stride_s=args.stride / 1000.0,
            budget_s=args.budget / 1000.0,
            queue_depth=args.queue_depth,
            seed=args.seed,
            batching=args.batched,
        )
        return _finish_chaos_result(chaos, args.json)

    result = run_load(
        num_sessions=args.sessions,
        duration_s=args.duration,
        rate_hz=args.rate,
        tick_interval_s=args.tick / 1000.0,
        stride_s=args.stride / 1000.0,
        budget_s=args.budget / 1000.0,
        queue_depth=args.queue_depth,
        verify_sessions=args.verify,
        seed=args.seed,
        batching=args.batched,
        workload_mix=args.workload_mix,
        workers=args.workers,
    )
    _write_prometheus(args.prom_out, result.snapshot)
    return _finish_load_result(result, args.json)


def cmd_scenarios(args) -> int:
    from repro.scenarios import (
        list_scenarios,
        resolve_scenario,
        run_scenario,
        run_scenario_chaos,
        validate_scenario,
    )

    if args.action == "list":
        specs = list_scenarios(tier=args.tier)
        for spec in specs:
            faults = len(spec.fault_plan.injectors)
            flags = []
            if faults:
                flags.append(f"{faults} injectors")
            if spec.churn_fraction > 0:
                flags.append(f"churn {spec.churn_fraction:g}")
            if spec.batching:
                flags.append("batched")
            extra = f" ({', '.join(flags)})" if flags else ""
            print(
                f"{spec.tier}  {spec.name:26s} {spec.scenario_id}  "
                f"{spec.num_sessions} sessions x {spec.duration_s:g}s  "
                f"mix={','.join(spec.workload_mix)}{extra}"
            )
            if args.verbose:
                print(f"    {spec.description}")
        if not specs:
            print("no scenarios registered")
        return 0

    if args.action == "validate":
        failures = 0
        for spec in list_scenarios(tier=args.tier):
            problems = validate_scenario(spec)
            if problems:
                failures += 1
                print(f"FAIL {spec.name} [{spec.tier}]", file=sys.stderr)
                for problem in problems:
                    print(f"  - {problem}", file=sys.stderr)
            else:
                print(f"ok   {spec.name} [{spec.tier}] id={spec.scenario_id}")
        return 1 if failures else 0

    # args.action == "run"
    spec = resolve_scenario(args.name)
    print(f"scenario {spec.name} [{spec.tier}] id={spec.scenario_id}")
    if args.chaos:
        return _finish_chaos_result(run_scenario_chaos(spec), args.json)
    return _finish_load_result(
        run_scenario(spec, workers=args.workers), args.json
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vihot",
        description="ViHOT: wireless CSI-based head tracking (CoNEXT'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate-capture", help="synthesize a CSI capture session")
    _add_scenario_args(p)
    p.add_argument("--session", type=int, default=0, help="session index")
    p.add_argument("-o", "--output", default="capture.npz")
    p.set_defaults(func=cmd_simulate_capture)

    p = sub.add_parser("profile", help="run the profiling pass, save the profile")
    _add_scenario_args(p)
    p.add_argument("-o", "--output", default="profile.npz")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("track", help="track a saved capture against a profile")
    p.add_argument("profile", help="profile .npz from `vihot profile`")
    p.add_argument("capture", help="capture .npz from `vihot simulate-capture`")
    p.add_argument("-o", "--output", default=None, help="estimates CSV path")
    p.add_argument("--window", type=float, default=100.0, help="CSI window [ms]")
    p.add_argument("--horizon", type=float, default=0.0, help="forecast horizon [ms]")
    p.add_argument("--stride", type=float, default=50.0, help="estimate stride [ms]")
    p.set_defaults(func=cmd_track)

    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("name", choices=sorted(FIGURES))
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sessions", type=int, default=2)
    p.add_argument("--duration", type=float, default=12.0)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser(
        "serve-bench",
        help="drive M simulated cabins through the serving layer",
    )
    p.add_argument("--sessions", type=int, default=50, help="concurrent cabins")
    p.add_argument("--duration", type=float, default=4.0, help="stream seconds per cabin")
    p.add_argument("--rate", type=float, default=200.0, help="per-cabin packet rate [Hz]")
    p.add_argument("--tick", type=float, default=50.0, help="manager tick interval [ms]")
    p.add_argument("--stride", type=float, default=250.0, help="estimate period [ms]")
    p.add_argument("--budget", type=float, default=1000.0, help="scheduler budget per tick [ms]")
    p.add_argument("--queue-depth", type=int, default=4096, help="ingest ring capacity")
    p.add_argument("--verify", type=int, default=2,
                   help="cabins replayed standalone for the bit-identical check")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", default=None, help="write the result dict as JSON")
    p.add_argument(
        "--chaos",
        action="store_true",
        help="run the fault-injection chaos scenario instead of the "
        "clean-load bench (fails unless the fleet recovers)",
    )
    p.add_argument(
        "--batched",
        action="store_true",
        help="serve with the fleet-batched scheduler (stacked stage "
        "execution; bit-identical to the sequential path)",
    )
    p.add_argument(
        "--workload-mix",
        action="store_true",
        help="cycle cabins through the plain/forecast/camera/imu "
        "workload kinds instead of a homogeneous fleet",
    )
    p.add_argument(
        "--scenario",
        default=None,
        metavar="NAME_OR_TIER",
        help="run a registered scenario (e.g. t3-rush-hour-chaos) or a "
        "tier's flagship (e.g. T2) instead of the ad-hoc knobs above; "
        "combine with --chaos for the containment driver",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="serve through a sharded multi-process fabric of N workers "
        "(0 = one in-process manager; estimates are bit-identical "
        "either way)",
    )
    p.add_argument(
        "--open-loop",
        action="store_true",
        help="wall-clock arrival schedule instead of the closed-loop "
        "replay: arrivals never wait for the service, so latency "
        "percentiles reflect real queueing delay",
    )
    p.add_argument(
        "--speedup",
        type=float,
        default=10.0,
        help="open-loop stream-time compression (10 = a 4 s stream "
        "replays in 0.4 s wall)",
    )
    p.add_argument(
        "--slo",
        default=None,
        metavar="SPEC",
        help='open-loop latency objectives, e.g. "p99=50,p99.9=200" '
        "[ms]; exits nonzero when missed",
    )
    p.add_argument(
        "--prom-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics as a Prometheus text exposition",
    )
    p.set_defaults(func=cmd_serve_bench)

    p = sub.add_parser(
        "scenarios",
        help="list, validate or run the declared scenario packs",
    )
    scen_sub = p.add_subparsers(dest="action", required=True)

    sp = scen_sub.add_parser("list", help="print the registered catalogue")
    sp.add_argument("--tier", default=None, help="only this tier (T0..T3)")
    sp.add_argument("-v", "--verbose", action="store_true",
                    help="include scenario descriptions")
    sp.set_defaults(func=cmd_scenarios)

    sp = scen_sub.add_parser(
        "validate", help="check every registered scenario against its tier contract"
    )
    sp.add_argument("--tier", default=None, help="only this tier (T0..T3)")
    sp.set_defaults(func=cmd_scenarios)

    sp = scen_sub.add_parser("run", help="run one scenario end to end")
    sp.add_argument("name", help="scenario name or tier (tier runs its flagship)")
    sp.add_argument("--chaos", action="store_true",
                    help="use the containment driver instead of loadgen")
    sp.add_argument("--json", default=None, help="write the result dict as JSON")
    sp.add_argument("--workers", type=int, default=0,
                    help="serve through a sharded fabric of N worker "
                    "processes (loadgen driver only)")
    sp.set_defaults(func=cmd_scenarios)

    p = sub.add_parser(
        "lint",
        help="run the determinism/contract static-analysis suite",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories (default: the installed repro package)",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--list-rules", action="store_true", help="print the rule catalogue")
    p.add_argument(
        "--no-default-allowlist",
        action="store_true",
        help="ignore the reviewed allowlist (audit mode)",
    )
    p.add_argument(
        "--dataflow",
        action="store_true",
        help="also run the inter-procedural VH3xx/VH4xx rules "
        "(phase-domain tracking, numpy aliasing)",
    )
    p.add_argument(
        "--shapes",
        action="store_true",
        help="also run the array shape/dtype VH5xx rules "
        "(symbolic axes, batch-axis mixups, silent downcasts)",
    )
    p.add_argument(
        "--concurrency",
        action="store_true",
        help="also run the process-safety VH6xx rules (fork-inherited "
        "state, shared-memory lifecycle, pickle boundaries, RNG leakage, "
        "fork-only APIs)",
    )
    p.add_argument(
        "--explain",
        default=None,
        metavar="VHxxx",
        help="print one rule's description, rationale and example, then exit",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the call-graph summary cache (keyed on a "
        "source hash; safe to persist between runs)",
    )
    p.add_argument(
        "--budget-file",
        default=None,
        help="JSON runtime budget: fail if the lint run exceeds "
        "max_ratio x the recorded baseline; records the baseline when "
        "the file does not exist",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("report", help="regenerate all figures into a text report")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sessions", type=int, default=1)
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--only", nargs="*", choices=sorted(FIGURES), default=None)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
