"""Physical constants and 802.11n parameters shared across the library.

All quantities are SI (metres, seconds, hertz, radians) unless a name says
otherwise.  The WiFi parameters follow the paper's prototype: a 2.4 GHz
802.11n link measured with the Intel 5300 CSI tool, which reports CSI on 30
of the 56 populated 20 MHz subcarriers.
"""

from __future__ import annotations

import numpy as np

#: Speed of light in vacuum [m/s].
SPEED_OF_LIGHT = 299_792_458.0

#: Default 2.4 GHz WiFi channel (channel 6 centre frequency) [Hz].
DEFAULT_CARRIER_HZ = 2.437e9

#: 802.11n 20 MHz channel bandwidth [Hz].
CHANNEL_BANDWIDTH_HZ = 20e6

#: OFDM FFT size for a 20 MHz 802.11n channel.
OFDM_FFT_SIZE = 64

#: Subcarrier spacing for 20 MHz 802.11n [Hz].
SUBCARRIER_SPACING_HZ = CHANNEL_BANDWIDTH_HZ / OFDM_FFT_SIZE

#: Subcarrier indices reported by the Intel 5300 CSI tool for a 20 MHz
#: channel (the "-28 to 28 step 2, skipping DC neighbourhood" grouping).
INTEL5300_SUBCARRIER_INDICES = np.array(
    [-28, -26, -24, -22, -20, -18, -16, -14, -12, -10, -8, -6, -4, -2, -1,
     1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 28],
    dtype=np.int64,
)

#: Number of subcarriers in an Intel 5300 CSI report.
INTEL5300_NUM_SUBCARRIERS = len(INTEL5300_SUBCARRIER_INDICES)

#: Number of RX antennas used by the ViHOT prototype.
DEFAULT_NUM_RX_ANTENNAS = 2

#: CSI sample rate with the cabin to itself (no interfering traffic) [Hz]
#: (Sec. 5.3.5: "around 500 frames per second at a 34 ms maximum interval").
CLEAN_CSI_RATE_HZ = 500.0

#: Maximum inter-frame gap without interference [s].
CLEAN_MAX_GAP_S = 0.034

#: CSI sample rate under interfering WiFi traffic [Hz] (Sec. 5.3.5).
INTERFERED_CSI_RATE_HZ = 400.0

#: Maximum inter-frame gap under interference [s].
INTERFERED_MAX_GAP_S = 0.049

#: Typical camera head-tracker frame rate the paper compares against [Hz].
CAMERA_FRAME_RATE_HZ = 30.0

#: Default CSI input window length (Sec. 5.1 "100 ms CSI input window") [s].
DEFAULT_WINDOW_S = 0.100

#: Normal head-turning speed range in typical driving [deg/s] (Sec. 5.1).
TYPICAL_TURN_SPEED_DEG_S = (100.0, 120.0)

#: Uniform grid rate the tracker resamples irregular CSI onto [Hz].
DEFAULT_RESAMPLE_RATE_HZ = 200.0


def wavelength(frequency_hz: float) -> float:
    """Return the free-space wavelength [m] for ``frequency_hz``.

    :domain frequency_hz: hz
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return SPEED_OF_LIGHT / frequency_hz


def subcarrier_frequencies(
    carrier_hz: float = DEFAULT_CARRIER_HZ,
    indices: np.ndarray = INTEL5300_SUBCARRIER_INDICES,
) -> np.ndarray:
    """Absolute frequencies [Hz] of the reported OFDM subcarriers.

    Subcarrier ``k`` sits at ``carrier + k * spacing`` for the signed
    index grid used by the Intel 5300 report format.

    :domain carrier_hz: hz
    :domain return: hz
    """
    return carrier_hz + np.asarray(indices, dtype=np.float64) * SUBCARRIER_SPACING_HZ
