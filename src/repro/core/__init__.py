"""ViHOT core: profiling, position-orientation joint tracking, forecasting."""

from repro.core.config import ViHOTConfig
from repro.core.sanitize import (
    sanitize_stream,
    sanitize_streams,
    antenna_phase_difference,
)
from repro.core.profile import PositionProfile, CsiProfile
from repro.core.profiling import build_position_profile, ProfileBuilder
from repro.core.position import PositionEstimator, detect_stable_phase
from repro.core.matching import MatchResult, SeriesMatcher
from repro.core.forecast import forecast_orientation
from repro.core.steering_id import SteeringIdentifier
from repro.core.stages import (
    Estimate,
    EstimationContext,
    EstimationTrace,
    SanitizeStage,
    StageTrace,
)
from repro.core.engine import BatchItem, BatchResult, EstimationEngine, SessionState
from repro.core.localize import OccupancyGateStage, SeatMatchStage, localization_stages
from repro.core.breathing import BreathingStage, breathing_stages
from repro.core.workloads import (
    HEAD_WORKLOAD,
    engine_for_workload,
    register_workload,
    workload_kinds,
)
from repro.core.tracker import ViHOTTracker, TrackingResult
from repro.core.online import OnlineTracker, SampleRing
from repro.core.fusion import FusedTracker, FusionConfig
from repro.core.diagnostics import (
    StageStats,
    TrackingHealth,
    aggregate_stage_traces,
    diagnose,
    should_reprofile,
)
from repro.core.quality import ProfileQuality, assess_profile

__all__ = [
    "ViHOTConfig",
    "sanitize_stream",
    "sanitize_streams",
    "antenna_phase_difference",
    "PositionProfile",
    "CsiProfile",
    "build_position_profile",
    "ProfileBuilder",
    "PositionEstimator",
    "detect_stable_phase",
    "MatchResult",
    "SeriesMatcher",
    "forecast_orientation",
    "SteeringIdentifier",
    "Estimate",
    "EstimationContext",
    "EstimationTrace",
    "SanitizeStage",
    "StageTrace",
    "OccupancyGateStage",
    "SeatMatchStage",
    "localization_stages",
    "BreathingStage",
    "breathing_stages",
    "HEAD_WORKLOAD",
    "engine_for_workload",
    "register_workload",
    "workload_kinds",
    "BatchItem",
    "BatchResult",
    "EstimationEngine",
    "SessionState",
    "ViHOTTracker",
    "TrackingResult",
    "OnlineTracker",
    "SampleRing",
    "FusedTracker",
    "FusionConfig",
    "StageStats",
    "TrackingHealth",
    "aggregate_stage_traces",
    "diagnose",
    "should_reprofile",
    "ProfileQuality",
    "assess_profile",
]
