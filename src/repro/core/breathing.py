"""Breathing-rate micro-motion sensing from the cabin CSI link.

V2iFi-style workload (see PAPERS.md): chest displacement during quiet
breathing is a few millimetres — far below what the head tracker's DTW
match resolves as orientation, but a clean periodicity in the antenna
phase difference (:class:`repro.cabin.micromotion.BreathingMotion` is
the simulator's ground-truth model of exactly this).  This stage
estimates the dominant respiration frequency spectrally: resample the
buffered phase onto the uniform grid, detrend, window, and take the
tallest zero-padded FFT peak inside the physiological band.

Single terminal stage behind the standard
:class:`~repro.core.stages.Stage` interface so
:class:`~repro.core.engine.EstimationEngine` runs it unmodified.

Output convention: ``mode="breathing"`` with ``orientation`` carrying
the estimated rate [Hz] — for non-head workloads the ``orientation``
slot is the workload's scalar estimate (see
:class:`~repro.core.stages.Estimate`).  ``dtw_distance`` carries the
peak's share of in-band spectral energy as a confidence proxy.  No
``run_batch`` override — the default per-context loop applies.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.stages import (
    Estimate,
    EstimationContext,
    Stage,
    StageDecision,
)
from repro.dsp.resample import resample_uniform

__all__ = ["BreathingStage", "breathing_stages", "BREATHING_BAND_HZ"]

#: Physiological respiration band [Hz]: 6 to 48 breaths per minute.
BREATHING_BAND_HZ = (0.1, 0.8)


class BreathingStage(Stage):
    """Estimate the respiration rate from the buffered phase (terminal).

    Holds until at least ``min_window_s`` of history is buffered (a
    fraction of one breath cycle resolves poorly), then analyses up to
    ``max_window_s`` of it.  The FFT is zero-padded ``pad_factor``-fold
    so the peak bin resolves rates finer than ``1 / max_window_s``.
    """

    name = "breathing"

    def __init__(
        self,
        config: ViHOTConfig,
        min_window_s: float = 1.2,
        max_window_s: float = 8.0,
        band_hz: tuple[float, float] = BREATHING_BAND_HZ,
        pad_factor: int = 8,
    ) -> None:
        if min_window_s <= 0 or max_window_s < min_window_s:
            raise ValueError(
                f"need 0 < min_window_s <= max_window_s, got "
                f"{min_window_s}/{max_window_s}"
            )
        if not 0 < band_hz[0] < band_hz[1]:
            raise ValueError(f"invalid breathing band {band_hz}")
        self._config = config
        self._min_window_s = float(min_window_s)
        self._max_window_s = float(max_window_s)
        self._band_hz = (float(band_hz[0]), float(band_hz[1]))
        self._pad_factor = int(pad_factor)

    def run(self, ctx: EstimationContext) -> StageDecision:
        config = self._config
        window = ctx.phase.slice(ctx.t - self._max_window_s, ctx.t)
        if len(window) < 8 or window.duration < self._min_window_s:
            return StageDecision.hold(
                fired=False, samples=len(window), span_s=window.duration
            )
        uniform = resample_uniform(window, config.resample_rate_hz)
        values = np.asarray(uniform.values, dtype=np.float64)
        detrended = values - values.mean()
        tapered = detrended * np.hanning(len(detrended))
        n = self._pad_factor * len(tapered)
        spectrum = np.abs(np.fft.rfft(tapered, n=n))
        freqs = np.fft.rfftfreq(n, d=1.0 / config.resample_rate_hz)
        in_band = (freqs >= self._band_hz[0]) & (freqs <= self._band_hz[1])
        if not bool(np.any(in_band)):
            return StageDecision.hold(fired=False, samples=len(values))
        band_power = spectrum[in_band]
        peak = int(np.argmax(band_power))
        rate_hz = float(freqs[in_band][peak])
        total = float(band_power.sum())
        share = float(band_power[peak] / total) if total > 0 else 0.0
        return StageDecision.emit(
            Estimate(
                ctx.t,
                ctx.t + config.horizon_s,
                rate_hz,
                "breathing",
                -1,
                share,
            ),
            rate_hz=rate_hz,
            peak_share=share,
            samples=len(values),
        )


def breathing_stages(config: ViHOTConfig) -> tuple[Stage, ...]:
    """The micro-motion sensing chain for an :class:`EstimationEngine`."""
    return (BreathingStage(config),)
