"""ViHOT configuration.

Defaults mirror the paper's evaluation defaults (Sec. 5.1): a 100 ms CSI
input window, a 0 ms prediction horizon, DTW length search over
[0.5 W, 2 W], and profile matching against the single estimated head
position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants


@dataclass(frozen=True)
class ViHOTConfig:
    """Tunable parameters of the run-time tracker.

    Attributes:
        window_s: CSI input window length ``W`` (Sec. 5.2.3 sweeps this).
        resample_rate_hz: uniform grid rate both the input window and the
            profile are resampled to before DTW (Sec. 3.4.3 Step 1).
        num_length_candidates: how many candidate match lengths ``L_n``
            to enumerate within ``length_range`` (Alg. 1 line 3).
        length_range: match-length search range as multiples of ``W``
            (the paper uses [0.5, 2]).
        profile_stride: stride, in profile samples, between candidate
            segment offsets (Alg. 1 line 5 checks every offset; a stride
            of a few samples is an accuracy-neutral speedup at 200 Hz).
        max_query_samples: before DTW, decimate the query (and the
            candidate segments, by the same factor) so the query has at
            most this many samples.  Bounds the DTW cost for large
            windows (Sec. 5.2.3 sweeps W up to 300 ms) without changing
            the time span being matched.
        dtw_band: optional Sakoe-Chiba band (profile samples); ``None``
            disables the constraint.
        stable_window_s: how long the phase must stay flat to count as
            "driver facing front" for position estimation (Sec. 3.4.1).
            Longer than any plausible mid-glance dwell, because Eq. (4)
            is only valid if stability really implies a 0-degree head.
        stable_std_rad: circular-std threshold defining "flat".
        stationary_std_rad: if the circular std of the current input
            window is below this, the head is not moving and the tracker
            re-issues its previous estimate instead of matching.  A flat
            window carries no trajectory shape, so DTW would pick an
            arbitrary profile sample with a similar phase *value* — the
            non-injectivity problem of Sec. 2.3 in its purest form; the
            physics (no phase change => no head motion) resolves it.
        steering_rate_threshold: car yaw rate [rad/s] above which the
            steering identifier attributes CSI variation to the wheel
            (Sec. 3.6.2).
        max_head_rate: plausibility bound on the head yaw rate [rad/s];
            estimates implying faster motion are rejected by the jump
            filter (Sec. 3.6: "jumpy estimation ... can be easily
            filtered out").
        continuity_margin: extra slack [rad] added to the continuity
            window ``max_head_rate * dt`` when constraining the match
            search around the previous estimate.
        escape_ratio: the unconstrained global best overrides the best
            continuity-feasible candidate when its DTW distance is below
            ``escape_ratio`` times the feasible one — the recovery hatch
            against locking onto a wrong curve branch.
        horizon_s: prediction horizon ``t_h`` (0 = track, not forecast).
        neighbor_positions: how many adjacent profiled positions (each
            side of the estimated one) to include in the match search;
            0 reproduces the paper exactly.
    """

    window_s: float = constants.DEFAULT_WINDOW_S
    resample_rate_hz: float = constants.DEFAULT_RESAMPLE_RATE_HZ
    num_length_candidates: int = 5
    length_range: tuple = (0.5, 2.0)
    profile_stride: int = 4
    max_query_samples: int = 24
    dtw_band: int = None
    stable_window_s: float = 1.2
    stable_std_rad: float = 0.06
    stationary_std_rad: float = 0.015
    steering_rate_threshold: float = 0.06
    max_head_rate: float = np.deg2rad(400.0)
    continuity_margin: float = np.deg2rad(15.0)
    escape_ratio: float = 0.6
    horizon_s: float = 0.0
    neighbor_positions: int = 0

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        if self.resample_rate_hz <= 0:
            raise ValueError("resample_rate_hz must be positive")
        if self.num_length_candidates < 1:
            raise ValueError("need at least one length candidate")
        lo, hi = self.length_range
        if not 0 < lo <= hi:
            raise ValueError(f"invalid length_range {self.length_range}")
        if self.profile_stride < 1:
            raise ValueError("profile_stride must be >= 1")
        if self.max_query_samples < 4:
            raise ValueError("max_query_samples must be >= 4")
        if self.stable_window_s <= 0 or self.stable_std_rad <= 0:
            raise ValueError("stability parameters must be positive")
        if self.stationary_std_rad < 0:
            raise ValueError("stationary_std_rad must be non-negative")
        if self.steering_rate_threshold <= 0:
            raise ValueError("steering_rate_threshold must be positive")
        if self.max_head_rate <= 0:
            raise ValueError("max_head_rate must be positive")
        if self.continuity_margin < 0:
            raise ValueError("continuity_margin must be non-negative")
        if not 0.0 < self.escape_ratio <= 1.0:
            raise ValueError("escape_ratio must be in (0, 1]")
        if self.horizon_s < 0:
            raise ValueError("horizon_s must be non-negative")
        if self.neighbor_positions < 0:
            raise ValueError("neighbor_positions must be non-negative")

    @property
    def window_samples(self) -> int:
        """CSI input window length in resampled grid samples (>= 2)."""
        return max(2, int(round(self.window_s * self.resample_rate_hz)))

    def candidate_lengths(self) -> np.ndarray:
        """Candidate match lengths [samples], deduplicated, each >= 2."""
        lo, hi = self.length_range
        w = self.window_samples
        raw = np.linspace(lo * w, hi * w, self.num_length_candidates)
        lengths = np.unique(np.maximum(2, np.round(raw).astype(int)))
        return lengths
