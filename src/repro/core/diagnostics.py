"""Tracking-health diagnostics a deployment would log and alert on.

The evaluation harness knows the ground truth; a deployed ViHOT does not.
What it *can* observe about itself: how often it produced confident CSI
matches vs fallbacks/holds, how good those matches were (DTW distances),
how fresh the head-position fix is, and how healthy the CSI sampling
was.  ``diagnose`` condenses a session into those signals plus a coarse
verdict, so a head unit can decide to suggest re-profiling (Sec. 3.3's
"update after each trip") or fall back to the camera permanently.

Estimates produced by the stage-based engine additionally carry an
:class:`~repro.core.stages.EstimationTrace`; ``diagnose`` aggregates
those into per-stage :class:`StageStats` (fire counts, terminal counts,
p50/p90 latencies) so the report says *why* a session degraded — e.g.
"the jump filter fired on a third of the estimates and every hold came
from the steering stage" — not just that it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

import numpy as np

from repro.core.stages import Estimate
from repro.core.tracker import TrackingResult
from repro.dsp.resample import largest_gap, mean_rate
from repro.dsp.series import TimeSeries
from repro.net.link import CsiStream

#: Verdict levels in increasing severity.
VERDICTS = ("healthy", "degraded", "unusable")


@dataclass(frozen=True)
class StageStats:
    """Aggregated behaviour of one engine stage over a session.

    Attributes:
        stage: the stage's name.
        evaluated: how many estimates ran this stage.
        fired: how many times the stage's condition triggered.
        terminal: how many estimates this stage produced (was the
            terminal stage for).
        p50_ms: median per-run wall time.
        p90_ms: 90th-percentile per-run wall time.
    """

    stage: str
    evaluated: int
    fired: int
    terminal: int
    p50_ms: float
    p90_ms: float

    def __str__(self) -> str:
        return (
            f"{self.stage}: ran {self.evaluated}, fired {self.fired}, "
            f"terminal {self.terminal}, p50 {self.p50_ms:.3f} ms "
            f"(p90 {self.p90_ms:.3f} ms)"
        )


def aggregate_stage_traces(
    estimates: TrackingResult | Iterable[Estimate],
) -> tuple[StageStats, ...]:
    """Fold every estimate's stage trace into per-stage counters/timings.

    Accepts a whole :class:`TrackingResult` or any iterable of
    :class:`Estimate` (e.g. a served session's rolling history — the
    export hook ``repro.serve`` metrics are built on).  Stages appear in
    first-execution order; estimates without a trace (built outside the
    engine) are skipped.  Returns an empty tuple when no estimate
    carries a trace.
    """
    if isinstance(estimates, TrackingResult):
        estimates = estimates.estimates
    order: list[str] = []
    evaluated: dict[str, int] = {}
    fired: dict[str, int] = {}
    terminal: dict[str, int] = {}
    timings: dict[str, list[float]] = {}
    for estimate in estimates:
        if estimate.trace is None:
            continue
        for trace in estimate.trace.stages:
            if trace.stage not in evaluated:
                order.append(trace.stage)
                evaluated[trace.stage] = 0
                fired[trace.stage] = 0
                terminal[trace.stage] = 0
                timings[trace.stage] = []
            evaluated[trace.stage] += 1
            fired[trace.stage] += int(trace.fired)
            timings[trace.stage].append(trace.elapsed_ms)
        terminal[estimate.trace.terminal] = (
            terminal.get(estimate.trace.terminal, 0) + 1
        )
    return tuple(
        StageStats(
            stage=name,
            evaluated=evaluated[name],
            fired=fired[name],
            terminal=terminal[name],
            p50_ms=float(np.percentile(timings[name], 50)),
            p90_ms=float(np.percentile(timings[name], 90)),
        )
        for name in order
    )


@dataclass(frozen=True)
class TrackingHealth:
    """Self-observable quality signals of one tracked session.

    Attributes:
        csi_fraction: fraction of estimates from confident CSI matches.
        hold_fraction: fraction that were held/stationary re-issues.
        fallback_fraction: fraction served by the camera fallback.
        median_dtw_distance: median winning DTW distance (matching
            residual; grows when the profile no longer fits the cabin).
        p90_dtw_distance: its 90th percentile.
        position_switches: how many times the head-position estimate
            changed (posture restlessness, or fingerprint confusion).
        sampling_rate_hz: achieved CSI packet rate.
        max_gap_ms: worst packet gap.
        verdict: "healthy" | "degraded" | "unusable".
        stage_stats: per-engine-stage fire counts and latency
            percentiles (empty when the estimates carry no traces).
    """

    csi_fraction: float
    hold_fraction: float
    fallback_fraction: float
    median_dtw_distance: float
    p90_dtw_distance: float
    position_switches: int
    sampling_rate_hz: float
    max_gap_ms: float
    verdict: str
    stage_stats: tuple[StageStats, ...] = field(default=())

    def stage(self, name: str) -> StageStats | None:
        """The aggregated stats of stage ``name`` (``None`` if absent)."""
        for stats in self.stage_stats:
            if stats.stage == name:
                return stats
        return None

    def stage_report(self) -> str:
        """Multi-line per-stage breakdown (empty string without traces)."""
        return "\n".join(str(stats) for stats in self.stage_stats)

    def __str__(self) -> str:
        return (
            f"{self.verdict}: csi {self.csi_fraction:.0%}, holds "
            f"{self.hold_fraction:.0%}, fallback {self.fallback_fraction:.0%}, "
            f"dtw median {self.median_dtw_distance:.4f} (p90 "
            f"{self.p90_dtw_distance:.4f}), {self.position_switches} position "
            f"switches, {self.sampling_rate_hz:.0f} Hz CSI "
            f"(max gap {self.max_gap_ms:.0f} ms)"
        )


@dataclass(frozen=True)
class DiagnosticThresholds:
    """Verdict boundaries (defaults from the simulated-campaign baselines)."""

    min_csi_fraction_healthy: float = 0.5
    min_csi_fraction_usable: float = 0.2
    max_dtw_median_healthy: float = 0.05
    max_dtw_median_usable: float = 0.15
    min_rate_healthy_hz: float = 300.0


def diagnose(
    result: TrackingResult,
    stream: CsiStream | None = None,
    thresholds: DiagnosticThresholds | None = None,
) -> TrackingHealth:
    """Condense a session into a :class:`TrackingHealth` report."""
    thresholds = thresholds if thresholds is not None else DiagnosticThresholds()
    if len(result) == 0:
        raise ValueError("cannot diagnose an empty tracking result")

    csi = result.mode_fraction("csi")
    holds = result.mode_fraction("held") + result.mode_fraction("stationary")
    fallback = result.mode_fraction("fallback")

    distances = np.array(
        [e.dtw_distance for e in result.estimates if np.isfinite(e.dtw_distance)]
    )
    if distances.size:
        median_d = float(np.median(distances))
        p90_d = float(np.percentile(distances, 90))
    else:
        median_d = float("nan")
        p90_d = float("nan")

    positions = [e.position_index for e in result.estimates if e.position_index >= 0]
    switches = int(np.sum(np.diff(positions) != 0)) if len(positions) > 1 else 0

    rate = 0.0
    gap_ms = 0.0
    if stream is not None and len(stream) > 1:
        series = TimeSeries(stream.times, np.zeros(len(stream)))
        rate = mean_rate(series)
        gap_ms = largest_gap(series) * 1000.0

    verdict = "healthy"
    dtw_ok = not np.isfinite(median_d) or median_d <= thresholds.max_dtw_median_healthy
    rate_ok = stream is None or rate >= thresholds.min_rate_healthy_hz
    if csi < thresholds.min_csi_fraction_healthy or not dtw_ok or not rate_ok:
        verdict = "degraded"
    dtw_usable = (
        not np.isfinite(median_d) or median_d <= thresholds.max_dtw_median_usable
    )
    if csi < thresholds.min_csi_fraction_usable or not dtw_usable:
        verdict = "unusable"

    return TrackingHealth(
        csi_fraction=csi,
        hold_fraction=holds,
        fallback_fraction=fallback,
        median_dtw_distance=median_d,
        p90_dtw_distance=p90_d,
        position_switches=switches,
        sampling_rate_hz=rate,
        max_gap_ms=gap_ms,
        verdict=verdict,
        stage_stats=aggregate_stage_traces(result),
    )


def should_reprofile(health: TrackingHealth) -> bool:
    """Heuristic for the Sec. 3.3 "update the profile after each trip".

    A degraded-or-worse verdict with a rising matching residual means
    the profiled curves no longer describe this cabin/posture.
    """
    if health.verdict == "unusable":
        return True
    return health.verdict == "degraded" and (
        not np.isfinite(health.median_dtw_distance)
        or health.median_dtw_distance > 0.05
    )
