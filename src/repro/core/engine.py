"""The shared estimation engine under every ViHOT frontend.

``EstimationEngine`` owns the per-estimate decision chain (Fig. 4, right
half) as the ordered stages of :mod:`repro.core.stages`:

    position -> steering -> stability_fix -> stationary -> match
             -> forecast -> jump_filter -> emit        (+ hold off-chain)

The engine itself is stateless across estimates — everything mutable
lives in a :class:`SessionState` — so one engine (profile + matcher +
config) can serve many concurrent sessions of the same driver.  The
frontends differ only in how they feed the context:

* ``ViHOTTracker`` walks a whole logged capture (``track_stream``),
* ``OnlineTracker`` views its ring buffers and calls ``estimate_at``,
* ``FusedTracker`` runs ``track_stream`` and fuses camera frames on top.

Every estimate the engine produces carries an
:class:`~repro.core.stages.EstimationTrace`: which stages ran, which
fired, how long each took, and the key quantities they saw.
``repro.core.diagnostics`` aggregates those traces into per-stage
counters and latency percentiles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter
from collections.abc import Callable, Sequence

from repro.core.config import ViHOTConfig
from repro.core.matching import SeriesMatcher
from repro.core.position import PositionEstimator
from repro.core.profile import CsiProfile
from repro.core.stages import (
    CONFIDENT_MODES,
    EMIT,
    HOLD,
    PASS,
    RESOLVE,
    CameraLike,
    EmitStage,
    Estimate,
    EstimationContext,
    EstimationTrace,
    ForecastStage,
    HoldStage,
    JumpFilterStage,
    MatchStage,
    PositionStage,
    SanitizeStage,
    StabilityFixStage,
    Stage,
    StageDecision,
    StageTrace,
    StationaryStage,
    SteeringStage,
)
from repro.core.steering_id import SteeringIdentifier
from repro.dsp.series import TimeSeries
from repro.net.link import CsiStream


@dataclass(frozen=True)
class BatchItem:
    """One session's inputs to :meth:`EstimationEngine.estimate_batch`.

    Exactly what :meth:`EstimationEngine.estimate_at` takes, bundled so
    a fleet of sessions can be handed to the engine in one call.

    ``engine`` names the engine whose stage chain serves this item —
    sessions whose configs differ only in fields the batch-aware stages
    never read (the forecast horizon) can then share one wave while
    per-context stages still run with their own parameters.  ``None``
    means "the engine :meth:`~EstimationEngine.estimate_batch` was
    called on", which keeps direct construction backward compatible.

    The phase series carries ``(T,)`` float64 values; a stacked wave of
    ``S`` items therefore feeds the match stage an ``(S, m)`` query
    block (see :func:`repro.dsp.dtw.stacked_dtw_distance`).
    """

    phase: TimeSeries
    imu: TimeSeries | None
    t: float
    state: SessionState
    engine: EstimationEngine | None = None


@dataclass
class BatchResult:
    """One session's outcome from :meth:`EstimationEngine.estimate_batch`.

    Attributes:
        estimate: the estimate produced (``None`` when the chain formed
            none — same meaning as :meth:`estimate_at` returning None).
        error: the contained exception when this item's chain raised;
            mirrors what the sequential path would have raised out of
            :meth:`estimate_at`, so callers apply the same fault
            handling either way.  ``estimate`` is always ``None`` when
            set, and the session state was not advanced.
    """

    estimate: Estimate | None = None
    error: Exception | None = None


@dataclass
class SessionState:
    """One tracking session's mutable state.

    Attributes:
        position: the session's head-position estimator.
        previous: the last estimate issued (any mode).
        last_confident_time: when the last *confident* estimate (a CSI
            match or a camera fallback) was issued; the continuity
            window grows with the time since.
    """

    position: PositionEstimator
    previous: Estimate | None = None
    last_confident_time: float | None = None

    def observe(self, estimate: Estimate) -> None:
        """Fold a newly issued estimate into the session state."""
        self.previous = estimate
        if estimate.mode in CONFIDENT_MODES:
            self.last_confident_time = estimate.time


class EstimationEngine:
    """The stage-based per-estimate decision chain (Secs. 3.4-3.6)."""

    def __init__(
        self,
        profile: CsiProfile,
        config: ViHOTConfig | None = None,
        camera: CameraLike | None = None,
        wall_clock: Callable[[], float] = perf_counter,
        stages: Sequence[Stage] | None = None,
    ) -> None:
        """Args:
            profile: the driver's CSI profile from the profiling stage.
            config: run-time parameters.
            camera: optional object with ``estimate_at(t) -> float`` used
                as the steering fallback (Sec. 3.6.2); without one the
                engine holds the previous estimate through steering
                events.
            wall_clock: the clock behind the per-stage ``elapsed_ms``
                trace timing — injectable so estimate *values* stay a
                pure function of the stream (``vihot lint`` VH103).
            stages: an alternative decision chain (last stage terminal).
                ``None`` builds the paper's head-tracking chain; the
                workload registry (:mod:`repro.core.workloads`) passes
                localization / micro-motion chains here so every
                frontend and the serve layer stay workload-agnostic.
        """
        config = config if config is not None else ViHOTConfig()
        self._profile = profile
        self._config = config
        self._wall_clock = wall_clock
        self._camera = camera
        self._matcher = SeriesMatcher(profile, config)
        self._steering = SteeringIdentifier(
            rate_threshold=config.steering_rate_threshold
        )
        self._default_position = len(profile) // 2
        if stages is None:
            stages = (
                PositionStage(),
                SteeringStage(self._steering, camera, config),
                StabilityFixStage(),
                StationaryStage(config),
                MatchStage(self._matcher, config),
                ForecastStage(profile, config),
                JumpFilterStage(config),
                EmitStage(config),
            )
        self._stages: tuple[Stage, ...] = tuple(stages)
        self._hold = HoldStage(config)
        self._sanitizer = SanitizeStage()

    @property
    def config(self) -> ViHOTConfig:
        return self._config

    @property
    def profile(self) -> CsiProfile:
        return self._profile

    @property
    def camera(self) -> CameraLike | None:
        """The steering-fallback camera, if any.  Engines with the same
        profile object, equal config and no camera are interchangeable —
        the batch planner's grouping precondition."""
        return self._camera

    @property
    def stage_names(self) -> tuple[str, ...]:
        """The chain's stage names in execution order (``hold`` is the
        off-chain terminal every divert routes to)."""
        return tuple(stage.name for stage in self._stages)

    @property
    def hold_stage_name(self) -> str:
        return self._hold.name

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def new_session(self) -> SessionState:
        """Fresh per-session state (position estimator + continuity)."""
        return SessionState(
            position=PositionEstimator(
                self._profile,
                window_s=self._config.stable_window_s,
                std_threshold_rad=self._config.stable_std_rad,
            )
        )

    # ------------------------------------------------------------------
    # One estimate
    # ------------------------------------------------------------------
    def estimate_at(
        self,
        phase: TimeSeries,
        imu: TimeSeries | None,
        t: float,
        state: SessionState,
    ) -> Estimate | None:
        """Run the chain once at time ``t`` and update ``state``.

        Args:
            phase: the sanitized phase history covering at least the
                stability and match windows ending at ``t``.
            imu: the phone gyro yaw-rate history (``None`` when IMU
                streaming is off).
            t: estimate time.
            state: the session's state; updated in place when an
                estimate is produced.

        Returns:
            The estimate (with its trace attached), or ``None`` when no
            estimate can be formed at ``t``.
        """
        ctx = EstimationContext(
            phase=phase,
            imu=imu,
            t=float(t),
            position=state.position,
            default_position=self._default_position,
            previous=state.previous,
            last_confident_time=state.last_confident_time,
            horizon_s=self._config.horizon_s,
        )
        estimate = self._run_chain(ctx)
        if estimate is not None:
            state.observe(estimate)
        return estimate

    def _run_chain(self, ctx: EstimationContext) -> Estimate | None:
        traces: list[StageTrace] = []

        def timed(stage: Stage) -> StageDecision:
            start = self._wall_clock()
            decision = stage.run(ctx)
            elapsed_ms = (self._wall_clock() - start) * 1e3
            traces.append(
                StageTrace(stage.name, decision.fired, elapsed_ms, decision.detail)
            )
            return decision

        estimate: Estimate | None = None
        terminal = ""
        emit_index = len(self._stages) - 1
        index = 0
        while index < len(self._stages):
            stage = self._stages[index]
            decision = timed(stage)
            if decision.action == PASS:
                index += 1
                continue
            if decision.action == RESOLVE:
                index = emit_index
                continue
            if decision.action == HOLD:
                ctx.hold_reason = stage.name
                hold_decision = timed(self._hold)
                estimate = hold_decision.estimate
                terminal = self._hold.name
                break
            assert decision.action == EMIT
            estimate = decision.estimate
            terminal = stage.name
            break
        if estimate is None:
            return None
        return replace(estimate, trace=EstimationTrace(tuple(traces), terminal))

    # ------------------------------------------------------------------
    # Fleet-batched estimation
    # ------------------------------------------------------------------
    def estimate_batch(self, items: Sequence[BatchItem]) -> list[BatchResult]:
        """Drive many sessions through the chain, one stage wave at a time.

        All contexts currently at the same stage are dispatched together
        through :meth:`Stage.run_batch`; batch-aware stages (the DTW
        match) turn the wave into one stacked kernel call, the rest loop
        per context.  Per-context decisions, stage order and state
        updates are exactly the sequential path's, so the estimates are
        bit-identical to calling :meth:`estimate_at` item by item (only
        trace *timings* differ: a stacked stage's elapsed wall time is
        split evenly across its wave, and timing is excluded from
        estimate equality).

        Error containment: a per-context stage exception becomes that
        item's :attr:`BatchResult.error` without touching its session
        state — the exception the sequential path would have raised.  A
        stacked stage call failing maps its error to every context in
        the wave; that failure is systematic, because a batch-aware
        stage only ever sees contexts sharing profile, config and query
        shape (grouping is the serve-layer planner's contract).

        Heterogeneous items: an item carrying its own
        :attr:`BatchItem.engine` runs the per-context stages (and the
        hold terminal) through *that* engine, so sessions whose configs
        differ only in the forecast horizon share one wave without
        losing their own horizon.  Member engines must expose the same
        chain (equal :attr:`stage_names`) as this one, and batch-aware
        waves still dispatch through this engine's stage — legal because
        a batch-aware stage never reads the config fields grouping
        allows to differ (the planner's contract).
        """
        n = len(items)
        results = [BatchResult() for _ in range(n)]
        engines = [
            item.engine if item.engine is not None else self for item in items
        ]
        ctxs = [
            EstimationContext(
                phase=item.phase,
                imu=item.imu,
                t=float(item.t),
                position=item.state.position,
                default_position=engines[i]._default_position,
                previous=item.state.previous,
                last_confident_time=item.state.last_confident_time,
                horizon_s=engines[i]._config.horizon_s,
            )
            for i, item in enumerate(items)
        ]
        traces: list[list[StageTrace]] = [[] for _ in range(n)]
        terminals = [""] * n
        estimates: list[Estimate | None] = [None] * n
        emit_index = len(self._stages) - 1
        stage_index = [0] * n
        done = [False] * n

        def finish_hold(i: int) -> None:
            # Mirror _run_chain's HOLD branch for one context, through
            # the item's own engine (its hold carries its own horizon).
            hold = engines[i]._hold
            start = self._wall_clock()
            try:
                hold_decision = hold.run(ctxs[i])
            except Exception as exc:
                results[i].error = exc
                done[i] = True
                return
            elapsed_ms = (self._wall_clock() - start) * 1e3
            traces[i].append(
                StageTrace(
                    hold.name,
                    hold_decision.fired,
                    elapsed_ms,
                    hold_decision.detail,
                )
            )
            estimates[i] = hold_decision.estimate
            terminals[i] = hold.name
            done[i] = True

        def apply(i: int, stage: Stage, si: int, decision: StageDecision) -> None:
            if decision.action == PASS:
                stage_index[i] = si + 1
            elif decision.action == RESOLVE:
                stage_index[i] = emit_index
            elif decision.action == HOLD:
                ctxs[i].hold_reason = stage.name
                finish_hold(i)
            else:
                assert decision.action == EMIT
                estimates[i] = decision.estimate
                terminals[i] = stage.name
                done[i] = True

        # Stage indices only ever move forward (PASS: +1, RESOLVE: jump
        # to emit), so one sweep over the chain visits every context at
        # every stage it would have reached sequentially.
        for si, stage in enumerate(self._stages):
            wave = [i for i in range(n) if not done[i] and stage_index[i] == si]
            if not wave:
                continue
            if stage.batch_aware and len(wave) > 1:
                start = self._wall_clock()
                try:
                    decisions = stage.run_batch([ctxs[i] for i in wave])
                except Exception as exc:
                    for i in wave:
                        results[i].error = exc
                        done[i] = True
                    continue
                elapsed_ms = (self._wall_clock() - start) * 1e3 / len(wave)
                for i, decision in zip(wave, decisions):
                    traces[i].append(
                        StageTrace(
                            stage.name, decision.fired, elapsed_ms, decision.detail
                        )
                    )
                    apply(i, stage, si, decision)
            else:
                for i in wave:
                    own_stage = engines[i]._stages[si]
                    start = self._wall_clock()
                    try:
                        decision = own_stage.run(ctxs[i])
                    except Exception as exc:
                        results[i].error = exc
                        done[i] = True
                        continue
                    elapsed_ms = (self._wall_clock() - start) * 1e3
                    traces[i].append(
                        StageTrace(
                            own_stage.name,
                            decision.fired,
                            elapsed_ms,
                            decision.detail,
                        )
                    )
                    apply(i, own_stage, si, decision)

        for i, item in enumerate(items):
            if results[i].error is not None:
                continue
            estimate = estimates[i]
            if estimate is None:
                continue
            estimate = replace(
                estimate, trace=EstimationTrace(tuple(traces[i]), terminals[i])
            )
            item.state.observe(estimate)
            results[i].estimate = estimate
        return results

    # ------------------------------------------------------------------
    # Whole-capture sessions (the batch frontends)
    # ------------------------------------------------------------------
    def _capture_context(self, stream: CsiStream) -> EstimationContext:
        """A context carrying a raw capture for the sanitize stage."""
        return EstimationContext(
            phase=TimeSeries.empty(),
            imu=stream.imu,
            t=0.0,
            position=self.new_session().position,
            default_position=self._default_position,
            horizon_s=self._config.horizon_s,
            raw_times=stream.times,
            raw_csi=stream.csi,
        )

    def _track_phase(
        self,
        phase: TimeSeries,
        imu: TimeSeries | None,
        estimate_stride_s: float,
        t_start: float | None,
    ) -> list[Estimate]:
        """The estimate loop shared by :meth:`track_stream` and
        :meth:`track_streams` (one code path, so the batched frontend
        cannot drift from the scalar one)."""
        if estimate_stride_s <= 0:
            raise ValueError("estimate_stride_s must be positive")
        config = self._config
        state = self.new_session()
        if t_start is None:
            t_start = phase.start + max(config.window_s, config.stable_window_s)
        estimates: list[Estimate] = []
        t = float(t_start)
        while t <= phase.end + 1e-9:
            estimate = self.estimate_at(phase, imu, t, state)
            if estimate is not None:
                estimates.append(estimate)
            t += estimate_stride_s
        return estimates

    def track_stream(
        self,
        stream: CsiStream,
        estimate_stride_s: float = 0.05,
        t_start: float | None = None,
    ) -> list[Estimate]:
        """Track a whole capture session through a fresh session state.

        Args:
            stream: the CSI capture (with its IMU side-channel, if any).
            estimate_stride_s: spacing between tracker outputs.
            t_start: first estimate time; defaults to one window plus one
                stability window after the capture start (Alg. 1 line 1's
                setup time).
        """
        ctx = self._capture_context(stream)
        self._sanitizer.run(ctx)
        return self._track_phase(ctx.phase, stream.imu, estimate_stride_s, t_start)

    def track_streams(
        self,
        streams: Sequence[CsiStream],
        estimate_stride_s: float = 0.05,
        t_start: float | None = None,
    ) -> list[list[Estimate]]:
        """Track many captures, sanitizing them in stacked kernel calls.

        Same-shape captures go through one
        :meth:`~repro.core.stages.SanitizeStage.run_batch` pass (the
        stacked ``sanitize_streams`` kernel); the per-capture estimate
        loop then runs exactly as :meth:`track_stream`'s, so the result
        is bit-identical to ``[self.track_stream(s) for s in streams]``.
        """
        ctxs = [self._capture_context(stream) for stream in streams]
        self._sanitizer.run_batch(ctxs)
        return [
            self._track_phase(ctx.phase, stream.imu, estimate_stride_s, t_start)
            for ctx, stream in zip(ctxs, streams)
        ]
