"""Head-orientation forecasting (Sec. 3.4.6, Eq. 6).

Once the matcher has located ``Phi*_m`` in the profile, the profile tells
us how the motion *continued* after that point.  The speed ratio
``L_m / W`` converts run-time seconds into profile samples:

    theta_hat(t + t_h) = Theta*_c( tau_e + t_h * L_m / W )

i.e. step ``t_h * L_m / W`` seconds forward in the profile from the match
end and read the orientation there.  The profile's own future stands in
for the driver's — accurate for short horizons, drifting as ``t_h`` grows
(Fig. 10 quantifies exactly that decay).
"""

from __future__ import annotations

from repro.core.matching import MatchResult
from repro.core.profile import CsiProfile


def forecast_orientation(
    profile: CsiProfile,
    match: MatchResult,
    horizon_s: float,
) -> float:
    """Predict the head yaw ``horizon_s`` into the future (Eq. 6).

    With ``horizon_s == 0`` this reduces exactly to the tracking estimate
    (the match end's orientation).  Horizons that run past the end of the
    profiled series clamp to its last sample — the profile has no further
    future to offer.

    :domain return: rad
    """
    if horizon_s < 0:
        raise ValueError(f"horizon_s must be non-negative, got {horizon_s}")
    position = profile[match.position_index]
    # t_h seconds of run-time correspond to t_h * speed_ratio seconds of
    # profile time, i.e. that many grid samples scaled by the rate.
    step = horizon_s * match.speed_ratio * position.rate_hz
    index = match.end_index + int(round(step))
    index = min(index, len(position) - 1)
    return float(position.orientations[index])
