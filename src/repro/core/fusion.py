"""Camera + CSI sensor fusion — the Sec. 7 "Combining with cameras" sketch.

The paper's discussion proposes a hybrid that "uses sensor fusion and
energy-aware scheduling to make the most of both the CSI-based and
camera-based solutions".  This module implements the natural version of
that sketch:

* the camera runs at a configurable duty cycle (energy-aware: frames cost
  power; CSI packets are nearly free on the receiver side);
* whenever a camera frame is available near an estimate time, the two
  estimates are fused with inverse-variance weights;
* between frames, ViHOT's 400-500 Hz CSI estimates carry the track alone.

``FusedTracker`` is the third frontend over the shared
:class:`repro.core.engine.EstimationEngine` (with the camera wired in as
the steering fallback); the fusion weights come from each sensor's error
model: the camera's per-frame std (light/blur dependent) and a fixed CSI
tracking std.  Fused estimates keep their engine stage trace.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.engine import EstimationEngine
from repro.core.profile import CsiProfile
from repro.core.tracker import TrackingResult
from repro.net.link import CsiStream
from repro.sensors.camera import CameraTracker


@dataclass(frozen=True)
class FusionConfig:
    """Fusion behaviour.

    Attributes:
        camera_duty_cycle: fraction of camera frames actually captured
            (energy-aware scheduling; 1.0 = camera always on).
        camera_std_rad: assumed camera per-frame error std used for the
            inverse-variance weight.
        csi_std_rad: assumed ViHOT estimate error std.
        max_frame_age_s: a camera frame older than this is stale and is
            not fused (the head has moved on).
    """

    camera_duty_cycle: float = 0.3
    camera_std_rad: float = np.deg2rad(3.0)
    csi_std_rad: float = np.deg2rad(4.0)
    max_frame_age_s: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.camera_duty_cycle <= 1.0:
            raise ValueError("camera_duty_cycle must be in [0, 1]")
        if self.camera_std_rad <= 0 or self.csi_std_rad <= 0:
            raise ValueError("sensor stds must be positive")
        if self.max_frame_age_s <= 0:
            raise ValueError("max_frame_age_s must be positive")


class FusedTracker:
    """ViHOT plus a duty-cycled camera, fused by inverse variance."""

    def __init__(
        self,
        profile: CsiProfile,
        camera: CameraTracker,
        vihot_config: ViHOTConfig | None = None,
        fusion_config: FusionConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._engine = EstimationEngine(profile, vihot_config, camera=camera)
        self._camera = camera
        self._config = fusion_config if fusion_config is not None else FusionConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def config(self) -> FusionConfig:
        return self._config

    @property
    def engine(self) -> EstimationEngine:
        """The shared stage-based estimation engine."""
        return self._engine

    def process(
        self,
        stream: CsiStream,
        estimate_stride_s: float = 0.05,
    ) -> TrackingResult:
        """Track a session, fusing duty-cycled camera frames into CSI."""
        csi_result = TrackingResult(
            self._engine.track_stream(stream, estimate_stride_s=estimate_stride_s)
        )
        if len(csi_result) == 0:
            return csi_result

        t_start = float(csi_result.times[0]) - 1.0
        t_end = float(csi_result.times[-1]) + 0.1
        frames = self._camera.yaw_stream(max(0.0, t_start), t_end)
        # Energy-aware scheduling: drop frames down to the duty cycle.
        keep = self._rng.random(len(frames)) < self._config.camera_duty_cycle
        frame_times = frames.times[keep]
        frame_values = np.asarray(frames.values)[keep]

        weight_csi = 1.0 / self._config.csi_std_rad**2
        weight_cam = 1.0 / self._config.camera_std_rad**2

        fused = TrackingResult()
        for estimate in csi_result.estimates:
            k = int(np.searchsorted(frame_times, estimate.time, side="right")) - 1
            if k >= 0 and estimate.time - frame_times[k] <= self._config.max_frame_age_s:
                orientation = (
                    weight_csi * estimate.orientation + weight_cam * frame_values[k]
                ) / (weight_csi + weight_cam)
                estimate = replace(
                    estimate, orientation=float(orientation), mode="fused"
                )
            fused.estimates.append(estimate)
        return fused

    def camera_frames_used(self, duration_s: float) -> float:
        """Expected camera frames per second under the duty cycle."""
        return self._camera.config.frame_rate_hz * self._config.camera_duty_cycle
