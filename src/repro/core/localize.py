"""Passenger / rear-seat occupant localization from the cabin CSI link.

CarFi-style workload (see PAPERS.md): the same antenna-phase-difference
stream the head tracker consumes also separates *where in the cabin* the
occupant is.  Each profiled position's stable-front fingerprint
``phi0_c(i)`` (:attr:`repro.core.profile.PositionProfile.phi0`) is a
seat anchor — the phase level the link settles to when the occupant sits
at that position — so localization is nearest-fingerprint matching of
the current window's circular mean phase, with a flatness gate deciding
whether anyone is there to localize at all.

The chain is two stages behind the standard
:class:`~repro.core.stages.Stage` interface, so
:class:`~repro.core.engine.EstimationEngine` (and therefore the whole
serve layer) runs it unmodified:

    occupancy -> localize

Output convention: ``mode="localized"`` with ``position_index`` the
winning seat and ``orientation`` the window's circular mean phase [rad]
(the raw evidence, useful for diagnostics); ``mode="vacant"`` when the
flatness gate says the seat region is empty.  Neither stage implements
``run_batch`` — the default per-context loop applies.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.profile import CsiProfile
from repro.core.stages import (
    Estimate,
    EstimationContext,
    Stage,
    StageDecision,
)
from repro.dsp.phase import circular_mean, phase_std, wrap_phase
from repro.dsp.series import TimeSeries

__all__ = [
    "OccupancyGateStage",
    "SeatMatchStage",
    "localization_stages",
    "VACANT_STD_RAD",
]

#: Below this wrapped-phase std the window is indistinguishable from an
#: empty cabin: even a motionless occupant's breathing and posture sway
#: modulate the path more than receiver noise does.
VACANT_STD_RAD = 0.002


def _window(ctx: EstimationContext, window_s: float) -> TimeSeries:
    return ctx.phase.slice(ctx.t - window_s, ctx.t)


class OccupancyGateStage(Stage):
    """Decide whether anyone occupies the monitored seat region.

    A near-noise-floor window means the reflected path is static at the
    receiver's noise level — no occupant.  That is a terminal answer
    (``mode="vacant"``), not a hold: downstream consumers distinguish
    "nobody there" from "cannot tell right now".
    """

    name = "occupancy"

    def __init__(self, config: ViHOTConfig) -> None:
        self._config = config

    def run(self, ctx: EstimationContext) -> StageDecision:
        config = self._config
        window = _window(ctx, config.window_s)
        if len(window) < 5 or window.duration < 0.5 * config.window_s:
            return StageDecision.hold(fired=False, samples=len(window))
        flatness = phase_std(wrap_phase(np.asarray(window.values)))
        if flatness < VACANT_STD_RAD:
            return StageDecision.emit(
                Estimate(ctx.t, ctx.t + config.horizon_s, float("nan"), "vacant"),
                flatness=flatness,
            )
        return StageDecision.passthrough(fired=False, flatness=flatness)


class SeatMatchStage(Stage):
    """Locate the occupant as the nearest seat fingerprint (terminal).

    The window's circular mean phase is compared against every profiled
    position's ``phi0`` on the circle; the closest one wins.  The
    residual distance [rad] rides in ``dtw_distance`` so callers can
    threshold on localization confidence the way they threshold on match
    distance for head tracking.
    """

    name = "localize"

    def __init__(self, profile: CsiProfile, config: ViHOTConfig) -> None:
        if len(profile) == 0:
            raise ValueError("cannot localize against an empty profile")
        self._fingerprints = np.asarray(
            profile.phi0_fingerprints(), dtype=np.float64
        )
        self._config = config

    def run(self, ctx: EstimationContext) -> StageDecision:
        config = self._config
        window = _window(ctx, config.window_s)
        if len(window) < 5 or window.duration < 0.5 * config.window_s:
            return StageDecision.hold(fired=False, samples=len(window))
        centroid = float(circular_mean(np.asarray(window.values)))
        residuals = np.abs(wrap_phase(centroid - self._fingerprints))
        seat = int(np.argmin(residuals))
        residual = float(residuals[seat])
        return StageDecision.emit(
            Estimate(
                ctx.t,
                ctx.t + config.horizon_s,
                centroid,
                "localized",
                seat,
                residual,
            ),
            seat=seat,
            residual_rad=residual,
        )


def localization_stages(
    profile: CsiProfile, config: ViHOTConfig
) -> tuple[Stage, ...]:
    """The occupant-localization chain for an :class:`EstimationEngine`."""
    return (OccupancyGateStage(config), SeatMatchStage(profile, config))
