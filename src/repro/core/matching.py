"""DTW series matching — Algorithm 1 of the paper (Secs. 3.4.3-3.4.5).

The instantaneous phase cannot be inverted to an orientation (the mapping
is non-injective), so ViHOT matches the whole windowed phase series
``Phi_r = {phi_r(t') : t' in [t - W, t]}`` against the profile series
``Phi*_c`` and reads the orientation off the best match's end point:

1. enumerate candidate match lengths ``L_n in [0.5 W, 2 W]`` (the head may
   have turned faster or slower than during profiling);
2. for each length, DTW-match ``Phi_r`` against every profile segment of
   that length (vectorised in one ``batched_dtw_distance`` call);
3. take the globally best segment ``Phi*_m``; its last sample's
   ground-truth orientation is the estimate, and ``L_m / W`` is the
   profiling-to-runtime speed ratio the forecaster reuses (Sec. 3.4.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
import math

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.profile import CsiProfile, PositionProfile
from repro.dsp.dtw import batched_dtw_distance, stacked_dtw_distance
from repro.dsp.phase import wrap_phase
from repro.dsp.windows import sliding_windows


@dataclass(frozen=True)
class MatchResult:
    """Outcome of one window match.

    Attributes:
        orientation: estimated head yaw [rad] (``Theta*_m``'s last sample).
        distance: normalised DTW distance of the winning segment.
        position_index: which profiled position the match came from.
        start_index: offset of ``Phi*_m`` in that position's series.
        length: match length ``L_m`` [samples].
        speed_ratio: ``L_m / W`` — profiling-time over run-time speed.
    """

    orientation: float
    distance: float
    position_index: int
    start_index: int
    length: int
    speed_ratio: float

    @property
    def end_index(self) -> int:
        """Index of the match's final sample in the profile series."""
        return self.start_index + self.length - 1


class SeriesMatcher:
    """Matches CSI input windows against a driver's profile."""

    def __init__(
        self, profile: CsiProfile, config: ViHOTConfig | None = None
    ) -> None:
        if len(profile) == 0:
            raise ValueError("cannot match against an empty profile")
        self._profile = profile
        self._config = config if config is not None else ViHOTConfig()

    @property
    def config(self) -> ViHOTConfig:
        return self._config

    def _match_position(
        self,
        query: np.ndarray,
        position: PositionProfile,
        position_index: int,
        center_orientation: float | None,
        tolerance_rad: float,
    ):
        """Best matches of ``query`` within one position's profile series.

        Returns ``(best_global, best_feasible)`` where ``best_feasible``
        honours the continuity constraint (``None`` when nothing is
        feasible) and ``best_global`` is the unconstrained winner.

        :domain query: wrapped_rad
        :domain center_orientation: rad
        :domain tolerance_rad: rad
        :shape query: (m,)
        """
        config = self._config
        phases = position.phases
        # Long windows are decimated (query and candidates alike) so DTW
        # cost stays bounded; the matched time span is unchanged.
        decimation = max(1, -(-len(query) // config.max_query_samples))
        decimated_query = query[::decimation]
        best_global = None
        best_feasible = None
        for length in config.candidate_lengths():
            if length > len(phases):
                continue
            candidates = sliding_windows(phases, int(length), config.profile_stride)
            ends = (
                np.arange(len(candidates)) * config.profile_stride + int(length) - 1
            )
            distances = batched_dtw_distance(
                decimated_query,
                candidates[:, ::decimation],
                band=config.dtw_band,
                metric="circular",
            )

            def make_result(k: int) -> MatchResult:
                end = int(ends[k])
                return MatchResult(
                    orientation=float(position.orientations[end]),
                    distance=float(distances[k]),
                    position_index=position_index,
                    start_index=end - int(length) + 1,
                    length=int(length),
                    speed_ratio=float(length) / len(query),
                )

            k = int(np.argmin(distances))
            if best_global is None or distances[k] < best_global.distance:
                best_global = make_result(k)
            if center_orientation is not None:
                feasible = (
                    np.abs(position.orientations[ends] - center_orientation)
                    <= tolerance_rad
                )
                if np.any(feasible):
                    masked = np.where(feasible, distances, np.inf)
                    k = int(np.argmin(masked))
                    if best_feasible is None or masked[k] < best_feasible.distance:
                        best_feasible = make_result(k)
        return best_global, best_feasible

    def match(
        self,
        query: np.ndarray,
        position_index: int,
        center_orientation: float | None = None,
        tolerance_rad: float = math.inf,
    ) -> MatchResult:
        """Match a resampled, wrapped phase window (Alg. 1).

        Args:
            query: the CSI input window on the uniform grid, wrapped
                phases, shape ``(W_samples,)``.
            position_index: the estimated head position ``i*``; with
                ``config.neighbor_positions > 0`` adjacent positions
                compete too and the lowest DTW distance wins.
            center_orientation: optional continuity prior — candidates
                ending within ``tolerance_rad`` of this yaw are
                preferred.  The head moves continuously, so the tracker
                passes its previous estimate here; this is the
                search-space form of the paper's jump filter, resolving
                same-phase-different-orientation ambiguity instead of
                merely rejecting its fallout.  To avoid locking onto a
                wrong branch forever, the unconstrained global best wins
                whenever its distance beats the best feasible candidate
                by more than ``config.escape_ratio``.

        :domain query: rad
        :domain center_orientation: rad
        :domain tolerance_rad: rad
        :shape query: (m,)
        """
        query = wrap_phase(np.asarray(query, dtype=np.float64))
        if query.ndim != 1 or len(query) < 2:
            raise ValueError("query must be a 1-D array with >= 2 samples")
        if not 0 <= position_index < len(self._profile):
            raise ValueError(
                f"position_index {position_index} out of range "
                f"[0, {len(self._profile)})"
            )
        lo = max(0, position_index - self._config.neighbor_positions)
        hi = min(len(self._profile), position_index + self._config.neighbor_positions + 1)
        globals_, feasibles = [], []
        for i in range(lo, hi):
            best_global, best_feasible = self._match_position(
                query, self._profile[i], i, center_orientation, tolerance_rad
            )
            if best_global is not None:
                globals_.append(best_global)
            if best_feasible is not None:
                feasibles.append(best_feasible)
        if not globals_:
            raise ValueError(
                "every profiled position is shorter than every candidate "
                "match length"
            )
        best_global = min(globals_, key=lambda r: r.distance)
        if not feasibles:
            return best_global
        best_feasible = min(feasibles, key=lambda r: r.distance)
        if best_global.distance < self._config.escape_ratio * best_feasible.distance:
            return best_global
        return best_feasible

    # ------------------------------------------------------------------
    # Fleet-batched matching
    # ------------------------------------------------------------------
    def _match_position_many(
        self,
        queries: np.ndarray,
        position: PositionProfile,
        position_index: int,
        centers: list[float | None],
        tolerances: list[float],
    ) -> tuple[list[MatchResult | None], list[MatchResult | None]]:
        """Stacked :meth:`_match_position`: ``S`` same-length queries
        against one position's profile series in one DTW pass per
        candidate length.

        ``queries`` has shape ``(S, m)`` (wrapped phases).  Returns the
        per-query ``(best_global, best_feasible)`` lists.  Bit-identical
        to looping :meth:`_match_position` because
        :func:`stacked_dtw_distance` row ``s`` is pinned identical to
        the per-query :func:`batched_dtw_distance` call and the
        argmin/feasibility logic is reproduced verbatim.

        :shape queries: (S, m)
        """
        config = self._config
        phases = position.phases
        n_stack, m = queries.shape
        decimation = max(1, -(-m // config.max_query_samples))
        decimated = queries[:, ::decimation]
        best_globals: list[MatchResult | None] = [None] * n_stack
        best_feasibles: list[MatchResult | None] = [None] * n_stack
        for length in config.candidate_lengths():
            if length > len(phases):
                continue
            candidates = sliding_windows(phases, int(length), config.profile_stride)
            ends = (
                np.arange(len(candidates)) * config.profile_stride + int(length) - 1
            )
            distances = stacked_dtw_distance(
                decimated,
                candidates[:, ::decimation],
                band=config.dtw_band,
                metric="circular",
            )
            for s in range(n_stack):
                row = distances[s]

                def make_result(k: int) -> MatchResult:
                    end = int(ends[k])
                    return MatchResult(
                        orientation=float(position.orientations[end]),
                        distance=float(row[k]),
                        position_index=position_index,
                        start_index=end - int(length) + 1,
                        length=int(length),
                        speed_ratio=float(length) / m,
                    )

                k = int(np.argmin(row))
                best_global = best_globals[s]
                if best_global is None or row[k] < best_global.distance:
                    best_globals[s] = make_result(k)
                center = centers[s]
                if center is not None:
                    feasible = (
                        np.abs(position.orientations[ends] - center)
                        <= tolerances[s]
                    )
                    if np.any(feasible):
                        masked = np.where(feasible, row, np.inf)
                        k = int(np.argmin(masked))
                        best_feasible = best_feasibles[s]
                        if best_feasible is None or masked[k] < best_feasible.distance:
                            best_feasibles[s] = make_result(k)
        return best_globals, best_feasibles

    def match_many(
        self,
        queries: Sequence[np.ndarray],
        position_indices: Sequence[int],
        centers: Sequence[float | None] | None = None,
        tolerances: Sequence[float] | None = None,
    ) -> list[MatchResult]:
        """Batched :meth:`match` over many sessions' windows (Alg. 1 × S).

        Queries are grouped by ``(length, position_index)``; each
        group's DTW work runs as one stacked anti-diagonal DP per
        candidate length (:func:`stacked_dtw_distance`), which is the
        fleet-batching win — the selection logic stays per query, so
        entry ``i`` is bit-identical to
        ``match(queries[i], position_indices[i], centers[i],
        tolerances[i])``.

        Validation errors raise exactly as :meth:`match` would.  Within
        a group an exception is systematic (all members share the
        profile, config and query shape), so callers may attribute a
        raised error to every query of the batch.

        :domain queries: rad
        :domain centers: rad
        :domain tolerances: rad
        """
        n = len(queries)
        if centers is None:
            centers = [None] * n
        if tolerances is None:
            tolerances = [math.inf] * n
        if not (len(position_indices) == len(centers) == len(tolerances) == n):
            raise ValueError(
                "queries, position_indices, centers and tolerances must "
                "have equal lengths"
            )
        wrapped: list[np.ndarray] = []
        for query in queries:
            q = wrap_phase(np.asarray(query, dtype=np.float64))
            if q.ndim != 1 or len(q) < 2:
                raise ValueError("query must be a 1-D array with >= 2 samples")
            wrapped.append(q)
        for position_index in position_indices:
            if not 0 <= position_index < len(self._profile):
                raise ValueError(
                    f"position_index {position_index} out of range "
                    f"[0, {len(self._profile)})"
                )
        results: list[MatchResult | None] = [None] * n
        groups: dict[tuple[int, int], list[int]] = {}
        for i in range(n):
            key = (len(wrapped[i]), int(position_indices[i]))
            groups.setdefault(key, []).append(i)
        for (_, position_index), members in groups.items():
            stacked = np.stack([wrapped[i] for i in members])
            lo = max(0, position_index - self._config.neighbor_positions)
            hi = min(
                len(self._profile),
                position_index + self._config.neighbor_positions + 1,
            )
            group_centers = [centers[i] for i in members]
            group_tolerances = [float(tolerances[i]) for i in members]
            globals_per: list[list[MatchResult]] = [[] for _ in members]
            feasibles_per: list[list[MatchResult]] = [[] for _ in members]
            for pos in range(lo, hi):
                bg, bf = self._match_position_many(
                    stacked,
                    self._profile[pos],
                    pos,
                    group_centers,
                    group_tolerances,
                )
                for s in range(len(members)):
                    if bg[s] is not None:
                        globals_per[s].append(bg[s])
                    if bf[s] is not None:
                        feasibles_per[s].append(bf[s])
            for s, i in enumerate(members):
                if not globals_per[s]:
                    raise ValueError(
                        "every profiled position is shorter than every "
                        "candidate match length"
                    )
                best_global = min(globals_per[s], key=lambda r: r.distance)
                if not feasibles_per[s]:
                    results[i] = best_global
                    continue
                best_feasible = min(feasibles_per[s], key=lambda r: r.distance)
                if (
                    best_global.distance
                    < self._config.escape_ratio * best_feasible.distance
                ):
                    results[i] = best_global
                else:
                    results[i] = best_feasible
        final: list[MatchResult] = []
        for i, result in enumerate(results):
            if result is None:  # pragma: no cover - every index is grouped
                raise AssertionError(f"query {i} was never matched")
            final.append(result)
        return final
