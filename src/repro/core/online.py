"""Online (streaming) tracking — the API a real deployment drives.

:class:`repro.core.tracker.ViHOTTracker` processes a whole logged capture
at once, which is right for evaluation but not for a head unit receiving
one CSI report per WiFi packet.  ``OnlineTracker`` exposes the push-style
interface:

    tracker = OnlineTracker(profile)
    for record in nic:                      # one CsiRecord per packet
        tracker.push_csi(record.time, record.csi)
        ...
    estimate = tracker.estimate()           # whenever the HUD needs one

State is identical to the batch tracker's (same position estimator, same
matcher, same stationary/continuity logic); the difference is purely that
samples arrive incrementally and old ones are evicted from a bounded
ring buffer.  ``tests/core/test_online.py`` pins the equivalence against
the batch tracker.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.profile import CsiProfile
from repro.core.sanitize import antenna_phase_difference
from repro.core.tracker import Estimate, ViHOTTracker
from repro.dsp.phase import wrap_phase
from repro.dsp.series import TimeSeries
from repro.net.link import CsiStream


class OnlineTracker:
    """Incremental ViHOT: push CSI/IMU samples, pull estimates.

    Args:
        profile: the driver's CSI profile.
        config: run-time parameters (shared with the batch tracker).
        camera: optional steering fallback with ``estimate_at(t)``.
        buffer_s: how much phase history to retain.  Must cover the
            stability window plus the largest match window; the default
            keeps a comfortable margin.
    """

    def __init__(
        self,
        profile: CsiProfile,
        config: ViHOTConfig = ViHOTConfig(),
        camera=None,
        buffer_s: float = 10.0,
    ) -> None:
        needed = max(config.stable_window_s, config.window_s) + 1.0
        if buffer_s < needed:
            raise ValueError(
                f"buffer_s={buffer_s} too small; need >= {needed:.1f}s for "
                "the configured stability/match windows"
            )
        self._batch = ViHOTTracker(profile, config, camera=camera)
        self._config = config
        self._buffer_s = buffer_s

        self._phase_times: List[float] = []
        self._phase_values: List[float] = []
        self._last_wrapped: Optional[float] = None
        self._unwrap_offset = 0.0

        self._imu_times: List[float] = []
        self._imu_values: List[float] = []

        self._position = None  # created lazily on first estimate
        self._previous: Optional[Estimate] = None
        self._last_confident: Optional[float] = None

    @property
    def config(self) -> ViHOTConfig:
        return self._config

    @property
    def buffered_seconds(self) -> float:
        if len(self._phase_times) < 2:
            return 0.0
        return self._phase_times[-1] - self._phase_times[0]

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def push_csi(self, time: float, csi: np.ndarray) -> None:
        """Ingest one packet's CSI matrix, shape ``(n_rx, F)``."""
        csi = np.asarray(csi)
        if csi.ndim != 2:
            raise ValueError(f"per-packet CSI must be (n_rx, F), got {csi.shape}")
        if self._phase_times and time <= self._phase_times[-1]:
            # Reordered/duplicate packet: the NIC timestamps are our
            # clock, so a non-increasing arrival is dropped.
            return
        wrapped = float(antenna_phase_difference(csi[None, :, :])[0])
        # Incremental unwrap against the previous sample.
        if self._last_wrapped is not None:
            delta = wrapped - self._last_wrapped
            if delta > np.pi:
                self._unwrap_offset -= 2.0 * np.pi
            elif delta < -np.pi:
                self._unwrap_offset += 2.0 * np.pi
        self._last_wrapped = wrapped
        self._phase_times.append(float(time))
        self._phase_values.append(wrapped + self._unwrap_offset)
        self._evict(time)

    def push_imu(self, time: float, yaw_rate: float) -> None:
        """Ingest one phone gyro reading."""
        if self._imu_times and time <= self._imu_times[-1]:
            return
        self._imu_times.append(float(time))
        self._imu_values.append(float(yaw_rate))

    def _evict(self, now: float) -> None:
        horizon = now - self._buffer_s
        drop = 0
        while drop < len(self._phase_times) and self._phase_times[drop] < horizon:
            drop += 1
        if drop:
            del self._phase_times[:drop]
            del self._phase_values[:drop]
        drop = 0
        while drop < len(self._imu_times) and self._imu_times[drop] < horizon:
            drop += 1
        if drop:
            del self._imu_times[:drop]
            del self._imu_values[:drop]

    # ------------------------------------------------------------------
    # Estimate
    # ------------------------------------------------------------------
    def ready(self) -> bool:
        """True once enough history has accumulated to estimate."""
        warmup = max(self._config.window_s, self._config.stable_window_s)
        return self.buffered_seconds >= warmup

    def estimate(self, t: Optional[float] = None) -> Optional[Estimate]:
        """Estimate the head orientation at ``t`` (default: latest sample).

        Returns ``None`` until :meth:`ready` (Alg. 1's setup time) or if
        no estimate can be formed at ``t``.
        """
        if not self._phase_times:
            return None
        if t is None:
            t = self._phase_times[-1]
        if not self.ready():
            return None

        from repro.core.position import PositionEstimator

        if self._position is None:
            self._position = PositionEstimator(
                self._batch.profile,
                window_s=self._config.stable_window_s,
                std_threshold_rad=self._config.stable_std_rad,
            )

        phase = TimeSeries(
            np.asarray(self._phase_times), np.asarray(self._phase_values)
        )
        imu = None
        if self._imu_times:
            imu = TimeSeries(np.asarray(self._imu_times), np.asarray(self._imu_values))
        stream = _StreamView(imu)

        estimate = self._batch._estimate_once(
            phase,
            stream,
            self._position,
            float(t),
            len(self._batch.profile) // 2,
            self._previous,
            self._last_confident,
        )
        if estimate is not None:
            self._previous = estimate
            if estimate.mode in ("csi", "fallback"):
                self._last_confident = estimate.time
        return estimate

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def feed(self, stream: CsiStream, estimate_stride_s: float = 0.05):
        """Replay a logged capture through the online path.

        Yields estimates as they become available — the streaming
        equivalent of ``ViHOTTracker.process``.
        """
        if estimate_stride_s <= 0:
            raise ValueError("estimate_stride_s must be positive")
        imu_iter = 0
        imu = stream.imu
        next_estimate = None
        for k in range(len(stream)):
            t = float(stream.times[k])
            if imu is not None:
                while imu_iter < len(imu) and imu.times[imu_iter] <= t:
                    self.push_imu(
                        float(imu.times[imu_iter]),
                        float(np.asarray(imu.values)[imu_iter]),
                    )
                    imu_iter += 1
            self.push_csi(t, stream.csi[k])
            if next_estimate is None and self.ready():
                next_estimate = t
            if next_estimate is not None and t >= next_estimate:
                estimate = self.estimate(t)
                next_estimate += estimate_stride_s
                if estimate is not None:
                    yield estimate


class _StreamView:
    """Duck-typed stand-in for CsiStream inside _estimate_once."""

    def __init__(self, imu: Optional[TimeSeries]) -> None:
        self.imu = imu
