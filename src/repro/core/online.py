"""Online (streaming) tracking — the API a real deployment drives.

:class:`repro.core.tracker.ViHOTTracker` processes a whole logged capture
at once, which is right for evaluation but not for a head unit receiving
one CSI report per WiFi packet.  ``OnlineTracker`` exposes the push-style
interface:

    tracker = OnlineTracker(profile)
    for record in nic:                      # one CsiRecord per packet
        tracker.push_csi(record.time, record.csi)
        ...
    estimate = tracker.estimate()           # whenever the HUD needs one

It drives the same :class:`repro.core.engine.EstimationEngine` as the
batch tracker (same stages, same session state); the difference is purely
that samples arrive incrementally into preallocated numpy ring buffers
and old ones are evicted past the retention horizon.  ``estimate()``
hands the engine zero-copy views of the live region, so its cost depends
on the buffer span, never on how long the session has been running.
``tests/core/test_online.py`` pins the equivalence against the batch
tracker.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.engine import BatchItem, EstimationEngine, SessionState
from repro.core.profile import CsiProfile
from repro.core.sanitize import antenna_phase_difference
from repro.core.stages import CameraLike, Estimate
from repro.dsp.series import TimeSeries
from repro.net.link import CsiStream


class SampleRing:
    """A preallocated, time-ordered ring of ``(time, value)`` samples.

    The live region is kept *contiguous*: appends write at the tail,
    eviction advances the head, and when the tail hits the capacity the
    live region is compacted to the front (or the arrays doubled if the
    region still fills more than half the capacity).  Both operations
    are amortised O(1) per sample, and :meth:`times` / :meth:`values`
    are zero-copy views — no per-read array rebuild, which is what keeps
    ``OnlineTracker.estimate()`` flat in session length.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self._times = np.empty(capacity, dtype=np.float64)
        self._values = np.empty(capacity, dtype=np.float64)
        self._head = 0
        self._tail = 0

    def __len__(self) -> int:
        return self._tail - self._head

    @property
    def capacity(self) -> int:
        return len(self._times)

    @property
    def first_time(self) -> float:
        if len(self) == 0:
            raise ValueError("empty ring has no first time")
        return float(self._times[self._head])

    @property
    def last_time(self) -> float:
        if len(self) == 0:
            raise ValueError("empty ring has no last time")
        return float(self._times[self._tail - 1])

    def times(self) -> np.ndarray:
        """Zero-copy view of the live timestamps."""
        return self._times[self._head : self._tail]

    def values(self) -> np.ndarray:
        """Zero-copy view of the live values."""
        return self._values[self._head : self._tail]

    def series(self) -> TimeSeries:
        """The live region as a :class:`TimeSeries` (views, no copy)."""
        return TimeSeries(self.times(), self.values())

    def append(self, time: float, value: float) -> None:
        """Append one sample; ``time`` must exceed the last timestamp."""
        if self._tail == self.capacity:
            self._make_room()
        self._times[self._tail] = time
        self._values[self._tail] = value
        self._tail += 1

    def evict_before(self, horizon: float) -> int:
        """Drop samples with ``time < horizon``; returns how many."""
        live = self.times()
        drop = int(np.searchsorted(live, horizon, side="left"))
        self._head += drop
        return drop

    def _make_room(self) -> None:
        live = len(self)
        if live > self.capacity // 2:
            # Still mostly full after eviction: double the capacity.
            grown_times = np.empty(2 * self.capacity, dtype=np.float64)
            grown_values = np.empty(2 * self.capacity, dtype=np.float64)
            grown_times[:live] = self.times()
            grown_values[:live] = self.values()
            self._times = grown_times
            self._values = grown_values
        else:
            # Compact the (evicted-down) live region to the front.
            self._times[:live] = self.times()
            self._values[:live] = self.values()
        self._head = 0
        self._tail = live


class OnlineTracker:
    """Incremental ViHOT: push CSI/IMU samples, pull estimates.

    Args:
        profile: the driver's CSI profile.
        config: run-time parameters (shared with the batch tracker).
        camera: optional steering fallback with ``estimate_at(t)``.
        buffer_s: how much phase history to retain.  Must cover the
            stability window plus the largest match window; the default
            keeps a comfortable margin.
        engine: a pre-built estimation engine to drive instead of the
            default head-tracking one — the workload registry passes
            localization / micro-motion engines here.  When given, its
            config wins (``config`` must be None or equal to it).
    """

    def __init__(
        self,
        profile: CsiProfile,
        config: ViHOTConfig | None = None,
        camera: CameraLike | None = None,
        buffer_s: float = 10.0,
        engine: EstimationEngine | None = None,
    ) -> None:
        if engine is not None:
            if config is not None and config != engine.config:
                raise ValueError(
                    "config conflicts with the provided engine's config"
                )
            config = engine.config
        config = config if config is not None else ViHOTConfig()
        needed = max(config.stable_window_s, config.window_s) + 1.0
        if buffer_s < needed:
            raise ValueError(
                f"buffer_s={buffer_s} too small; need >= {needed:.1f}s for "
                "the configured stability/match windows"
            )
        self._engine = (
            engine
            if engine is not None
            else EstimationEngine(profile, config, camera=camera)
        )
        self._config = config
        self._buffer_s = buffer_s

        self._phase = SampleRing()
        self._last_wrapped: float | None = None
        self._unwrap_offset = 0.0

        self._imu = SampleRing()

        self._state: SessionState = self._engine.new_session()

    @property
    def config(self) -> ViHOTConfig:
        return self._config

    @property
    def engine(self) -> EstimationEngine:
        """The shared stage-based estimation engine."""
        return self._engine

    @property
    def buffered_samples(self) -> int:
        """How many CSI phase samples are currently retained."""
        return len(self._phase)

    @property
    def buffered_seconds(self) -> float:
        if len(self._phase) < 2:
            return 0.0
        return self._phase.last_time - self._phase.first_time

    def phase_series(self) -> TimeSeries:
        """The buffered (unwrapped) phase track as a zero-copy view."""
        return self._phase.series()

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def push_csi(self, time: float, csi: np.ndarray) -> None:
        """Ingest one packet's CSI matrix, shape ``(n_rx, F)``."""
        time = float(time)
        if not np.isfinite(time):
            raise ValueError(f"packet timestamp must be finite, got {time}")
        csi = np.asarray(csi)
        if csi.ndim != 2:
            raise ValueError(f"per-packet CSI must be (n_rx, F), got {csi.shape}")
        if len(self._phase) and time <= self._phase.last_time:
            # Reordered/duplicate packet: the NIC timestamps are our
            # clock, so a non-increasing arrival is dropped.
            return
        wrapped = float(antenna_phase_difference(csi[None, :, :])[0])
        # Incremental unwrap against the previous sample.
        if self._last_wrapped is not None:
            delta = wrapped - self._last_wrapped
            if delta > np.pi:
                self._unwrap_offset -= 2.0 * np.pi
            elif delta < -np.pi:
                self._unwrap_offset += 2.0 * np.pi
        self._last_wrapped = wrapped
        self._phase.append(float(time), wrapped + self._unwrap_offset)
        self._evict(time)

    def push_imu(self, time: float, yaw_rate: float) -> None:
        """Ingest one phone gyro reading."""
        time = float(time)
        yaw_rate = float(yaw_rate)
        if not np.isfinite(time):
            raise ValueError(f"IMU timestamp must be finite, got {time}")
        if not np.isfinite(yaw_rate):
            raise ValueError(f"IMU yaw rate must be finite, got {yaw_rate}")
        if len(self._imu) and time <= self._imu.last_time:
            return
        self._imu.append(time, yaw_rate)

    def _evict(self, now: float) -> None:
        horizon = now - self._buffer_s
        self._phase.evict_before(horizon)
        self._imu.evict_before(horizon)

    # ------------------------------------------------------------------
    # Estimate
    # ------------------------------------------------------------------
    def ready(self) -> bool:
        """True once enough history has accumulated to estimate."""
        warmup = max(self._config.window_s, self._config.stable_window_s)
        return self.buffered_seconds >= warmup

    def estimation_inputs(self, t: float | None = None) -> BatchItem | None:
        """The exact engine inputs :meth:`estimate` would use at ``t``.

        ``None`` under the same early-out conditions (no samples, not
        warmed up).  The serving layer's batch planner collects these
        from many trackers and hands them to one shared engine's
        :meth:`~repro.core.engine.EstimationEngine.estimate_batch` —
        the item carries this tracker's live session state, so the
        batched call advances it exactly as :meth:`estimate` would.
        """
        if len(self._phase) == 0:
            return None
        if t is None:
            t = self._phase.last_time
        if not self.ready():
            return None
        imu = self._imu.series() if len(self._imu) else None
        return BatchItem(
            self._phase.series(), imu, float(t), self._state, engine=self._engine
        )

    def estimate(self, t: float | None = None) -> Estimate | None:
        """Estimate the head orientation at ``t`` (default: latest sample).

        Returns ``None`` until :meth:`ready` (Alg. 1's setup time) or if
        no estimate can be formed at ``t``.
        """
        item = self.estimation_inputs(t)
        if item is None:
            return None
        return self._engine.estimate_at(item.phase, item.imu, item.t, item.state)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def feed(
        self, stream: CsiStream, estimate_stride_s: float = 0.05
    ) -> Iterator[Estimate]:
        """Replay a logged capture through the online path.

        Yields estimates as they become available — the streaming
        equivalent of ``ViHOTTracker.process``.
        """
        if estimate_stride_s <= 0:
            raise ValueError("estimate_stride_s must be positive")
        imu_iter = 0
        imu = stream.imu
        imu_values = np.asarray(imu.values) if imu is not None else None
        next_estimate = None
        for k in range(len(stream)):
            t = float(stream.times[k])
            if imu is not None:
                while imu_iter < len(imu) and imu.times[imu_iter] <= t:
                    self.push_imu(
                        float(imu.times[imu_iter]), float(imu_values[imu_iter])
                    )
                    imu_iter += 1
            self.push_csi(t, stream.csi[k])
            if next_estimate is None and self.ready():
                next_estimate = t
            if next_estimate is not None and t >= next_estimate:
                estimate = self.estimate(t)
                next_estimate += estimate_stride_s
                if estimate is not None:
                    yield estimate
