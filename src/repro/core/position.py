"""Head-position estimation from the stable facing-front phase (Sec. 3.4.1).

Drivers must watch the road, so whenever the CSI phase has been flat for a
while the head is at 0 degrees — and the flat phase value ``phi0_r`` is a
fingerprint of the current head *position*.  Eq. (4) picks the profiled
position whose fingerprint is closest:

    i* = argmin_i | phi0_c(i) - phi0_r |

with the distance measured on the circle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.profile import CsiProfile
from repro.dsp.phase import circular_mean, phase_difference, phase_std, wrap_phase
from repro.dsp.series import TimeSeries


def detect_stable_phase(
    phase: TimeSeries,
    t: float,
    window_s: float,
    std_threshold_rad: float,
) -> float | None:
    """If the phase was flat over ``[t - window_s, t]``, return its level.

    Returns the wrapped circular-mean phase of the window when its
    circular standard deviation is below ``std_threshold_rad``; ``None``
    when the window is too sparse or not flat (head moving).

    :domain std_threshold_rad: rad
    :domain return: wrapped_rad
    """
    if window_s <= 0 or std_threshold_rad <= 0:
        raise ValueError("window_s and std_threshold_rad must be positive")
    window = phase.slice(t - window_s, t)
    # Require a sane sample count: a 2-sample window is trivially "flat".
    if len(window) < 8:
        return None
    wrapped = wrap_phase(np.asarray(window.values))
    if phase_std(wrapped) > std_threshold_rad:
        return None
    return float(circular_mean(wrapped))


@dataclass
class PositionEstimator:
    """Tracks the current head-position index ``i*`` over a session.

    Feed it phase observations via :meth:`update`; it re-estimates the
    position whenever it sees a stable facing-front interval, and
    otherwise holds the last estimate (the head position cannot change
    while the head is turning mid-glance).
    """

    profile: CsiProfile
    window_s: float = 0.5
    std_threshold_rad: float = 0.06
    tie_margin_rad: float = 0.04

    def __post_init__(self) -> None:
        if len(self.profile) == 0:
            raise ValueError("cannot estimate positions against an empty profile")
        self._fingerprints = self.profile.phi0_fingerprints()
        self._current: int | None = None
        self._last_phi0: float | None = None
        self._last_fix_time: float | None = None

    @property
    def current_index(self) -> int | None:
        """Most recent position estimate (``None`` before the first one)."""
        return self._current

    @property
    def last_phi0(self) -> float | None:
        """The stable phase that produced the current estimate."""
        return self._last_phi0

    @property
    def last_fix_time(self) -> float | None:
        """When the most recent stable interval was observed.

        While a fix is *current* (the phase is stable right now), the
        Sec. 3.4.1 assumption also pins the orientation: stable phase
        means the driver is facing front at 0 degrees.  The tracker uses
        this to anchor its estimate during facing-front stretches.
        """
        return self._last_fix_time

    def estimate_from_phi0(self, phi0_r: float) -> int:
        """Eq. (4): nearest profiled fingerprint on the circle.

        Fingerprints of *distant* positions can collide (the composite
        phase is not monotone in the lean), so near-ties are broken
        toward the current position index: a head position drifts slowly
        ("the driver's head position typically does not vary much during
        a trip", Sec. 2.3), it does not teleport across the seat.

        :domain phi0_r: wrapped_rad
        """
        distances = np.abs(phase_difference(self._fingerprints, phi0_r))
        best = int(np.argmin(distances))
        if self._current is None:
            return best
        ties = np.flatnonzero(distances <= distances[best] + self.tie_margin_rad)
        return int(min(ties, key=lambda i: abs(int(i) - self._current)))

    def update(self, phase: TimeSeries, t: float) -> int | None:
        """Ingest the phase history up to time ``t``.

        Returns the (possibly unchanged) current position index, or
        ``None`` if no stable interval has been seen yet this session.
        """
        phi0_r = detect_stable_phase(
            phase, t, self.window_s, self.std_threshold_rad
        )
        if phi0_r is not None:
            self._current = self.estimate_from_phi0(phi0_r)
            self._last_phi0 = phi0_r
            self._last_fix_time = t
        return self._current
