"""The CSI profile ``P = {C_1, ..., C_i, ...}`` (Sec. 3.3).

Each ``PositionProfile`` (the paper's ``C_i``) stores, for one head
position, the synchronized pair of uniform-grid series collected while the
driver scanned left-right:

* ``phases`` — the sanitized, wrapped CSI phase series ``Phi*_c``;
* ``orientations`` — the ground-truth head yaw series ``Theta*_c``;
* ``phi0`` — the stable "facing front" phase fingerprint ``phi0_c(i)``
  used by the position estimator (Sec. 3.4.1).

Profiles persist as ``.npz`` archives so a driver's profile survives
across trips (Sec. 3.3: the profile "can be timely improved after each
use").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterator

import numpy as np

from repro.dsp.phase import wrap_phase


@dataclass(frozen=True)
class PositionProfile:
    """The profiled CSI-orientation relation at one head position.

    Attributes:
        label: position identifier (we use the lean offset in metres).
        rate_hz: uniform grid rate of the stored series.
        phases: wrapped CSI phases, shape ``(N,)``.
        orientations: head yaw [rad], shape ``(N,)``.
        phi0: wrapped stable-front phase fingerprint.
    """

    label: float
    rate_hz: float
    phases: np.ndarray
    orientations: np.ndarray
    phi0: float

    def __post_init__(self) -> None:
        phases = np.asarray(self.phases, dtype=np.float64)
        orientations = np.asarray(self.orientations, dtype=np.float64)
        if phases.ndim != 1 or len(phases) < 2:
            raise ValueError("phases must be a 1-D array with >= 2 samples")
        if orientations.shape != phases.shape:
            raise ValueError(
                f"orientations shape {orientations.shape} != phases {phases.shape}"
            )
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")
        object.__setattr__(self, "phases", wrap_phase(phases))
        object.__setattr__(self, "orientations", orientations)
        object.__setattr__(self, "phi0", float(wrap_phase(self.phi0)))

    def __len__(self) -> int:
        return len(self.phases)

    @property
    def duration_s(self) -> float:
        return (len(self.phases) - 1) / self.rate_hz

    @property
    def orientation_range(self) -> tuple:
        """(min, max) profiled yaw [rad] — the coverage of this position."""
        return (float(self.orientations.min()), float(self.orientations.max()))


@dataclass
class CsiProfile:
    """A driver's complete profile ``P`` over all head positions."""

    positions: list[PositionProfile] = field(default_factory=list)
    driver: str = "unknown"

    def __len__(self) -> int:
        return len(self.positions)

    def __iter__(self) -> Iterator[PositionProfile]:
        return iter(self.positions)

    def __getitem__(self, index: int) -> PositionProfile:
        return self.positions[index]

    def add(self, position: PositionProfile) -> None:
        """Append a newly profiled head position."""
        if self.positions and position.rate_hz != self.positions[0].rate_hz:
            raise ValueError(
                f"rate mismatch: profile at {self.positions[0].rate_hz} Hz, "
                f"new position at {position.rate_hz} Hz"
            )
        self.positions.append(position)

    @property
    def rate_hz(self) -> float:
        if not self.positions:
            raise ValueError("empty profile has no rate")
        return self.positions[0].rate_hz

    def phi0_fingerprints(self) -> np.ndarray:
        """``phi0_c(i)`` for every position, shape ``(len(self),)``."""
        return np.array([p.phi0 for p in self.positions])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Serialise to a ``.npz`` archive at ``path``."""
        path = Path(path)
        arrays: dict[str, np.ndarray] = {}
        meta = {"driver": self.driver, "num_positions": len(self.positions)}
        labels, rates, phi0s = [], [], []
        for k, pos in enumerate(self.positions):
            arrays[f"phases_{k}"] = pos.phases
            arrays[f"orientations_{k}"] = pos.orientations
            labels.append(pos.label)
            rates.append(pos.rate_hz)
            phi0s.append(pos.phi0)
        arrays["labels"] = np.array(labels)
        arrays["rates"] = np.array(rates)
        arrays["phi0s"] = np.array(phi0s)
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)

    @staticmethod
    def load(path: str | Path) -> CsiProfile:
        """Load a profile previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no profile at {path}")
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta_json"].tobytes()).decode("utf-8"))
            profile = CsiProfile(driver=meta["driver"])
            for k in range(int(meta["num_positions"])):
                profile.add(
                    PositionProfile(
                        label=float(data["labels"][k]),
                        rate_hz=float(data["rates"][k]),
                        phases=data[f"phases_{k}"],
                        orientations=data[f"orientations_{k}"],
                        phi0=float(data["phi0s"][k]),
                    )
                )
        return profile
