"""Position-orientation joint profiling (Sec. 3.3).

One profiling pass per head position: the driver leans to a position,
faces front briefly (yielding the ``phi0`` fingerprint), then sweeps the
head left-right while the phone streams packets and the ground-truth
tracker (headset in the evaluation, front camera in deployment) logs the
yaw.  ``build_position_profile`` fuses one such capture into a
``PositionProfile``; ``ProfileBuilder`` accumulates positions into the
driver's ``CsiProfile``.
"""

from __future__ import annotations

import numpy as np

from repro import constants
from repro.core.profile import CsiProfile, PositionProfile
from repro.core.sanitize import sanitize_stream
from repro.dsp.phase import circular_mean, wrap_phase
from repro.dsp.resample import resample_uniform
from repro.dsp.series import TimeSeries
from repro.net.link import CsiStream


def build_position_profile(
    stream: CsiStream,
    truth_yaw: TimeSeries,
    label: float,
    rate_hz: float = constants.DEFAULT_RESAMPLE_RATE_HZ,
    front_hold_s: float = 1.0,
) -> PositionProfile:
    """Fuse one profiling capture into a ``PositionProfile``.

    Args:
        stream: the CSI capture for this head position.  The driver is
            assumed to face front for the first ``front_hold_s`` seconds
            (the experiments' profiling scripts arrange this), which
            provides the ``phi0`` fingerprint.
        truth_yaw: ground-truth yaw series covering the capture span.
        label: position label (lean offset [m] in our scenarios).
        rate_hz: uniform grid rate for the stored series.
        front_hold_s: length of the initial facing-front hold.
    """
    if len(stream) < 4:
        raise ValueError(f"profiling capture too short: {len(stream)} packets")
    if len(truth_yaw) < 2:
        raise ValueError("ground-truth series too short")

    phase = sanitize_stream(stream.times, stream.csi)

    # phi0: circular mean of the wrapped phase during the front hold.
    hold_end = stream.times[0] + front_hold_s
    hold = phase.slice(stream.times[0], hold_end)
    if len(hold) < 2:
        raise ValueError(
            f"front hold of {front_hold_s}s contains {len(hold)} samples; "
            "capture does not start with a facing-front hold"
        )
    phi0 = float(circular_mean(wrap_phase(np.asarray(hold.values))))

    # Resample the unwrapped phase and the truth onto the common grid.
    t0 = max(phase.start, truth_yaw.start)
    t1 = min(phase.end, truth_yaw.end)
    if t1 - t0 < 2.0 / rate_hz:
        raise ValueError("CSI and ground-truth spans barely overlap")
    phase_uniform = resample_uniform(phase, rate_hz, t0, t1)
    yaw_uniform = truth_yaw.interp(phase_uniform.times)

    return PositionProfile(
        label=label,
        rate_hz=rate_hz,
        phases=wrap_phase(np.asarray(phase_uniform.values)),
        orientations=yaw_uniform,
        phi0=phi0,
    )


class ProfileBuilder:
    """Accumulates per-position captures into a driver's profile.

    The paper's flow ("repeat ... for different head positions", Fig. 5)
    maps to one :meth:`add_position` call per lean, and the whole pass
    stays within the paper's ~100 s budget for 10 positions.
    """

    def __init__(
        self,
        driver: str = "unknown",
        rate_hz: float = constants.DEFAULT_RESAMPLE_RATE_HZ,
    ) -> None:
        self._profile = CsiProfile(driver=driver)
        self._rate_hz = rate_hz

    def add_position(
        self,
        stream: CsiStream,
        truth_yaw: TimeSeries,
        label: float,
        front_hold_s: float = 1.0,
    ) -> PositionProfile:
        """Profile one head position and add it to the driver's profile."""
        position = build_position_profile(
            stream, truth_yaw, label, self._rate_hz, front_hold_s
        )
        self._profile.add(position)
        return position

    def build(self) -> CsiProfile:
        """Return the accumulated profile (must be non-empty)."""
        if len(self._profile) == 0:
            raise ValueError("no positions profiled")
        return self._profile
