"""Profile quality assessment — is this CSI profile fit for tracking?

The profiling pass (Sec. 3.3) is quick and human-driven, so a deployment
should check what it got before trusting it for a whole trip.  Three
properties make a profile good:

1. **Coverage** — the scanned orientations span the range the driver
   will actually use (±80 degrees or so);
2. **Sensitivity** — the phase moves enough per degree of orientation
   that measurement noise does not swamp it;
3. **Separability** — the per-position phi0 fingerprints are far enough
   apart (relative to their own noise) for Eq. (4) to work.

``assess_profile`` measures all three and aggregates a verdict; the CLI
and the profiling example surface it to the user.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.profile import CsiProfile, PositionProfile
from repro.dsp.phase import phase_difference


@dataclass(frozen=True)
class PositionQuality:
    """Per-position quality numbers.

    Attributes:
        label: the position's label.
        coverage_deg: scanned orientation span.
        phase_range_rad: wrapped-phase dynamic range over the sweep.
        sensitivity_rad_per_deg: median |dphi/dtheta| over the sweep.
        noise_rad: residual phase noise (high-frequency component).
        snr: sensitivity * 10 degrees / noise — how clearly a 10-degree
            head turn stands out of the noise.
    """

    label: float
    coverage_deg: float
    phase_range_rad: float
    sensitivity_rad_per_deg: float
    noise_rad: float
    snr: float


@dataclass(frozen=True)
class ProfileQuality:
    """Whole-profile assessment."""

    positions: list[PositionQuality]
    min_coverage_deg: float
    median_snr: float
    fingerprint_separation: float
    verdict: str

    def __str__(self) -> str:
        return (
            f"{self.verdict}: coverage >= {self.min_coverage_deg:.0f} deg, "
            f"median 10-deg SNR {self.median_snr:.1f}, fingerprint "
            f"separation {self.fingerprint_separation:.1f}x noise"
        )


def _assess_position(position: PositionProfile) -> PositionQuality:
    orientations = position.orientations
    phases = position.phases
    coverage = float(np.rad2deg(orientations.max() - orientations.min()))
    phase_range = float(np.ptp(phases))

    # Sensitivity: slope of the binned curve, not per-sample differences
    # (those measure noise when consecutive samples are milli-degrees
    # apart).  Bin orientations at 5-degree resolution, take the median
    # phase per bin, and measure the slope between adjacent bins.
    theta_deg = np.rad2deg(orientations)
    bins = np.arange(theta_deg.min(), theta_deg.max() + 5.0, 5.0)
    slopes = []
    previous = None
    for lo in bins[:-1]:
        mask = (theta_deg >= lo) & (theta_deg < lo + 5.0)
        if mask.sum() < 3:
            previous = None
            continue
        level = (lo + 2.5, float(np.median(phases[mask])))
        if previous is not None:
            slopes.append(abs(level[1] - previous[1]) / (level[0] - previous[0]))
        previous = level
    sensitivity = float(np.median(slopes)) if slopes else 0.0

    # Noise: the high-frequency residual after a short moving average.
    kernel = np.ones(9) / 9.0
    smooth = np.convolve(phases, kernel, mode="same")
    noise = float(np.std((phases - smooth)[5:-5])) if len(phases) > 20 else 0.0

    snr = sensitivity * 10.0 / noise if noise > 0 else float("inf")
    return PositionQuality(
        label=position.label,
        coverage_deg=coverage,
        phase_range_rad=phase_range,
        sensitivity_rad_per_deg=sensitivity,
        noise_rad=noise,
        snr=snr,
    )


def assess_profile(
    profile: CsiProfile,
    min_coverage_deg: float = 120.0,
    min_snr: float = 3.0,
    min_separation: float = 2.0,
) -> ProfileQuality:
    """Assess a profile's fitness for run-time tracking.

    Verdicts: ``"good"`` (all criteria met), ``"marginal"`` (tracking
    will work with elevated error), ``"poor"`` (re-profile).
    """
    if len(profile) == 0:
        raise ValueError("cannot assess an empty profile")
    positions = [_assess_position(p) for p in profile]

    coverage = min(p.coverage_deg for p in positions)
    snr = float(np.median([p.snr for p in positions]))

    # Fingerprint separability: nearest-neighbour phi0 gap over the
    # typical phi0 noise (approximated by the per-position phase noise).
    phi0s = profile.phi0_fingerprints()
    if len(phi0s) > 1:
        gaps = []
        for k, phi0 in enumerate(phi0s):
            others = np.delete(phi0s, k)
            gaps.append(float(np.min(np.abs(phase_difference(others, phi0)))))
        noise = float(np.median([max(p.noise_rad, 1e-4) for p in positions]))
        separation = float(np.median(gaps)) / noise
    else:
        separation = float("inf")

    verdict = "good"
    criteria = (
        coverage >= min_coverage_deg,
        snr >= min_snr,
        separation >= min_separation,
    )
    if not all(criteria):
        verdict = "marginal"
    if coverage < 0.5 * min_coverage_deg or snr < 1.0:
        verdict = "poor"

    return ProfileQuality(
        positions=positions,
        min_coverage_deg=coverage,
        median_snr=snr,
        fingerprint_separation=separation,
        verdict=verdict,
    )
