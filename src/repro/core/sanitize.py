"""CSI phase sanitisation (Sec. 3.2).

Raw CSI phase from commodity hardware is useless: the CFO term ``beta(t)``
jumps packet-to-packet and the SFO term tilts the phase across
subcarriers.  Both are *common to all RX antennas* of one NIC, so the
phase difference between two RX antennas cancels them (Eq. 3):

    phi_hat_1 - phi_hat_2 = phi_1 - phi_2 + (Z_1 - Z_2)

Averaging that difference across subcarriers then suppresses the residual
thermal noise.  We do the average circularly (on unit phasors), which is
the numerically exact version of the paper's arithmetic mean and behaves
at the +-pi seam.  Finally the per-packet phases are unwrapped along time
into a continuous track, which is what windowing/resampling needs.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.phase import circular_mean
from repro.dsp.series import TimeSeries


def antenna_phase_difference(
    csi: np.ndarray, rx_a: int = 0, rx_b: int = 1
) -> np.ndarray:
    """Per-packet subcarrier-averaged phase difference between antennas.

    Args:
        csi: CSI matrices, shape ``(T, n_rx, F)``.
        rx_a, rx_b: which RX antennas to difference.

    Returns:
        Wrapped phases in ``(-pi, pi]``, shape ``(T,)``.

    :domain return: wrapped_rad
    :shape csi: (T, n_rx, F)
    :dtype csi: complex128
    :shape return: (T,)
    :dtype return: float64
    """
    csi = np.asarray(csi)
    if csi.ndim != 3:
        raise ValueError(f"csi must have shape (T, n_rx, F), got {csi.shape}")
    n_rx = csi.shape[1]
    if not (0 <= rx_a < n_rx and 0 <= rx_b < n_rx) or rx_a == rx_b:
        raise ValueError(
            f"need two distinct RX indices below {n_rx}, got {rx_a}, {rx_b}"
        )
    # angle(H_a * conj(H_b)) is the wrapped difference phi_a - phi_b,
    # computed without ever forming the individually-wrapped phases.
    cross = csi[:, rx_a, :] * np.conj(csi[:, rx_b, :])
    per_subcarrier = np.angle(cross)
    return np.asarray(circular_mean(per_subcarrier, axis=1))


def sanitize_stream(
    times: np.ndarray,
    csi: np.ndarray,
    rx_a: int = 0,
    rx_b: int = 1,
    unwrap: bool = True,
) -> TimeSeries:
    """Turn a CSI capture into the tracker's phase series ``phi(t)``.

    With ``unwrap=True`` (default) the result is a continuous track,
    suitable for interpolation; wrap it back (``repro.dsp.phase.wrap_phase``)
    when a value in ``(-pi, pi]`` is needed.

    :shape times: (T,)
    :shape csi: (T, n_rx, F)
    :dtype csi: complex128
    """
    times = np.asarray(times, dtype=np.float64)
    phases = antenna_phase_difference(csi, rx_a, rx_b)
    if len(times) != len(phases):
        raise ValueError(
            f"got {len(times)} timestamps for {len(phases)} CSI snapshots"
        )
    if unwrap and len(phases) > 1:
        phases = np.unwrap(phases)
    return TimeSeries(times, phases)


def sanitize_streams(
    times: np.ndarray,
    csi: np.ndarray,
    rx_a: int = 0,
    rx_b: int = 1,
    unwrap: bool = True,
) -> list[TimeSeries]:
    """Batched :func:`sanitize_stream` over a stack of sessions.

    The fleet-serving hot path runs the same sanitisation on ``S``
    near-identical captures; stacking them turns ``S`` python dispatches
    into one numpy pass over a ``session x time x subcarrier`` tensor.

    Args:
        times: timestamps, shape ``(T,)`` (shared by every session) or
            ``(S, T)`` (one clock per session).
        csi: CSI matrices, shape ``(S, T, n_rx, F)``.

    Returns:
        One :class:`TimeSeries` per session, bit-identical to calling
        :func:`sanitize_stream` on each session alone: the subcarrier
        average reduces per packet row and the unwrap accumulates per
        session row, so stacking changes neither reduction order.

    :shape times: (T,) | (S, T)
    :shape csi: (S, T, n_rx, F)
    :dtype csi: complex128
    """
    csi = np.asarray(csi)
    if csi.ndim != 4:
        raise ValueError(f"csi must have shape (S, T, n_rx, F), got {csi.shape}")
    n_sessions, n_packets = csi.shape[0], csi.shape[1]
    times = np.asarray(times, dtype=np.float64)
    if times.ndim == 1:
        stamped = np.broadcast_to(times, (n_sessions, len(times)))
    elif times.ndim == 2:
        stamped = times
    else:
        raise ValueError(f"times must have shape (T,) or (S, T), got {times.shape}")
    if stamped.shape != (n_sessions, n_packets):
        raise ValueError(
            f"got timestamps of shape {times.shape} for {n_sessions} sessions "
            f"of {n_packets} CSI snapshots"
        )
    if n_sessions == 0:
        return []
    # One flattened (S*T, n_rx, F) pass: the subcarrier reduction is
    # per-row, so this is the scalar kernel's arithmetic exactly.
    flat = antenna_phase_difference(
        csi.reshape(n_sessions * n_packets, csi.shape[2], csi.shape[3]), rx_a, rx_b
    )
    phases = flat.reshape(n_sessions, n_packets)
    if unwrap and n_packets > 1:
        phases = np.unwrap(phases, axis=1)
    return [
        TimeSeries(np.array(stamped[s]), phases[s]) for s in range(n_sessions)
    ]
