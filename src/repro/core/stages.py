"""The run-time decision chain as explicit, ordered stages.

ViHOT's per-estimate logic (Sec. 3.4-3.6) is a short chain of decisions:
position fix -> steering check -> stationary rule -> DTW match ->
forecast -> jump filter.  This module gives each decision its own
``Stage`` so the chain is inspectable and observable: every stage records
a :class:`StageTrace` (did it fire, how long it took, which quantities it
saw), and the engine attaches the full :class:`EstimationTrace` to the
resulting :class:`Estimate`.  A deployment can therefore log *why* an
estimate came out the way it did — the same self-observability argument
in-vehicle CSI deployments make — instead of just its value.

Stage contract: :meth:`Stage.run` consumes an :class:`EstimationContext`
and returns a :class:`StageDecision` that either passes through to the
next stage, emits a final estimate, diverts to the hold path (re-issue
the previous estimate as ``"held"``), or resolves straight to the emit
stage.  :class:`repro.core.engine.EstimationEngine` owns the ordering.

Batch contract: :meth:`Stage.run_batch` consumes a list of contexts (one
per serving session) and returns one decision per context.  The default
is the per-context loop — bit-identical to sequential execution by
construction.  A stage that can genuinely stack the work across sessions
(the DTW match) overrides it and sets ``batch_aware = True``; any such
override must stay bit-identical to looping :meth:`run`, pinned by a
paired test (``vihot lint`` VH205).
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Protocol

from repro.core.config import ViHOTConfig
from repro.core.forecast import forecast_orientation
from repro.core.matching import MatchResult, SeriesMatcher
from repro.core.position import PositionEstimator
from repro.core.profile import CsiProfile
from repro.core.sanitize import sanitize_stream, sanitize_streams
from repro.core.steering_id import SteeringIdentifier
from repro.dsp.phase import phase_std, stacked_phase_std, wrap_phase
from repro.dsp.resample import resample_uniform
from repro.dsp.series import TimeSeries

#: Modes that count as "confident" — they refresh the continuity clock.
CONFIDENT_MODES = ("csi", "fallback")


class CameraLike(Protocol):
    """What the steering fallback needs from a camera tracker.

    Satisfied by :class:`repro.sensors.camera.CameraTracker` and by the
    stub trackers the tests inject.
    """

    def estimate_at(self, t: float) -> float:
        """Head yaw [rad] the camera believes at time ``t``."""
        ...


@dataclass(frozen=True)
class StageTrace:
    """One stage's record for one estimate.

    Attributes:
        stage: the stage's name.
        fired: whether the stage's condition triggered (a position fix
            exists, steering was detected, the window was flat, a match
            was found, the jump filter rejected, ...).
        elapsed_ms: wall time spent inside the stage.
        detail: key quantities the stage observed (flatness, continuity
            tolerance, winning DTW distance, smoothed steering rate, ...).
    """

    stage: str
    fired: bool
    elapsed_ms: float
    detail: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class EstimationTrace:
    """Per-stage provenance of one estimate.

    Attributes:
        stages: the :class:`StageTrace` of every stage that ran, in
            execution order (a prefix of the chain, plus ``hold`` when
            the estimate was a re-issue).
        terminal: name of the stage that produced the estimate.
    """

    stages: tuple[StageTrace, ...]
    terminal: str

    def stage(self, name: str) -> StageTrace | None:
        """The trace of stage ``name``, or ``None`` if it never ran."""
        for trace in self.stages:
            if trace.stage == name:
                return trace
        return None

    def fired(self, name: str) -> bool:
        """Whether stage ``name`` ran and fired."""
        trace = self.stage(name)
        return trace is not None and trace.fired

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(trace.stage for trace in self.stages)


@dataclass(frozen=True)
class Estimate:
    """One tracker output.

    Attributes:
        time: when the estimate was produced [s].
        target_time: the instant the orientation refers to (``time`` for
            tracking, ``time + horizon`` for forecasting).
        orientation: estimated head yaw [rad].
        mode: ``"csi"`` (DTW match or a facing-front stability fix),
            ``"stationary"`` (flat window — head not moving, previous
            estimate re-issued), ``"fallback"`` (camera), ``"held"``
            (jump-filtered or no data) or ``"init"`` (before the first
            position fix; matched against the default position).
        position_index: head-position index used for the match (-1 when
            not applicable).
        dtw_distance: winning DTW distance (NaN unless mode involves a
            match).
        trace: per-stage provenance (``None`` for estimates built
            outside the engine, e.g. in tests); excluded from equality
            so two estimates with the same payload still compare equal.
    """

    time: float
    target_time: float
    orientation: float
    mode: str
    position_index: int = -1
    dtw_distance: float = float("nan")
    trace: EstimationTrace | None = field(
        default=None, repr=False, compare=False
    )


@dataclass
class EstimationContext:
    """Everything one estimate consumes, plus the stages' scratch state.

    The first block is the frontend's input: the phase view, the IMU
    view, the clock ``t`` and the session state (position estimator,
    previous estimate, last confident time).  The second block is filled
    in by the stages as the chain advances.

    :shape raw_times: (T,)
    :shape raw_csi: (T, n_rx, F)
    :dtype raw_csi: complex128
    """

    phase: TimeSeries
    imu: TimeSeries | None
    t: float
    position: PositionEstimator
    default_position: int
    previous: Estimate | None = None
    last_confident_time: float | None = None

    #: The forecast horizon this estimate should carry [s].  Set by the
    #: engine from the *owning session's* config: a batched group mixes
    #: forecast and plain sessions (the planner's group key normalizes
    #: ``horizon_s``), and a batch-aware stage runs on the group
    #: leader's instance — reading ``self._config.horizon_s`` there
    #: would stamp the leader's horizon on every session's estimate.
    #: ``None`` means "use the stage's own config" (contexts built
    #: outside the engine, e.g. directly in tests).
    horizon_s: float | None = None

    # Filled in by the stages.
    position_index: int = -1
    regime: str = "csi"  # "csi" once a position fix exists, else "init"
    match: MatchResult | None = None
    orientation: float = float("nan")
    hold_reason: str = ""

    # Optional raw CSI capture.  Whole-capture frontends attach the raw
    # packet arrays here and let :class:`SanitizeStage` turn them into
    # ``phase``; online frontends sanitize at ingest and leave these None.
    raw_times: np.ndarray | None = None
    raw_csi: np.ndarray | None = None


#: StageDecision actions.
PASS = "pass"  # continue with the next stage
EMIT = "emit"  # terminal: the decision's estimate is the outcome
HOLD = "hold"  # divert to the hold stage (re-issue previous as "held")
RESOLVE = "resolve"  # skip ahead to the emit stage


@dataclass(frozen=True)
class StageDecision:
    """What one stage decided, plus its observability payload."""

    action: str
    estimate: Estimate | None = None
    fired: bool = False
    detail: dict[str, object] = field(default_factory=dict)

    @staticmethod
    def passthrough(fired: bool = False, **detail: object) -> StageDecision:
        return StageDecision(PASS, fired=fired, detail=detail)

    @staticmethod
    def emit(
        estimate: Estimate | None, fired: bool = True, **detail: object
    ) -> StageDecision:
        return StageDecision(EMIT, estimate=estimate, fired=fired, detail=detail)

    @staticmethod
    def hold(fired: bool = True, **detail: object) -> StageDecision:
        return StageDecision(HOLD, fired=fired, detail=detail)

    @staticmethod
    def resolve(fired: bool = True, **detail: object) -> StageDecision:
        return StageDecision(RESOLVE, fired=fired, detail=detail)


class Stage:
    """Base class: one named step of the decision chain."""

    name = "stage"

    #: True when :meth:`run_batch` is a genuinely stacked implementation
    #: rather than the default per-context loop.  The engine uses this to
    #: decide whether a batched dispatch buys anything (and how to
    #: contain a batch-call failure).
    batch_aware = False

    def run(self, ctx: EstimationContext) -> StageDecision:
        raise NotImplementedError

    def run_batch(
        self, contexts: Sequence[EstimationContext]
    ) -> list[StageDecision]:
        """Run the stage for many sessions' contexts in one call.

        Default: the per-context loop, bit-identical to sequential
        execution by construction.  Batch-aware overrides must preserve
        that bit-identity (pinned by a paired test, VH205).
        """
        return [self.run(ctx) for ctx in contexts]


class SanitizeStage(Stage):
    """Turn a raw CSI capture into the context's phase series (Sec. 3.2).

    The online frontends sanitize incrementally at ingest, so their
    contexts arrive with ``phase`` already filled and ``raw_times`` /
    ``raw_csi`` unset — this stage passes them through untouched.
    Whole-capture frontends attach the raw packet arrays instead, and
    this stage runs the antenna-phase-difference sanitization
    (:func:`repro.core.sanitize.sanitize_stream`) to produce ``phase``.

    Batch-aware: captures sharing one shape are stacked through
    :func:`repro.core.sanitize.sanitize_streams` — a single numpy pass
    over the ``session x time x rx x subcarrier`` tensor — and ragged
    shapes fall back to the per-context loop.  Bit-identical to looping
    :meth:`run` (pinned by ``tests/core/test_sanitize_stage.py``,
    ``vihot lint`` VH205).
    """

    name = "sanitize"
    batch_aware = True

    def run(self, ctx: EstimationContext) -> StageDecision:
        if ctx.raw_times is None or ctx.raw_csi is None:
            return StageDecision.passthrough(fired=False)
        ctx.phase = sanitize_stream(ctx.raw_times, ctx.raw_csi)
        return StageDecision.passthrough(fired=True, samples=len(ctx.phase))

    def run_batch(
        self, contexts: Sequence[EstimationContext]
    ) -> list[StageDecision]:
        """Sanitize many captures in stacked kernel calls.

        Groups contexts by raw-capture shape (stacking needs rectangular
        arrays); each same-shape group becomes one
        :func:`sanitize_streams` call.  Singleton groups and contexts
        with no raw capture take the scalar path verbatim.
        """
        decisions: list[StageDecision | None] = [None] * len(contexts)
        groups: dict[tuple[int, ...], list[int]] = {}
        for i, ctx in enumerate(contexts):
            if ctx.raw_times is None or ctx.raw_csi is None:
                decisions[i] = StageDecision.passthrough(fired=False)
                continue
            shape = tuple(np.shape(ctx.raw_times)) + tuple(np.shape(ctx.raw_csi))
            groups.setdefault(shape, []).append(i)
        for slots in groups.values():
            if len(slots) == 1:
                decisions[slots[0]] = self.run(contexts[slots[0]])
                continue
            times = np.stack([np.asarray(contexts[i].raw_times) for i in slots])
            csi = np.stack([np.asarray(contexts[i].raw_csi) for i in slots])
            for i, series in zip(slots, sanitize_streams(times, csi)):
                contexts[i].phase = series
                decisions[i] = StageDecision.passthrough(
                    fired=True, samples=len(series)
                )
        return [d for d in decisions if d is not None]


class PositionStage(Stage):
    """Keep the head-position estimate fresh (Sec. 3.4.1).

    Never terminal: it updates the position estimator from the phase
    history and records the tracking regime — ``"csi"`` once any fix
    exists this session, ``"init"`` (default position) before that.
    Every later stage that labels an estimate reads the regime from the
    context, so the init/csi distinction propagates consistently.
    """

    name = "position"

    def run(self, ctx: EstimationContext) -> StageDecision:
        index = ctx.position.update(ctx.phase, ctx.t)
        if index is None:
            ctx.position_index = ctx.default_position
            ctx.regime = "init"
            return StageDecision.passthrough(
                fired=False, position_index=ctx.position_index, regime="init"
            )
        ctx.position_index = index
        ctx.regime = "csi"
        fix_age = (
            ctx.t - ctx.position.last_fix_time
            if ctx.position.last_fix_time is not None
            else float("nan")
        )
        return StageDecision.passthrough(
            fired=True, position_index=index, regime="csi", fix_age_s=fix_age
        )


class SteeringStage(Stage):
    """Distrust CSI while the car is turning (Sec. 3.6.2).

    Fires when the smoothed car yaw rate says the CSI variation is
    steering-borne: emits the camera fallback when one is available,
    otherwise diverts to the hold path.
    """

    name = "steering"

    def __init__(
        self,
        identifier: SteeringIdentifier,
        camera: CameraLike | None,
        config: ViHOTConfig,
    ) -> None:
        self._identifier = identifier
        self._camera = camera
        self._config = config

    def run(self, ctx: EstimationContext) -> StageDecision:
        if ctx.imu is None:
            return StageDecision.passthrough(fired=False)
        rate = self._identifier.smoothed_rate(ctx.imu, ctx.t)
        if not self._identifier.is_steering(ctx.imu, ctx.t):
            return StageDecision.passthrough(fired=False, smoothed_rate=rate)
        if self._camera is not None:
            yaw = float(self._camera.estimate_at(ctx.t))
            return StageDecision.emit(
                Estimate(
                    ctx.t, ctx.t + self._config.horizon_s, yaw, "fallback"
                ),
                smoothed_rate=rate,
            )
        return StageDecision.hold(smoothed_rate=rate)


class StabilityFixStage(Stage):
    """Pin the orientation to 0 during a *current* stability fix.

    Sec. 3.4.1: stable phase <=> driver facing front.  When the position
    estimator saw a stable interval ending exactly now, the orientation
    is 0 degrees by assumption — no match needed.  Resolves straight to
    the emit stage so the estimate carries the context's regime (the
    fix itself implies a position exists, so this is ``"csi"``; the
    regime is propagated rather than hardcoded so the label can never
    disagree with the position stage).
    """

    name = "stability_fix"

    def run(self, ctx: EstimationContext) -> StageDecision:
        fix_time = ctx.position.last_fix_time
        if fix_time is not None and fix_time == ctx.t:
            ctx.orientation = 0.0
            return StageDecision.resolve(orientation=0.0)
        return StageDecision.passthrough(fired=False)


class StationaryStage(Stage):
    """Re-issue the previous estimate through flat windows.

    A flat-but-short window means the head is not moving; a shape-less
    window would make DTW pick an arbitrary equal-phase profile sample
    (see :class:`ViHOTConfig`), so the previous estimate is re-issued
    instead.

    Batch-aware: windows sharing one length are stacked through
    :func:`repro.dsp.phase.stacked_phase_std` — one complex-exponential
    pass over the ``session x sample`` matrix instead of one per
    session.  Bit-identical to looping :meth:`run` (pinned by
    ``tests/core/test_stationary_stage.py``, ``vihot lint`` VH205).
    """

    name = "stationary"
    batch_aware = True

    def __init__(self, config: ViHOTConfig) -> None:
        self._config = config

    def _decide(
        self, ctx: EstimationContext, flatness: float, samples: int
    ) -> StageDecision:
        """Turn a computed flatness into the stage's decision.

        Shared verbatim by :meth:`run` and :meth:`run_batch` so the
        batched path cannot drift from the sequential reference.
        """
        config = self._config
        if flatness < config.stationary_std_rad:
            horizon = (
                ctx.horizon_s if ctx.horizon_s is not None else config.horizon_s
            )
            return StageDecision.emit(
                Estimate(
                    ctx.t,
                    ctx.t + horizon,
                    ctx.previous.orientation,
                    "stationary",
                    ctx.position_index,
                ),
                flatness=flatness,
                samples=samples,
            )
        return StageDecision.passthrough(
            fired=False, flatness=flatness, samples=samples
        )

    def run(self, ctx: EstimationContext) -> StageDecision:
        config = self._config
        window = ctx.phase.slice(ctx.t - config.window_s, ctx.t)
        if ctx.previous is None or len(window) < 5:
            return StageDecision.passthrough(fired=False, samples=len(window))
        flatness = phase_std(wrap_phase(np.asarray(window.values)))
        return self._decide(ctx, flatness, len(window))

    def run_batch(
        self, contexts: Sequence[EstimationContext]
    ) -> list[StageDecision]:
        """Flatness for many sessions in stacked circular-std calls.

        Groups contexts by window length (stacking needs a rectangular
        matrix); each same-length group becomes one
        :func:`stacked_phase_std` call.  Contexts with no previous
        estimate or a too-short window pass through exactly as in
        :meth:`run`, and singleton groups take the scalar path verbatim.
        """
        config = self._config
        decisions: list[StageDecision | None] = [None] * len(contexts)
        groups: dict[int, list[int]] = {}
        wrapped: dict[int, np.ndarray] = {}
        for i, ctx in enumerate(contexts):
            window = ctx.phase.slice(ctx.t - config.window_s, ctx.t)
            if ctx.previous is None or len(window) < 5:
                decisions[i] = StageDecision.passthrough(
                    fired=False, samples=len(window)
                )
                continue
            wrapped[i] = np.asarray(wrap_phase(np.asarray(window.values)))
            groups.setdefault(len(window), []).append(i)
        for length, slots in groups.items():
            if len(slots) == 1:
                i = slots[0]
                flatness = phase_std(wrapped[i])
                decisions[i] = self._decide(contexts[i], flatness, length)
                continue
            stacked = np.stack([wrapped[i] for i in slots])
            for i, row_std in zip(slots, stacked_phase_std(stacked)):
                decisions[i] = self._decide(contexts[i], float(row_std), length)
        return [d for d in decisions if d is not None]


class MatchStage(Stage):
    """Run Alg. 1 on the window ending at ``t`` (Secs. 3.4.3-3.4.5).

    Resamples the window onto the uniform grid, derives the continuity
    window around the previous estimate (growing with the time since the
    last *confident* estimate: stationary/held estimates re-issue an old
    value, and meanwhile the head may have kept moving), and matches.
    No usable window or no match diverts to the hold path.
    """

    name = "match"
    batch_aware = True

    def __init__(self, matcher: SeriesMatcher, config: ViHOTConfig) -> None:
        self._matcher = matcher
        self._config = config

    def _prepare(
        self, ctx: EstimationContext
    ) -> StageDecision | tuple[np.ndarray, float | None, float]:
        """The pre-match work: window, resample, continuity tolerance.

        Returns an early hold decision when no usable window exists,
        else the matcher inputs ``(query, center, tolerance)``.  Shared
        verbatim by :meth:`run` and :meth:`run_batch` so the batched
        path cannot drift from the sequential reference.
        """
        config = self._config
        t = ctx.t
        window = ctx.phase.slice(t - config.window_s, t)
        if len(window) < 2 or window.duration < 0.5 * config.window_s:
            return StageDecision.hold(fired=False, samples=len(window))
        uniform = resample_uniform(window, config.resample_rate_hz)
        query = wrap_phase(np.asarray(uniform.values))
        if len(query) < 2:
            return StageDecision.hold(fired=False, samples=len(query))
        center = None
        tolerance = float("inf")
        if ctx.previous is not None and ctx.previous.mode != "init":
            since = (
                ctx.last_confident_time
                if ctx.last_confident_time is not None
                else ctx.previous.time
            )
            dt = max(t - since, 0.0)
            center = ctx.previous.orientation
            tolerance = config.max_head_rate * dt + config.continuity_margin
        return query, center, tolerance

    def _decide(
        self,
        ctx: EstimationContext,
        match: MatchResult | None,
        tolerance: float,
    ) -> StageDecision:
        if match is None:
            return StageDecision.hold(fired=False, tolerance_rad=tolerance)
        ctx.match = match
        return StageDecision.passthrough(
            fired=True,
            tolerance_rad=tolerance,
            distance=match.distance,
            position_index=match.position_index,
            length=match.length,
            speed_ratio=match.speed_ratio,
        )

    def run(self, ctx: EstimationContext) -> StageDecision:
        prepared = self._prepare(ctx)
        if isinstance(prepared, StageDecision):
            return prepared
        query, center, tolerance = prepared
        match = self._matcher.match(query, ctx.position_index, center, tolerance)
        return self._decide(ctx, match, tolerance)

    def run_batch(
        self, contexts: Sequence[EstimationContext]
    ) -> list[StageDecision]:
        """All sessions' matches in one stacked DTW pass.

        Contexts with no usable window hold exactly as in :meth:`run`;
        the rest go through :meth:`SeriesMatcher.match_many`, which
        stacks same-shape queries into one anti-diagonal DP per
        candidate length.  Bit-identical to looping :meth:`run` (pinned
        by ``tests/core/test_engine_batching.py``).
        """
        decisions: list[StageDecision | None] = [None] * len(contexts)
        slots: list[int] = []
        queries: list[np.ndarray] = []
        positions: list[int] = []
        centers: list[float | None] = []
        tolerances: list[float] = []
        for i, ctx in enumerate(contexts):
            prepared = self._prepare(ctx)
            if isinstance(prepared, StageDecision):
                decisions[i] = prepared
                continue
            query, center, tolerance = prepared
            slots.append(i)
            queries.append(query)
            positions.append(ctx.position_index)
            centers.append(center)
            tolerances.append(tolerance)
        if slots:
            matches = self._matcher.match_many(
                queries, positions, centers, tolerances
            )
            for slot, match, tolerance in zip(slots, matches, tolerances):
                decisions[slot] = self._decide(contexts[slot], match, tolerance)
        return [d for d in decisions if d is not None]


class ForecastStage(Stage):
    """Read the orientation off the match — now, or ``horizon_s`` ahead.

    With a zero horizon the match end's orientation *is* the estimate;
    with a nonzero horizon Eq. (6) steps forward through the profile's
    own future (fires only in that case).
    """

    name = "forecast"

    def __init__(self, profile: CsiProfile, config: ViHOTConfig) -> None:
        self._profile = profile
        self._config = config

    def run(self, ctx: EstimationContext) -> StageDecision:
        if self._config.horizon_s > 0:
            ctx.orientation = forecast_orientation(
                self._profile, ctx.match, self._config.horizon_s
            )
            return StageDecision.passthrough(
                fired=True,
                orientation=ctx.orientation,
                horizon_s=self._config.horizon_s,
            )
        ctx.orientation = ctx.match.orientation
        return StageDecision.passthrough(fired=False, orientation=ctx.orientation)


class JumpFilterStage(Stage):
    """Reject estimates implying an impossible head speed (Sec. 3.6).

    Fires (diverting to hold) when the matched orientation implies a
    head yaw rate above ``max_head_rate`` relative to the previous
    trusted estimate.  Only applies when tracking (zero horizon).
    """

    name = "jump_filter"

    def __init__(self, config: ViHOTConfig) -> None:
        self._config = config

    def run(self, ctx: EstimationContext) -> StageDecision:
        config = self._config
        if (
            config.horizon_s == 0
            and ctx.previous is not None
            and ctx.previous.mode in ("csi", "held", "fallback")
        ):
            dt = ctx.t - ctx.previous.time
            if dt > 0:
                implied_rate = abs(ctx.orientation - ctx.previous.orientation) / dt
                if implied_rate > config.max_head_rate:
                    return StageDecision.hold(implied_rate=implied_rate)
                return StageDecision.passthrough(
                    fired=False, implied_rate=implied_rate
                )
        return StageDecision.passthrough(fired=False)


class EmitStage(Stage):
    """Terminal: package the chain's outcome as an :class:`Estimate`.

    The mode is the context's regime (``"csi"`` / ``"init"``), so the
    init/default-position distinction set by the position stage reaches
    the output no matter which path led here (match or stability fix).
    """

    name = "emit"

    def __init__(self, config: ViHOTConfig) -> None:
        self._config = config

    def run(self, ctx: EstimationContext) -> StageDecision:
        if ctx.match is not None:
            return StageDecision.emit(
                Estimate(
                    ctx.t,
                    ctx.t + self._config.horizon_s,
                    ctx.orientation,
                    ctx.regime,
                    ctx.match.position_index,
                    ctx.match.distance,
                ),
                mode=ctx.regime,
            )
        return StageDecision.emit(
            Estimate(
                ctx.t,
                ctx.t + self._config.horizon_s,
                ctx.orientation,
                ctx.regime,
                ctx.position_index,
            ),
            mode=ctx.regime,
        )


class HoldStage(Stage):
    """Terminal for the hold path: re-issue the previous estimate.

    Any stage can divert here (steering without a camera, no usable
    match window, jump filter).  With no previous estimate there is
    nothing to re-issue and the tick produces no estimate at all.  A
    jump-filtered hold keeps the rejected match's position index and
    DTW distance so diagnostics can still see the residual.
    """

    name = "hold"

    def __init__(self, config: ViHOTConfig) -> None:
        self._config = config

    def run(self, ctx: EstimationContext) -> StageDecision:
        if ctx.previous is None:
            return StageDecision.emit(None, fired=False, reason=ctx.hold_reason)
        position_index = ctx.match.position_index if ctx.match is not None else -1
        distance = ctx.match.distance if ctx.match is not None else float("nan")
        return StageDecision.emit(
            Estimate(
                ctx.t,
                ctx.t + self._config.horizon_s,
                ctx.previous.orientation,
                "held",
                position_index,
                distance,
            ),
            reason=ctx.hold_reason,
        )
