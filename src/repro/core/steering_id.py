"""The driver-steering identifier (Sec. 3.6.2).

A large steering input moves the driver's hands through the signal field
and swings the CSI phase exactly like a head turn would (Fig. 8).  The
phone IMU disambiguates: only steering turns the car body, so

* car yaw rate above a threshold  ->  the CSI variation is steering-borne;
  the tracker must not trust CSI and falls back (camera, or hold);
* car yaw rate flat               ->  the CSI variation is the head.

The identifier smooths the gyro over a short window to reject vibration
jitter, and extends each detection by a hold-off: the hands keep moving
(unwinding the wheel) slightly after the yaw rate decays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.series import TimeSeries


@dataclass
class SteeringIdentifier:
    """Classifies instants as steering-dominated from the phone gyro.

    Attributes:
        rate_threshold: |car yaw rate| [rad/s] above which the car is
            considered turning (default ~3.4 deg/s).
        smooth_window_s: gyro smoothing window.
        holdoff_s: how long after the yaw rate drops the identifier keeps
            flagging (wheel unwinding tail).
    """

    rate_threshold: float = 0.06
    smooth_window_s: float = 0.25
    holdoff_s: float = 0.6

    def __post_init__(self) -> None:
        if self.rate_threshold <= 0:
            raise ValueError("rate_threshold must be positive")
        if self.smooth_window_s <= 0 or self.holdoff_s < 0:
            raise ValueError("invalid smoothing/holdoff configuration")

    def smoothed_rate(self, imu: TimeSeries, t: float) -> float:
        """Mean |yaw rate| over the smoothing window ending at ``t``.

        :domain return: rad_per_s
        """
        window = imu.slice(t - self.smooth_window_s, t)
        if len(window) == 0:
            # No IMU data yet: report zero so the tracker trusts CSI, the
            # same behaviour as the prototype before the stream starts.
            return 0.0
        return float(np.mean(np.abs(np.asarray(window.values))))

    def is_steering(self, imu: TimeSeries, t: float) -> bool:
        """True when the CSI at ``t`` should be attributed to steering.

        Checks both the window ending at ``t`` and the one ending
        ``holdoff_s`` earlier, so the flag persists through the unwinding
        tail of a turn.
        """
        if self.smoothed_rate(imu, t) > self.rate_threshold:
            return True
        if self.holdoff_s > 0:
            return self.smoothed_rate(imu, t - self.holdoff_s) > self.rate_threshold
        return False

    def steering_mask(self, imu: TimeSeries, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`is_steering` over many timestamps."""
        times = np.asarray(times, dtype=np.float64)
        return np.array([self.is_steering(imu, float(t)) for t in times])
