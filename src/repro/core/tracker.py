"""The ViHOT run-time pipeline (Fig. 4, right half).

``ViHOTTracker`` wires the pieces together.  Per estimate time ``t``:

1. **Sanitise** the capture into the phase track ``phi(t)`` (Sec. 3.2).
2. **Position** — keep the head-position estimate ``i*`` fresh from
   stable facing-front intervals (Sec. 3.4.1).
3. **Steering check** — if the phone IMU says the car is turning, the CSI
   is steering-polluted: fall back to the camera (when available) or hold
   the last estimate (Sec. 3.6.2).
4. **Match** the windowed phase series in ``C_{i*}`` with DTW (Alg. 1)
   and read the orientation — or, with a nonzero horizon, **forecast**
   via Eq. (6).
5. **Jump filter** — reject estimates implying an impossible head speed
   (bursty lane-keeping corrections, Sec. 3.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.forecast import forecast_orientation
from repro.core.matching import SeriesMatcher
from repro.core.position import PositionEstimator
from repro.core.profile import CsiProfile
from repro.core.sanitize import sanitize_stream
from repro.core.steering_id import SteeringIdentifier
from repro.dsp.phase import phase_std, wrap_phase
from repro.dsp.resample import resample_uniform
from repro.dsp.series import TimeSeries
from repro.net.link import CsiStream


@dataclass(frozen=True)
class Estimate:
    """One tracker output.

    Attributes:
        time: when the estimate was produced [s].
        target_time: the instant the orientation refers to (``time`` for
            tracking, ``time + horizon`` for forecasting).
        orientation: estimated head yaw [rad].
        mode: ``"csi"`` (DTW match or a facing-front stability fix),
            ``"stationary"`` (flat window — head not moving, previous
            estimate re-issued), ``"fallback"`` (camera), ``"held"``
            (jump-filtered or no data) or ``"init"`` (before the first
            position fix; matched against the default position).
        position_index: head-position index used for the match (-1 when
            not applicable).
        dtw_distance: winning DTW distance (NaN unless mode involves a
            match).
    """

    time: float
    target_time: float
    orientation: float
    mode: str
    position_index: int = -1
    dtw_distance: float = float("nan")


@dataclass
class TrackingResult:
    """A session's worth of estimates, with array accessors."""

    estimates: List[Estimate] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.estimates)

    @property
    def times(self) -> np.ndarray:
        return np.array([e.time for e in self.estimates])

    @property
    def target_times(self) -> np.ndarray:
        return np.array([e.target_time for e in self.estimates])

    @property
    def orientations(self) -> np.ndarray:
        return np.array([e.orientation for e in self.estimates])

    @property
    def modes(self) -> List[str]:
        return [e.mode for e in self.estimates]

    def series(self) -> TimeSeries:
        """Estimates as a TimeSeries keyed on the target time."""
        return TimeSeries(self.target_times, self.orientations)

    def mode_fraction(self, mode: str) -> float:
        """Fraction of estimates produced in ``mode``."""
        if not self.estimates:
            return 0.0
        return sum(1 for e in self.estimates if e.mode == mode) / len(self.estimates)


class ViHOTTracker:
    """Device-free head-orientation tracking against a CSI profile."""

    def __init__(
        self,
        profile: CsiProfile,
        config: ViHOTConfig = ViHOTConfig(),
        camera=None,
    ) -> None:
        """Args:
            profile: the driver's CSI profile from the profiling stage.
            config: run-time parameters.
            camera: optional object with ``estimate_at(t) -> float`` used
                as the steering fallback (Sec. 3.6.2); without one the
                tracker holds its last estimate through steering events.
        """
        self._profile = profile
        self._config = config
        self._camera = camera
        self._matcher = SeriesMatcher(profile, config)
        self._steering = SteeringIdentifier(
            rate_threshold=config.steering_rate_threshold
        )

    @property
    def config(self) -> ViHOTConfig:
        return self._config

    @property
    def profile(self) -> CsiProfile:
        return self._profile

    def _match_window(
        self,
        phase: TimeSeries,
        t: float,
        position_index: int,
        previous: Optional["Estimate"],
        last_confident_time: Optional[float],
    ):
        """Resample the window ending at ``t`` and run Alg. 1."""
        config = self._config
        window = phase.slice(t - config.window_s, t)
        if len(window) < 2 or window.duration < 0.5 * config.window_s:
            return None
        uniform = resample_uniform(window, config.resample_rate_hz)
        query = wrap_phase(np.asarray(uniform.values))
        if len(query) < 2:
            return None
        center = None
        tolerance = float("inf")
        if previous is not None and previous.mode != "init":
            # The continuity window grows with the time since the last
            # *confident* estimate: stationary/held estimates re-issue an
            # old value, and meanwhile the head may have kept moving.
            since = last_confident_time if last_confident_time is not None else previous.time
            dt = max(t - since, 0.0)
            center = previous.orientation
            tolerance = config.max_head_rate * dt + config.continuity_margin
        return self._matcher.match(query, position_index, center, tolerance)

    def process(
        self,
        stream: CsiStream,
        estimate_stride_s: float = 0.05,
        t_start: Optional[float] = None,
    ) -> TrackingResult:
        """Track a whole capture session.

        Args:
            stream: the CSI capture (with its IMU side-channel, if any).
            estimate_stride_s: spacing between tracker outputs.
            t_start: first estimate time; defaults to one window plus one
                stability window after the capture start (Alg. 1 line 1's
                setup time).
        """
        if estimate_stride_s <= 0:
            raise ValueError("estimate_stride_s must be positive")
        config = self._config
        phase = sanitize_stream(stream.times, stream.csi)
        position = PositionEstimator(
            self._profile,
            window_s=config.stable_window_s,
            std_threshold_rad=config.stable_std_rad,
        )

        if t_start is None:
            t_start = phase.start + max(config.window_s, config.stable_window_s)
        default_position = len(self._profile) // 2

        result = TrackingResult()
        previous: Optional[Estimate] = None
        last_confident: Optional[float] = None
        t = float(t_start)
        while t <= phase.end + 1e-9:
            estimate = self._estimate_once(
                phase, stream, position, t, default_position, previous, last_confident
            )
            if estimate is not None:
                result.estimates.append(estimate)
                previous = estimate
                if estimate.mode in ("csi", "fallback"):
                    last_confident = estimate.time
            t += estimate_stride_s
        return result

    def _estimate_once(
        self,
        phase: TimeSeries,
        stream: CsiStream,
        position: PositionEstimator,
        t: float,
        default_position: int,
        previous: Optional[Estimate],
        last_confident_time: Optional[float] = None,
    ) -> Optional[Estimate]:
        config = self._config
        position_index = position.update(phase, t)
        mode_prefix = "csi"
        if position_index is None:
            position_index = default_position
            mode_prefix = "init"

        # Steering check: distrust CSI while the car is turning.
        if stream.imu is not None and self._steering.is_steering(stream.imu, t):
            if self._camera is not None:
                yaw = float(self._camera.estimate_at(t))
                return Estimate(t, t + config.horizon_s, yaw, "fallback")
            if previous is not None:
                return Estimate(
                    t, t + config.horizon_s, previous.orientation, "held"
                )
            return None

        # A *current* stability fix pins the orientation to 0 degrees
        # (Sec. 3.4.1: stable phase <=> driver facing front).
        if position.last_fix_time is not None and position.last_fix_time == t:
            return Estimate(
                t, t + config.horizon_s, 0.0, "csi", position_index
            )

        # Flat-but-short window: the head is not moving, so the previous
        # estimate still holds; a shape-less window would make DTW pick an
        # arbitrary equal-phase profile sample (see ViHOTConfig).
        window = phase.slice(t - config.window_s, t)
        if previous is not None and len(window) >= 5:
            flatness = phase_std(wrap_phase(np.asarray(window.values)))
            if flatness < config.stationary_std_rad:
                return Estimate(
                    t,
                    t + config.horizon_s,
                    previous.orientation,
                    "stationary",
                    position_index,
                )

        match = self._match_window(
            phase, t, position_index, previous, last_confident_time
        )
        if match is None:
            if previous is None:
                return None
            return Estimate(t, t + config.horizon_s, previous.orientation, "held")

        if config.horizon_s > 0:
            orientation = forecast_orientation(self._profile, match, config.horizon_s)
        else:
            orientation = match.orientation

        # Jump filter: heads cannot teleport (Sec. 3.6).
        if (
            config.horizon_s == 0
            and previous is not None
            and previous.mode in ("csi", "held", "fallback")
        ):
            dt = t - previous.time
            if dt > 0:
                implied_rate = abs(orientation - previous.orientation) / dt
                if implied_rate > config.max_head_rate:
                    return Estimate(
                        t,
                        t + config.horizon_s,
                        previous.orientation,
                        "held",
                        match.position_index,
                        match.distance,
                    )
        return Estimate(
            t,
            t + config.horizon_s,
            orientation,
            mode_prefix,
            match.position_index,
            match.distance,
        )
