"""The ViHOT batch frontend (Fig. 4, right half).

``ViHOTTracker`` is the whole-capture frontend over the shared
:class:`repro.core.engine.EstimationEngine`: it sanitises a logged
session once and walks the engine's decision chain at a fixed stride.
Per estimate time ``t`` the engine runs (see :mod:`repro.core.stages`):

1. **Position** — keep the head-position estimate ``i*`` fresh from
   stable facing-front intervals (Sec. 3.4.1).
2. **Steering check** — if the phone IMU says the car is turning, the CSI
   is steering-polluted: fall back to the camera (when available) or hold
   the last estimate (Sec. 3.6.2).
3. **Stability fix / stationary rule** — facing-front and flat-window
   short circuits.
4. **Match** the windowed phase series in ``C_{i*}`` with DTW (Alg. 1)
   and read the orientation — or, with a nonzero horizon, **forecast**
   via Eq. (6).
5. **Jump filter** — reject estimates implying an impossible head speed
   (bursty lane-keeping corrections, Sec. 3.6).

The streaming (``OnlineTracker``) and fused (``FusedTracker``) frontends
drive the very same engine; they differ only in how the context is fed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.engine import EstimationEngine
from repro.core.profile import CsiProfile
from repro.core.stages import CameraLike, Estimate, EstimationTrace, StageTrace
from repro.dsp.series import TimeSeries
from repro.net.link import CsiStream

__all__ = [
    "Estimate",
    "EstimationTrace",
    "StageTrace",
    "TrackingResult",
    "ViHOTTracker",
]


@dataclass
class TrackingResult:
    """A session's worth of estimates, with array accessors."""

    estimates: list[Estimate] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.estimates)

    @property
    def times(self) -> np.ndarray:
        return np.array([e.time for e in self.estimates])

    @property
    def target_times(self) -> np.ndarray:
        return np.array([e.target_time for e in self.estimates])

    @property
    def orientations(self) -> np.ndarray:
        return np.array([e.orientation for e in self.estimates])

    @property
    def modes(self) -> list[str]:
        return [e.mode for e in self.estimates]

    def series(self) -> TimeSeries:
        """Estimates as a TimeSeries keyed on the target time."""
        return TimeSeries(self.target_times, self.orientations)

    def mode_fraction(self, mode: str) -> float:
        """Fraction of estimates produced in ``mode``."""
        if not self.estimates:
            return 0.0
        return sum(1 for e in self.estimates if e.mode == mode) / len(self.estimates)


class ViHOTTracker:
    """Device-free head-orientation tracking against a CSI profile."""

    def __init__(
        self,
        profile: CsiProfile,
        config: ViHOTConfig | None = None,
        camera: CameraLike | None = None,
    ) -> None:
        """Args:
            profile: the driver's CSI profile from the profiling stage.
            config: run-time parameters.
            camera: optional object with ``estimate_at(t) -> float`` used
                as the steering fallback (Sec. 3.6.2); without one the
                tracker holds its last estimate through steering events.
        """
        self._engine = EstimationEngine(profile, config, camera=camera)

    @property
    def config(self) -> ViHOTConfig:
        return self._engine.config

    @property
    def profile(self) -> CsiProfile:
        return self._engine.profile

    @property
    def engine(self) -> EstimationEngine:
        """The shared stage-based estimation engine."""
        return self._engine

    def process(
        self,
        stream: CsiStream,
        estimate_stride_s: float = 0.05,
        t_start: float | None = None,
    ) -> TrackingResult:
        """Track a whole capture session.

        Args:
            stream: the CSI capture (with its IMU side-channel, if any).
            estimate_stride_s: spacing between tracker outputs.
            t_start: first estimate time; defaults to one window plus one
                stability window after the capture start (Alg. 1 line 1's
                setup time).
        """
        return TrackingResult(
            self._engine.track_stream(
                stream, estimate_stride_s=estimate_stride_s, t_start=t_start
            )
        )
