"""The workload registry: which estimation chain a session kind runs.

One CSI link, several things worth estimating from it.  The paper's
head tracker is one workload; occupant localization
(:mod:`repro.core.localize`, CarFi-style) and breathing-rate sensing
(:mod:`repro.core.breathing`, V2iFi-style) ride the same profile, the
same :class:`~repro.core.engine.EstimationEngine` and the same serve
layer — they differ only in the stage chain the engine drives.  This
module is the single place that mapping lives, so the serve layer can
open a session of any kind by name
(``SessionManager.open_session(..., workload="breathing")``) and the
scenario registry (:mod:`repro.scenarios`) can declare mixed fleets.

``"head"`` maps to the engine's default chain — constructed with
``stages=None`` — so head-tracking sessions are byte-for-byte the
pre-registry configuration.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.core.breathing import breathing_stages
from repro.core.config import ViHOTConfig
from repro.core.engine import EstimationEngine
from repro.core.localize import localization_stages
from repro.core.profile import CsiProfile
from repro.core.stages import CameraLike

__all__ = [
    "HEAD_WORKLOAD",
    "WorkloadFactory",
    "engine_for_workload",
    "register_workload",
    "workload_kinds",
]

#: The default workload: the paper's head-orientation tracker.
HEAD_WORKLOAD = "head"

#: Builds the engine serving one session of the workload.
WorkloadFactory = Callable[
    [CsiProfile, ViHOTConfig, "CameraLike | None"], EstimationEngine
]


def _head_engine(
    profile: CsiProfile, config: ViHOTConfig, camera: CameraLike | None
) -> EstimationEngine:
    return EstimationEngine(profile, config, camera=camera)


def _localize_engine(
    profile: CsiProfile, config: ViHOTConfig, camera: CameraLike | None
) -> EstimationEngine:
    # Localization has no steering fallback: the camera watches the
    # driver, not the rear seats.
    return EstimationEngine(
        profile, config, stages=localization_stages(profile, config)
    )


def _breathing_engine(
    profile: CsiProfile, config: ViHOTConfig, camera: CameraLike | None
) -> EstimationEngine:
    return EstimationEngine(profile, config, stages=breathing_stages(config))


_WORKLOADS: dict[str, WorkloadFactory] = {}


def register_workload(name: str, factory: WorkloadFactory) -> None:
    """Register (or replace) a workload kind by name."""
    if not name:
        raise ValueError("workload name must be non-empty")
    _WORKLOADS[name] = factory


def workload_kinds() -> tuple[str, ...]:
    """Every registered workload name, in registration order."""
    return tuple(_WORKLOADS)


def engine_for_workload(
    workload: str,
    profile: CsiProfile,
    config: ViHOTConfig | None = None,
    camera: CameraLike | None = None,
) -> EstimationEngine:
    """Build the engine serving one session of ``workload``.

    Raises:
        KeyError: for an unregistered workload name.
    """
    if workload not in _WORKLOADS:
        raise KeyError(
            f"unknown workload {workload!r}; registered: "
            f"{sorted(_WORKLOADS)}"
        )
    resolved = config if config is not None else ViHOTConfig()
    return _WORKLOADS[workload](profile, resolved, camera)


register_workload(HEAD_WORKLOAD, _head_engine)
register_workload("localize", _localize_engine)
register_workload("breathing", _breathing_engine)
