"""Signal-processing substrate: time series, resampling, DTW, phase math."""

from repro.dsp.series import TimeSeries
from repro.dsp.resample import resample_uniform, largest_gap, mean_rate
from repro.dsp.phase import (
    wrap_phase,
    circular_mean,
    phase_difference,
    unwrap_phase,
    phase_std,
)
from repro.dsp.dtw import dtw_distance, dtw_path, batched_dtw_distance
from repro.dsp.filters import moving_average, median_filter, hampel_filter
from repro.dsp.windows import sliding_windows, window_slice

__all__ = [
    "TimeSeries",
    "resample_uniform",
    "largest_gap",
    "mean_rate",
    "wrap_phase",
    "circular_mean",
    "phase_difference",
    "unwrap_phase",
    "phase_std",
    "dtw_distance",
    "dtw_path",
    "batched_dtw_distance",
    "moving_average",
    "median_filter",
    "hampel_filter",
    "sliding_windows",
    "window_slice",
]
