"""Dynamic Time Warping distances for CSI series matching.

Algorithm 1 of the paper matches a windowed CSI phase series against every
candidate segment of the CSI profile, for a range of candidate lengths
(Sec. 3.4.4-3.4.5).  Three entry points support that:

``dtw_distance``
    Reference implementation for a single pair of series.  Used by tests
    and small ablations; clarity over speed.

``dtw_path``
    Distance plus the optimal alignment path (needed by the forecasting
    ablation and useful for debugging matches).

``batched_dtw_distance``
    One query against a stack of equal-length candidates, vectorised over
    the batch along anti-diagonals of the DP table.  This is what makes the
    faithful Algorithm 1 (hundreds of candidate offsets per length)
    tractable in pure numpy.

Distances are normalised by ``len(a) + len(b)`` so that candidates of
different lengths compete fairly in the length search.

All entry points accept ``metric="abs"`` (plain ``|a - b|``) or
``metric="circular"`` (``|wrap(a - b)|``); the circular metric is the right
one for wrapped CSI phases, which would otherwise pay a spurious ~2 pi cost
when a series crosses the +-pi seam.
"""

from __future__ import annotations


import numpy as np

_INF = np.inf

_METRICS = ("abs", "circular")


def _as_1d(x: np.ndarray, name: str) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or len(x) == 0:
        raise ValueError(f"{name} must be a non-empty 1-D array, got shape {x.shape}")
    return x


def _pointwise_cost(a: np.ndarray, b: np.ndarray, metric: str) -> np.ndarray:
    """Element-wise cost between broadcastable arrays under ``metric``."""
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    diff = a - b
    if metric == "circular":
        diff = np.mod(diff + np.pi, 2.0 * np.pi) - np.pi
    return np.abs(diff)


def dtw_distance(
    a: np.ndarray,
    b: np.ndarray,
    band: int | None = None,
    metric: str = "abs",
) -> float:
    """Normalised DTW distance between two 1-D series.

    ``band`` is an optional Sakoe-Chiba constraint: cells further than
    ``band`` from the (rescaled) diagonal are forbidden.  Returns ``inf``
    when the band makes alignment infeasible.
    """
    a = _as_1d(a, "a")
    b = _as_1d(b, "b")
    m, n = len(a), len(b)
    cost = _pointwise_cost(a[:, None], b[None, :], metric)
    if band is not None:
        if band < 0:
            raise ValueError(f"band must be non-negative, got {band}")
        i_idx = np.arange(m)[:, None]
        j_idx = np.arange(n)[None, :]
        # Rescale the diagonal for unequal lengths before applying the band.
        off_diag = np.abs(i_idx * (n / m) - j_idx)
        cost = np.where(off_diag <= band, cost, _INF)

    dp = np.full((m + 1, n + 1), _INF)
    dp[0, 0] = 0.0
    for i in range(1, m + 1):
        # Vector over j is impossible (dp[i, j-1] dependency); plain loop.
        row_cost = cost[i - 1]
        prev = dp[i - 1]
        cur = dp[i]
        for j in range(1, n + 1):
            c = row_cost[j - 1]
            if c == _INF:
                continue
            best = min(prev[j], prev[j - 1], cur[j - 1])
            if best != _INF:
                cur[j] = c + best
    total = dp[m, n]
    if total == _INF:
        return _INF
    return float(total / (m + n))


def dtw_path(
    a: np.ndarray, b: np.ndarray, metric: str = "abs"
) -> tuple[float, list[tuple[int, int]]]:
    """DTW distance and optimal alignment path as ``[(i, j), ...]``.

    The path starts at ``(0, 0)`` and ends at ``(len(a)-1, len(b)-1)``.
    """
    a = _as_1d(a, "a")
    b = _as_1d(b, "b")
    m, n = len(a), len(b)
    cost = _pointwise_cost(a[:, None], b[None, :], metric)
    dp = np.full((m + 1, n + 1), _INF)
    dp[0, 0] = 0.0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            best = min(dp[i - 1, j], dp[i, j - 1], dp[i - 1, j - 1])
            dp[i, j] = cost[i - 1, j - 1] + best

    path: list[tuple[int, int]] = []
    i, j = m, n
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        moves = (
            (dp[i - 1, j - 1], i - 1, j - 1),
            (dp[i - 1, j], i - 1, j),
            (dp[i, j - 1], i, j - 1),
        )
        _, i, j = min(moves, key=lambda item: item[0])
    path.reverse()
    return float(dp[m, n] / (m + n)), path


def batched_dtw_distance(
    query: np.ndarray,
    candidates: np.ndarray,
    band: int | None = None,
    metric: str = "abs",
) -> np.ndarray:
    """Normalised DTW distance from ``query`` to each row of ``candidates``.

    ``query`` has shape ``(m,)``; ``candidates`` has shape ``(B, L)``.
    Returns shape ``(B,)``.  The DP table is evaluated along anti-diagonals
    so the per-cell min/add work is vectorised over all ``B`` candidates
    and all cells of the diagonal at once; the python-level loop runs only
    ``m + L - 1`` times.
    """
    query = _as_1d(query, "query")
    candidates = np.asarray(candidates, dtype=np.float64)
    if candidates.ndim != 2 or candidates.shape[1] == 0:
        raise ValueError(
            f"candidates must have shape (B, L) with L > 0, got {candidates.shape}"
        )
    m = len(query)
    n_batch, length = candidates.shape
    if n_batch == 0:
        return np.zeros(0)

    cost = _pointwise_cost(query[None, :, None], candidates[:, None, :], metric)
    if band is not None:
        if band < 0:
            raise ValueError(f"band must be non-negative, got {band}")
        i_idx = np.arange(m)[:, None]
        j_idx = np.arange(length)[None, :]
        off_diag = np.abs(i_idx * (length / m) - j_idx)
        cost = np.where(off_diag[None] <= band, cost, _INF)

    dp = np.full((n_batch, m + 1, length + 1), _INF)
    dp[:, 0, 0] = 0.0
    for k in range(2, m + length + 1):
        i_lo = max(1, k - length)
        i_hi = min(m, k - 1)
        if i_lo > i_hi:
            continue
        i_arr = np.arange(i_lo, i_hi + 1)
        j_arr = k - i_arr
        step_cost = cost[:, i_arr - 1, j_arr - 1]
        best = np.minimum(
            dp[:, i_arr - 1, j_arr],
            np.minimum(dp[:, i_arr, j_arr - 1], dp[:, i_arr - 1, j_arr - 1]),
        )
        dp[:, i_arr, j_arr] = step_cost + best
    return dp[:, m, length] / (m + length)
