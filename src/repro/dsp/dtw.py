"""Dynamic Time Warping distances for CSI series matching.

Algorithm 1 of the paper matches a windowed CSI phase series against every
candidate segment of the CSI profile, for a range of candidate lengths
(Sec. 3.4.4-3.4.5).  Three entry points support that:

``dtw_distance``
    Reference implementation for a single pair of series.  Used by tests
    and small ablations; clarity over speed.

``dtw_path``
    Distance plus the optimal alignment path (needed by the forecasting
    ablation and useful for debugging matches).

``batched_dtw_distance``
    One query against a stack of equal-length candidates, vectorised over
    the batch along anti-diagonals of the DP table.  This is what makes the
    faithful Algorithm 1 (hundreds of candidate offsets per length)
    tractable in pure numpy.

``stacked_dtw_distance``
    The multi-query form: ``S`` queries, each against its own candidate
    bank (or one bank shared by all queries), evaluated as a single
    ``(S, B)`` anti-diagonal DP.  This is the fleet-batching kernel: when
    ``S`` serving sessions run the same match stage on same-shape windows,
    one stacked call replaces ``S`` python-level DP loops.  Bit-identical
    to looping :func:`batched_dtw_distance` over the sessions (the DP is
    elementwise over the stacked axes).

The DP keeps only the two live anti-diagonals instead of the full
``(B, m+1, L+1)`` table, so memory scales with the batch times the query
length rather than their product with the candidate length.

Distances are normalised by ``len(a) + len(b)`` so that candidates of
different lengths compete fairly in the length search.

All entry points accept ``metric="abs"`` (plain ``|a - b|``) or
``metric="circular"`` (``|wrap(a - b)|``); the circular metric is the right
one for wrapped CSI phases, which would otherwise pay a spurious ~2 pi cost
when a series crosses the +-pi seam.
"""

from __future__ import annotations


import numpy as np

_INF = np.inf

_METRICS = ("abs", "circular")


def _as_1d(x: np.ndarray, name: str) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or len(x) == 0:
        raise ValueError(f"{name} must be a non-empty 1-D array, got shape {x.shape}")
    return x


def _pointwise_cost(a: np.ndarray, b: np.ndarray, metric: str) -> np.ndarray:
    """Element-wise cost between broadcastable arrays under ``metric``."""
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    diff = a - b
    if metric == "circular":
        diff = np.mod(diff + np.pi, 2.0 * np.pi) - np.pi
    return np.abs(diff)


def dtw_distance(
    a: np.ndarray,
    b: np.ndarray,
    band: int | None = None,
    metric: str = "abs",
) -> float:
    """Normalised DTW distance between two 1-D series.

    ``band`` is an optional Sakoe-Chiba constraint: cells further than
    ``band`` from the (rescaled) diagonal are forbidden.  Returns ``inf``
    when the band makes alignment infeasible.

    :shape a: (m,)
    :shape b: (L,)
    """
    a = _as_1d(a, "a")
    b = _as_1d(b, "b")
    m, n = len(a), len(b)
    cost = _pointwise_cost(a[:, None], b[None, :], metric)
    if band is not None:
        if band < 0:
            raise ValueError(f"band must be non-negative, got {band}")
        i_idx = np.arange(m)[:, None]
        j_idx = np.arange(n)[None, :]
        # Rescale the diagonal for unequal lengths before applying the band.
        off_diag = np.abs(i_idx * (n / m) - j_idx)
        cost = np.where(off_diag <= band, cost, _INF)

    dp = np.full((m + 1, n + 1), _INF)
    dp[0, 0] = 0.0
    for i in range(1, m + 1):
        # Vector over j is impossible (dp[i, j-1] dependency); plain loop.
        row_cost = cost[i - 1]
        prev = dp[i - 1]
        cur = dp[i]
        for j in range(1, n + 1):
            c = row_cost[j - 1]
            if c == _INF:
                continue
            best = min(prev[j], prev[j - 1], cur[j - 1])
            if best != _INF:
                cur[j] = c + best
    total = dp[m, n]
    if total == _INF:
        return _INF
    return float(total / (m + n))


def dtw_path(
    a: np.ndarray, b: np.ndarray, metric: str = "abs"
) -> tuple[float, list[tuple[int, int]]]:
    """DTW distance and optimal alignment path as ``[(i, j), ...]``.

    The path starts at ``(0, 0)`` and ends at ``(len(a)-1, len(b)-1)``.

    :shape a: (m,)
    :shape b: (L,)
    """
    a = _as_1d(a, "a")
    b = _as_1d(b, "b")
    m, n = len(a), len(b)
    cost = _pointwise_cost(a[:, None], b[None, :], metric)
    dp = np.full((m + 1, n + 1), _INF)
    dp[0, 0] = 0.0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            best = min(dp[i - 1, j], dp[i, j - 1], dp[i - 1, j - 1])
            dp[i, j] = cost[i - 1, j - 1] + best

    path: list[tuple[int, int]] = []
    i, j = m, n
    while i > 0 and j > 0:
        path.append((i - 1, j - 1))
        moves = (
            (dp[i - 1, j - 1], i - 1, j - 1),
            (dp[i - 1, j], i - 1, j),
            (dp[i, j - 1], i, j - 1),
        )
        _, i, j = min(moves, key=lambda item: item[0])
    path.reverse()
    return float(dp[m, n] / (m + n)), path


def _band_mask_cost(cost: np.ndarray, m: int, length: int, band: int) -> np.ndarray:
    """Apply the Sakoe-Chiba band to the last two ``(m, L)`` axes of ``cost``."""
    if band < 0:
        raise ValueError(f"band must be non-negative, got {band}")
    i_idx = np.arange(m)[:, None]
    j_idx = np.arange(length)[None, :]
    # Rescale the diagonal for unequal lengths before applying the band.
    off_diag = np.abs(i_idx * (length / m) - j_idx)
    return np.where(off_diag <= band, cost, _INF)


def _antidiagonal_dp(cost: np.ndarray) -> np.ndarray:
    """Total alignment cost ``dp[m, L]`` over the last two axes of ``cost``.

    ``cost`` has shape ``(..., m, L)``; leading axes are independent DP
    problems evaluated elementwise.  Anti-diagonal ``k`` of the classic
    ``(m+1, L+1)`` table depends only on diagonals ``k-1`` and ``k-2``, so
    just the two live diagonals are kept (``(..., m+1)`` each) instead of
    the full table; the python-level loop runs ``m + L - 1`` times and
    every min/add is vectorised over all leading axes and the whole
    diagonal at once.
    """
    m, length = cost.shape[-2], cost.shape[-1]
    lead = cost.shape[:-2]
    # Diagonal k stored indexed by i (j = k - i); cells off the diagonal
    # or outside the table stay infeasible, exactly like the full table.
    prev2 = np.full(lead + (m + 1,), _INF)  # diagonal k-2
    prev = np.full(lead + (m + 1,), _INF)  # diagonal k-1
    cur = np.full(lead + (m + 1,), _INF)  # diagonal k (reused)
    prev2[..., 0] = 0.0  # dp[0, 0]
    for k in range(2, m + length + 1):
        cur.fill(_INF)
        i_lo = max(1, k - length)
        i_hi = min(m, k - 1)
        if i_lo <= i_hi:
            i_arr = np.arange(i_lo, i_hi + 1)
            j_arr = k - i_arr
            step_cost = cost[..., i_arr - 1, j_arr - 1]
            # Same operand order as the full-table DP:
            # min(dp[i-1, j], min(dp[i, j-1], dp[i-1, j-1])).
            best = np.minimum(
                prev[..., i_arr - 1],
                np.minimum(prev[..., i_arr], prev2[..., i_arr - 1]),
            )
            cur[..., i_arr] = step_cost + best
        prev2, prev, cur = prev, cur, prev2
    return np.asarray(prev[..., m])


def batched_dtw_distance(
    query: np.ndarray,
    candidates: np.ndarray,
    band: int | None = None,
    metric: str = "abs",
) -> np.ndarray:
    """Normalised DTW distance from ``query`` to each row of ``candidates``.

    ``query`` has shape ``(m,)``; ``candidates`` has shape ``(B, L)``.
    Returns shape ``(B,)``.  The DP table is evaluated along anti-diagonals
    (two live diagonals, see :func:`_antidiagonal_dp`) so the per-cell
    min/add work is vectorised over all ``B`` candidates and all cells of
    the diagonal at once; the python-level loop runs only ``m + L - 1``
    times.

    :shape query: (m,)
    :shape candidates: (B, L)
    :shape return: (B,)
    :dtype return: float64
    """
    query = _as_1d(query, "query")
    candidates = np.asarray(candidates, dtype=np.float64)
    if candidates.ndim != 2 or candidates.shape[1] == 0:
        raise ValueError(
            f"candidates must have shape (B, L) with L > 0, got {candidates.shape}"
        )
    m = len(query)
    n_batch, length = candidates.shape
    if n_batch == 0:
        return np.zeros(0)

    cost = _pointwise_cost(query[None, :, None], candidates[:, None, :], metric)
    if band is not None:
        cost = _band_mask_cost(cost, m, length, band)
    return np.asarray(_antidiagonal_dp(cost) / (m + length))


def stacked_dtw_distance(
    queries: np.ndarray,
    candidates: np.ndarray,
    band: int | None = None,
    metric: str = "abs",
) -> np.ndarray:
    """Normalised DTW distances for a stack of queries in one DP.

    The multi-query (fleet-batched) form of :func:`batched_dtw_distance`:
    ``queries`` has shape ``(S, m)`` — one query per serving session —
    and ``candidates`` either ``(S, B, L)`` (a candidate bank per query)
    or ``(B, L)`` (one bank shared by every query, the common case when
    the sessions match against the same cached profile).  Returns shape
    ``(S, B)``: row ``s`` is bit-identical to
    ``batched_dtw_distance(queries[s], candidates[s], band, metric)``
    because the anti-diagonal DP is elementwise over the stacked axes.

    The cost tensor is ``(S, B, m, L)`` floats; callers stacking very
    large banks should chunk along ``S`` if memory is a concern.

    :shape queries: (S, m)
    :shape candidates: (B, L) | (S, B, L)
    :shape return: (S, B)
    :dtype return: float64
    """
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] == 0:
        raise ValueError(
            f"queries must have shape (S, m) with m > 0, got {queries.shape}"
        )
    candidates = np.asarray(candidates, dtype=np.float64)
    n_stack, m = queries.shape
    if candidates.ndim == 2:
        banks = candidates[None, :, :]
    elif candidates.ndim == 3:
        if candidates.shape[0] != n_stack:
            raise ValueError(
                f"per-query banks need leading size {n_stack}, "
                f"got {candidates.shape}"
            )
        banks = candidates
    else:
        raise ValueError(
            f"candidates must have shape (B, L) or (S, B, L), got {candidates.shape}"
        )
    if banks.shape[-1] == 0:
        raise ValueError(f"candidates must have L > 0, got {candidates.shape}")
    n_batch, length = banks.shape[-2], banks.shape[-1]
    if n_stack == 0 or n_batch == 0:
        return np.zeros((n_stack, n_batch))

    cost = _pointwise_cost(
        queries[:, None, :, None], banks[:, :, None, :], metric
    )
    if band is not None:
        cost = _band_mask_cost(cost, m, length, band)
    return np.asarray(_antidiagonal_dp(cost) / (m + length))
