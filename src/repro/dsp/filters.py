"""Simple robust filters for CSI phase streams.

The tracker uses a short moving average to tame thermal noise, and a
Hampel (median + MAD) filter to reject the "jumpy" single-sample outliers
the paper attributes to small bursty steering corrections (Sec. 3.6).
"""

from __future__ import annotations

import numpy as np


def _check_signal(x: np.ndarray, name: str = "x") -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {x.shape}")
    return x


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge shrinking (output length == input).

    ``window`` is the nominal number of taps; near the edges the window
    shrinks so no samples are invented.
    """
    x = _check_signal(x)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or len(x) == 0:
        return x.copy()
    kernel = np.ones(min(window, len(x)))
    sums = np.convolve(x, kernel, mode="same")
    counts = np.convolve(np.ones_like(x), kernel, mode="same")
    return sums / counts


def median_filter(x: np.ndarray, window: int) -> np.ndarray:
    """Centred running median with edge shrinking."""
    x = _check_signal(x)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1 or len(x) == 0:
        return x.copy()
    half = window // 2
    out = np.empty_like(x)
    for i in range(len(x)):
        lo = max(0, i - half)
        hi = min(len(x), i + half + 1)
        out[i] = np.median(x[lo:hi])
    return out


def hampel_filter(
    x: np.ndarray,
    window: int = 7,
    n_sigmas: float = 3.0,
) -> np.ndarray:
    """Replace outliers with the running median (Hampel identifier).

    A sample further than ``n_sigmas`` scaled MADs from the local median is
    replaced by that median.  With an all-constant window (MAD = 0) any
    deviating sample is treated as an outlier, which is the desired
    behaviour for a phase that should be flat while the head faces front.
    """
    x = _check_signal(x)
    if window < 3:
        raise ValueError(f"window must be >= 3, got {window}")
    if n_sigmas <= 0:
        raise ValueError(f"n_sigmas must be positive, got {n_sigmas}")
    medians = median_filter(x, window)
    out = x.copy()
    half = window // 2
    mad_scale = 1.4826  # MAD -> sigma for a normal distribution
    for i in range(len(x)):
        lo = max(0, i - half)
        hi = min(len(x), i + half + 1)
        mad = np.median(np.abs(x[lo:hi] - medians[i]))
        threshold = n_sigmas * mad_scale * mad
        if np.abs(x[i] - medians[i]) > threshold:
            out[i] = medians[i]
    return out
