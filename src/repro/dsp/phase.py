"""Phase arithmetic: wrapping, circular averaging, unwrapping.

CSI phases live on the circle, so plain arithmetic means (and plain
subtraction) are wrong near the +-pi seam.  The sanitiser (Sec. 3.2)
averages the inter-antenna phase difference across subcarriers; we do that
as a circular mean of unit phasors, which is exact and seam-free.
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike


#: Seam tolerance for :func:`wrap_phase`: anything within a few float64
#: ulps of -pi is the seam point, not a value infinitesimally inside the
#: interval.  ``np.mod`` rounding can land there for inputs near odd
#: multiples of pi, so an exact ``== -np.pi`` test misses them.
_SEAM_TOL = 4.0 * np.spacing(np.pi)


def wrap_phase(phase: ArrayLike) -> np.ndarray | float:
    """Wrap phase values to ``(-pi, pi]`` (vectorised).

    The -pi seam check is ulp-tolerant: results within ``_SEAM_TOL`` of
    ``-pi`` map to ``+pi`` (the documented side of the half-open
    interval) rather than only the exact bit pattern of ``-np.pi``.

    :domain phase: rad
    :domain return: wrapped_rad
    """
    wrapped = np.mod(np.asarray(phase, dtype=np.float64) + np.pi, 2.0 * np.pi) - np.pi
    wrapped = np.where(np.abs(wrapped + np.pi) <= _SEAM_TOL, np.pi, wrapped)
    if np.ndim(phase) == 0:
        return float(wrapped)
    return wrapped


def circular_mean(phases: ArrayLike, axis: int = -1) -> np.ndarray | float:
    """Mean direction of angles along ``axis`` (result in ``(-pi, pi]``).

    :domain phases: rad
    :domain return: wrapped_rad
    """
    phases = np.asarray(phases, dtype=np.float64)
    mean_vector = np.exp(1j * phases).mean(axis=axis)
    result = np.angle(mean_vector)
    if result.ndim == 0:
        return float(result)
    return result


def phase_difference(a: ArrayLike, b: ArrayLike) -> np.ndarray | float:
    """Wrapped difference ``a - b`` on the circle.

    :domain a: rad
    :domain b: rad
    :domain return: wrapped_rad
    """
    return wrap_phase(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))


def unwrap_phase(phases: np.ndarray) -> np.ndarray:
    """Unwrap a 1-D wrapped phase sequence into a continuous track.

    :domain phases: wrapped_rad
    :domain return: unwrapped_rad
    :shape phases: (T,)
    :shape return: (T,)
    :dtype return: float64
    """
    phases = np.asarray(phases, dtype=np.float64)
    if phases.ndim != 1:
        raise ValueError("unwrap_phase expects a 1-D array")
    return np.unwrap(phases)


def phase_std(phases: np.ndarray) -> float:
    """Circular standard deviation [rad] of a phase sample set.

    Uses the standard ``sqrt(-2 ln R)`` definition where ``R`` is the mean
    resultant length; 0 for perfectly aligned phases, growing without bound
    as the distribution spreads around the circle.

    :domain phases: rad
    """
    phases = np.asarray(phases, dtype=np.float64)
    if phases.size == 0:
        raise ValueError("phase_std of an empty array is undefined")
    resultant = np.abs(np.exp(1j * phases).mean())
    # Clamp: resultant can exceed 1 by a few ulps for constant input.
    resultant = min(1.0, float(resultant))
    if resultant <= 1e-12:
        return float(np.sqrt(-2.0 * np.log(1e-12)))
    return float(np.sqrt(-2.0 * np.log(resultant)))


def stacked_phase_std(phases: np.ndarray) -> np.ndarray:
    """Circular standard deviation of many same-length phase windows.

    The cross-session analogue of :func:`phase_std`: one complex
    exponential + row mean over the whole ``(S, m)`` matrix instead of
    ``S`` scalar passes.  ``mean(axis=1)`` over a contiguous row is the
    same pairwise summation as a 1-D ``mean()``, so every row's result
    is bitwise identical to ``phase_std(row)`` — including the clamp and
    the degenerate-resultant floor (pinned by
    ``tests/dsp/test_phase.py``).

    :domain phases: rad
    :shape phases: (S, m)
    :shape return: (S,)
    :dtype return: float64
    """
    phases = np.asarray(phases, dtype=np.float64)
    if phases.ndim != 2:
        raise ValueError(
            f"stacked_phase_std expects an (S, m) matrix, got ndim={phases.ndim}"
        )
    if phases.shape[1] == 0:
        raise ValueError("phase_std of an empty array is undefined")
    resultants = np.abs(np.exp(1j * phases).mean(axis=1))
    resultants = np.minimum(1.0, resultants)
    floor = float(np.sqrt(-2.0 * np.log(1e-12)))
    out = np.where(
        resultants <= 1e-12,
        floor,
        np.sqrt(-2.0 * np.log(np.maximum(resultants, 1e-300))),
    )
    return np.asarray(out, dtype=np.float64)
