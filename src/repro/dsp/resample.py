"""Resampling irregular CSI streams onto uniform grids.

Sec. 3.4.3 of the paper: "Since the CSI sampling interval is random due to
WiFi CSMA, we resample [the input and the profile] to the same sampling
rate before matching them."  Sec. 5.3.5 then attributes the accuracy loss
under interfering traffic to resampling across large packet gaps, so the
resampler reports gap statistics instead of hiding them.
"""

from __future__ import annotations


import numpy as np

from repro.dsp.series import TimeSeries


def resample_uniform(
    series: TimeSeries,
    rate_hz: float,
    t_start: float | None = None,
    t_end: float | None = None,
) -> TimeSeries:
    """Linearly resample ``series`` onto a uniform grid at ``rate_hz``.

    The grid covers ``[t_start, t_end]`` (defaulting to the series' own
    span) with spacing ``1/rate_hz``; the endpoints are clamped to the
    observed samples as linear interpolation cannot extrapolate.
    """
    if rate_hz <= 0:
        raise ValueError(f"rate_hz must be positive, got {rate_hz}")
    if len(series) < 2:
        raise ValueError("need at least 2 samples to resample")
    if t_start is None:
        t_start = series.start
    if t_end is None:
        t_end = series.end
    if t_end <= t_start:
        raise ValueError(f"empty resample span [{t_start}, {t_end}]")
    step = 1.0 / rate_hz
    n = int(np.floor((t_end - t_start) / step)) + 1
    grid = t_start + step * np.arange(n)
    return TimeSeries(grid, series.interp(grid))


def largest_gap(series: TimeSeries) -> float:
    """Largest inter-sample interval [s] (0 for fewer than 2 samples)."""
    if len(series) < 2:
        return 0.0
    return float(np.max(np.diff(series.times)))


def mean_rate(series: TimeSeries) -> float:
    """Average sampling rate [Hz] over the series span."""
    if len(series) < 2:
        return 0.0
    return (len(series) - 1) / series.duration
