"""Irregularly-sampled time series.

WiFi CSI arrives at CSMA-jittered packet times, so almost every signal in
this library is an irregular ``(times, values)`` pair.  ``TimeSeries`` is a
small immutable container with the slicing, interpolation and resampling
operations the tracker needs, keeping every call site honest about
timestamps instead of assuming a uniform grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np


@dataclass(frozen=True)
class TimeSeries:
    """A strictly time-ordered series of scalar (or vector) samples.

    ``times`` has shape ``(N,)`` and must be strictly increasing.
    ``values`` has shape ``(N,)`` or ``(N, D)``.
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.float64)
        values = np.asarray(self.values)
        if times.ndim != 1:
            raise ValueError(f"times must be 1-D, got shape {times.shape}")
        if len(values) != len(times):
            raise ValueError(
                f"length mismatch: {len(times)} times vs {len(values)} values"
            )
        if len(times) > 1 and np.any(np.diff(times) <= 0):
            raise ValueError("times must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.times)

    @property
    def duration(self) -> float:
        """Time span [s] between first and last sample (0 for <2 samples)."""
        if len(self) < 2:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def start(self) -> float:
        if len(self) == 0:
            raise ValueError("empty series has no start time")
        return float(self.times[0])

    @property
    def end(self) -> float:
        if len(self) == 0:
            raise ValueError("empty series has no end time")
        return float(self.times[-1])

    def slice(self, t_start: float, t_end: float) -> TimeSeries:
        """Samples with ``t_start <= t <= t_end`` (inclusive both ends)."""
        if t_end < t_start:
            raise ValueError(f"t_end ({t_end}) < t_start ({t_start})")
        lo = int(np.searchsorted(self.times, t_start, side="left"))
        hi = int(np.searchsorted(self.times, t_end, side="right"))
        return TimeSeries(self.times[lo:hi], self.values[lo:hi])

    def before(self, t: float) -> TimeSeries:
        """Samples with time strictly less than ``t``."""
        hi = int(np.searchsorted(self.times, t, side="left"))
        return TimeSeries(self.times[:hi], self.values[:hi])

    def interp(self, query_times: np.ndarray) -> np.ndarray:
        """Linear interpolation at ``query_times`` (clamped at the ends)."""
        if len(self) == 0:
            raise ValueError("cannot interpolate an empty series")
        query_times = np.asarray(query_times, dtype=np.float64)
        values = np.asarray(self.values, dtype=np.float64)
        if values.ndim == 1:
            return np.interp(query_times, self.times, values)
        columns = [
            np.interp(query_times, self.times, values[:, d])
            for d in range(values.shape[1])
        ]
        return np.stack(columns, axis=-1)

    def value_at(self, t: float) -> np.ndarray | float:
        """Interpolated value at a single time ``t``."""
        result = self.interp(np.array([t]))
        return result[0]

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> TimeSeries:
        """Apply ``fn`` to the value array, keeping timestamps."""
        mapped = fn(self.values)
        return TimeSeries(self.times, mapped)

    def shift(self, dt: float) -> TimeSeries:
        """Return a copy with all timestamps shifted by ``dt``."""
        return TimeSeries(self.times + dt, self.values)

    def concat(self, other: TimeSeries) -> TimeSeries:
        """Append ``other`` (which must start after this series ends)."""
        if len(self) == 0:
            return other
        if len(other) == 0:
            return self
        if other.times[0] <= self.times[-1]:
            raise ValueError(
                "cannot concat: second series starts at "
                f"{other.times[0]} <= {self.times[-1]}"
            )
        return TimeSeries(
            np.concatenate([self.times, other.times]),
            np.concatenate([self.values, other.values]),
        )

    @staticmethod
    def empty(value_dims: int | None = None) -> TimeSeries:
        """An empty series (optionally with a vector value dimension)."""
        shape = (0,) if value_dims is None else (0, value_dims)
        return TimeSeries(np.zeros(0), np.zeros(shape))
