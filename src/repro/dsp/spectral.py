"""Spectral analysis of CSI streams: Doppler spread and motion energy.

Sec. 2.2 of the paper argues that "the 2.4 GHz WiFi carrier frequency
ensures a very small Doppler frequency shift under the human head
rotation speed", which is why CSI sampling has no motion-blur analogue.
This module makes that claim measurable:

* ``doppler_spectrum`` — the power spectral density of the complex CSI
  phasor around DC, whose width is the Doppler spread of the channel;
* ``doppler_spread`` — its RMS bandwidth;
* ``expected_head_doppler`` — the kinematic bound
  ``f_D = 2 * v / lambda`` for a scattering centre moving at ``v``.

A head turning at 120 deg/s moves its scattering centre a few cm/s to a
few dm/s: tens of hertz of Doppler versus a 312.5 kHz subcarrier spacing
and a 500 Hz sampling rate — comfortably narrowband, exactly the paper's
point.
"""

from __future__ import annotations


import numpy as np

from repro.dsp.resample import resample_uniform
from repro.dsp.series import TimeSeries


def doppler_spectrum(
    times: np.ndarray,
    csi: np.ndarray,
    rate_hz: float = 200.0,
    rx: int = 0,
    subcarrier: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Power spectral density of one CSI tap's complex time series.

    The irregularly-sampled tap is resampled to ``rate_hz`` (I and Q
    separately), windowed, and Fourier transformed.  Returns
    ``(frequencies_hz, power)`` with the spectrum centred on DC.

    :domain rate_hz: hz
    :shape times: (T,)
    :shape csi: (T, n_rx, F)
    :dtype csi: complex128
    """
    times = np.asarray(times, dtype=np.float64)
    csi = np.asarray(csi)
    if csi.ndim != 3:
        raise ValueError(f"csi must have shape (T, n_rx, F), got {csi.shape}")
    if len(times) < 8:
        raise ValueError("need at least 8 samples for a spectrum")
    tap = csi[:, rx, subcarrier]
    i_series = resample_uniform(TimeSeries(times, tap.real), rate_hz)
    q_series = resample_uniform(TimeSeries(times, tap.imag), rate_hz)
    phasor = np.asarray(i_series.values) + 1j * np.asarray(q_series.values)
    phasor = phasor - phasor.mean()  # remove the static (zero-Doppler) paths
    window = np.hanning(len(phasor))
    spectrum = np.fft.fftshift(np.fft.fft(phasor * window))
    freqs = np.fft.fftshift(np.fft.fftfreq(len(phasor), d=1.0 / rate_hz))
    power = np.abs(spectrum) ** 2
    total = power.sum()
    if total > 0:
        power = power / total
    return freqs, power


def doppler_spread(freqs: np.ndarray, power: np.ndarray) -> float:
    """RMS Doppler bandwidth [Hz] of a normalised spectrum.

    :domain freqs: hz
    :domain return: hz
    :shape freqs: (K,)
    :shape power: (K,)
    """
    freqs = np.asarray(freqs, dtype=np.float64)
    power = np.asarray(power, dtype=np.float64)
    if freqs.shape != power.shape or freqs.ndim != 1:
        raise ValueError("freqs and power must be matching 1-D arrays")
    total = power.sum()
    if total <= 0:
        return 0.0
    weights = power / total
    centroid = float(np.sum(weights * freqs))
    return float(np.sqrt(np.sum(weights * (freqs - centroid) ** 2)))


def expected_head_doppler(
    turn_speed_rad_s: float,
    lever_arm_m: float = 0.09,
    wavelength_m: float = 0.123,
) -> float:
    """Kinematic Doppler bound for a rotating head [Hz].

    The scattering centre rides at ``lever_arm_m`` from the rotation
    axis, so its speed is ``omega * r`` and the (bistatic, worst-case)
    Doppler is ``2 v / lambda``.

    :domain turn_speed_rad_s: rad_per_s
    :domain return: hz
    """
    if turn_speed_rad_s < 0 or lever_arm_m < 0:
        raise ValueError("speed and lever arm must be non-negative")
    if wavelength_m <= 0:
        raise ValueError("wavelength must be positive")
    speed = turn_speed_rad_s * lever_arm_m
    return 2.0 * speed / wavelength_m
