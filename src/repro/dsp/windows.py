"""Sliding-window helpers for series matching.

Algorithm 1 enumerates every profile segment of a candidate length; these
helpers materialise such segment stacks efficiently using numpy stride
tricks (read-only views, no copying).
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


def sliding_windows(x: np.ndarray, length: int, stride: int = 1) -> np.ndarray:
    """All windows of ``length`` samples, advancing by ``stride``.

    Returns a read-only view of shape ``(num_windows, length)``.  Raises if
    the signal is shorter than one window.  In matching terms the result
    is a candidate bank: ``B`` windows of ``L`` samples each.

    :shape x: (T,)
    :shape return: (B, L)
    :dtype return: float64
    """
    x = np.ascontiguousarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"x must be 1-D, got shape {x.shape}")
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    if len(x) < length:
        raise ValueError(f"signal of {len(x)} samples has no window of {length}")
    num = (len(x) - length) // stride + 1
    item = x.strides[0]
    view = np.lib.stride_tricks.as_strided(
        x, shape=(num, length), strides=(stride * item, item), writeable=False
    )
    return view


def window_slice(
    times: np.ndarray, t_end: float, window_s: float
) -> tuple[int, int]:
    """Index range ``(lo, hi)`` covering ``[t_end - window_s, t_end]``.

    ``times`` must be sorted ascending.  The range is half-open and may be
    empty if no samples fall inside the window.

    :shape times: (T,)
    """
    times = np.asarray(times, dtype=np.float64)
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    lo = int(np.searchsorted(times, t_end - window_s, side="left"))
    hi = int(np.searchsorted(times, t_end, side="right"))
    return lo, hi


def iter_estimate_times(
    t_start: float, t_end: float, stride_s: float
) -> Iterator[float]:
    """Yield evaluation timestamps from ``t_start`` to ``t_end``."""
    if stride_s <= 0:
        raise ValueError(f"stride_s must be positive, got {stride_s}")
    t = t_start
    while t <= t_end + 1e-9:
        yield t
        t += stride_s
