"""Evaluation harness: metrics, scenarios, per-figure experiment runners."""

from repro.experiments.metrics import (
    angular_errors_deg,
    error_cdf,
    summarize_errors,
    ErrorSummary,
)
from repro.experiments.scenarios import (
    ScenarioConfig,
    Scenario,
    build_scenario,
    DRIVERS,
)
from repro.experiments.runner import (
    run_profiling,
    run_tracking_session,
    SessionResult,
)
from repro.experiments import extensions, figures, plots, presets
from repro.experiments.presets import preset_config, preset_scenario
from repro.experiments.report import format_cdf_rows, format_summary_table

__all__ = [
    "angular_errors_deg",
    "error_cdf",
    "summarize_errors",
    "ErrorSummary",
    "ScenarioConfig",
    "Scenario",
    "build_scenario",
    "DRIVERS",
    "run_profiling",
    "run_tracking_session",
    "SessionResult",
    "figures",
    "extensions",
    "plots",
    "presets",
    "preset_config",
    "preset_scenario",
    "format_cdf_rows",
    "format_summary_table",
]
