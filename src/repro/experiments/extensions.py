"""Experiments for the paper's Sec. 7 discussion/future-work items.

These are not figures in the paper; they quantify the extensions the
authors sketch:

* ``extension_5ghz`` — "Choice of radio frequency": rerun the default
  accuracy experiment on a 5 GHz channel.  The shorter wavelength roughly
  doubles phase sensitivity per centimetre of path change.
* ``extension_fusion`` — "Combining with cameras": the duty-cycled
  camera + CSI fusion of :mod:`repro.core.fusion`, traded against the
  camera energy budget.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.fusion import FusedTracker, FusionConfig
from repro.experiments.metrics import error_cdf, summarize_errors
from repro.experiments.runner import run_campaign, run_profiling
from repro.experiments.scenarios import build_scenario
from repro.sensors.camera import CameraTracker


def _cdf_dict(errors: np.ndarray) -> dict[str, np.ndarray]:
    grid, frac = error_cdf(errors)
    return {"grid_deg": grid, "cdf": frac}


def extension_5ghz(
    seed: int = 0, num_sessions: int = 2, runtime_duration_s: float = 12.0
) -> dict[str, dict]:
    """Default accuracy experiment on 2.4 GHz vs 5 GHz."""
    out: dict[str, dict] = {}
    for band in ("2.4GHz", "5GHz"):
        scenario = build_scenario(
            seed=seed, band=band, runtime_duration_s=runtime_duration_s
        )
        campaign = run_campaign(scenario, num_sessions=num_sessions)
        errors = campaign.errors_deg
        out[band] = {"summary": summarize_errors(errors), **_cdf_dict(errors)}
    return out


def extension_fusion(
    duty_cycles: Sequence[float] = (0.0, 0.3, 1.0),
    seed: int = 0,
    num_sessions: int = 2,
    runtime_duration_s: float = 12.0,
) -> dict[str, dict]:
    """Camera+CSI fusion accuracy vs the camera's duty cycle.

    ``0.0`` is pure ViHOT; ``1.0`` is an always-on camera fused in at
    every frame.  The interesting point is the middle: most of the
    accuracy for a fraction of the camera energy.
    """
    scenario = build_scenario(
        seed=seed, runtime_duration_s=runtime_duration_s, runtime_motion="glance"
    )
    profile = run_profiling(scenario)
    out: dict[str, dict] = {}
    for duty in duty_cycles:
        errors = []
        for session in range(num_sessions):
            stream, scene = scenario.runtime_capture(session)
            camera = CameraTracker(
                scene, rng=np.random.default_rng((seed, 91, session))
            )
            tracker = FusedTracker(
                profile,
                camera,
                ViHOTConfig(),
                FusionConfig(camera_duty_cycle=float(duty)),
                rng=np.random.default_rng((seed, 92, session)),
            )
            result = tracker.process(stream, estimate_stride_s=0.05)
            truth_stream = scenario.headset_truth(
                scene, float(stream.times[-1]) + 0.1, session
            )
            truth = truth_stream.interp(result.target_times)
            err = np.abs(np.rad2deg(result.orientations - truth))
            active = result.target_times > scenario.config.runtime_front_hold_s
            errors.append(err[active])
        pooled = np.concatenate(errors)
        label = f"camera duty {duty:.0%}"
        out[label] = {"summary": summarize_errors(pooled), **_cdf_dict(pooled)}
    return out
