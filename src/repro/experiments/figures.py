"""Per-figure experiment runners — one function per paper figure.

Each function regenerates the data behind one figure/table of the paper's
evaluation (Sec. 5) and returns a plain dict of series, so benchmarks can
print the rows and tests can assert the qualitative shape.  Durations and
session counts default to CI-friendly values; every knob scales up to the
paper's full protocol (60 s x 10 sessions).

Index (see DESIGN.md): fig02, fig03, fig08, fig10, fig11, fig12, fig13a,
fig13b, fig13c, fig13d, fig14, fig15, fig16, fig17a, fig17b, fig17c,
fig17d, sampling_rate, plus the ablations called out in DESIGN.md.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro import constants
from repro.baselines.nearest import NearestFingerprintTracker
from repro.baselines.pointmap import PointMappingTracker
from repro.core.config import ViHOTConfig
from repro.core.sanitize import antenna_phase_difference, sanitize_stream
from repro.core.tracker import ViHOTTracker
from repro.dsp.phase import phase_std, wrap_phase
from repro.dsp.resample import largest_gap, mean_rate
from repro.dsp.series import TimeSeries
from repro.experiments.metrics import error_cdf, summarize_errors
from repro.experiments.runner import (
    run_campaign,
    run_profiling,
    run_tracking_session,
)
from repro.experiments.scenarios import (
    DRIVERS,
    Scenario,
    ScenarioConfig,
    build_scenario,
)
from repro.net.link import CsiStream
from repro.sensors.camera import CameraTracker


def _cdf_dict(errors: np.ndarray) -> dict[str, np.ndarray]:
    grid, frac = error_cdf(errors)
    return {"grid_deg": grid, "cdf": frac}


# ----------------------------------------------------------------------
# Motivation figures
# ----------------------------------------------------------------------
def fig02_head_plane(duration_s: float = 16.0, seed: int = 0) -> dict[str, np.ndarray]:
    """Fig. 2: the driver's head turns almost entirely in the yaw plane.

    The headset logs yaw/pitch/roll while the driver checks both
    roadsides.  Pitch and roll are small mechanical couplings of the
    neck (a few percent of the yaw) plus sensor noise.
    """
    scenario = build_scenario(seed=seed, runtime_duration_s=duration_s)
    scene = scenario.runtime_scene(0)
    headset = scenario.headset_truth(scene, duration_s)
    rng = np.random.default_rng((seed, 202))
    yaw = np.asarray(headset.values)
    pitch = 0.06 * yaw + rng.normal(0.0, np.deg2rad(1.0), len(yaw))
    roll = -0.04 * yaw + rng.normal(0.0, np.deg2rad(1.0), len(yaw))
    return {
        "time_s": headset.times,
        "yaw_deg": np.rad2deg(yaw),
        "pitch_deg": np.rad2deg(pitch),
        "roll_deg": np.rad2deg(roll),
    }


def fig03_phase_curves(
    leans_m: Sequence[float] = (-0.02, 0.0, 0.02),
    seed: int = 0,
    profile_seconds: float = 8.0,
) -> dict[float, dict[str, np.ndarray]]:
    """Fig. 3: CSI phase vs head orientation — parallel curves per position.

    Returns, per lean, the (orientation, phase) point cloud of one
    profiling-style sweep.
    """
    out: dict[float, dict[str, np.ndarray]] = {}
    for k, lean in enumerate(leans_m):
        scenario = build_scenario(
            seed=seed + k,
            num_positions=1,
            profile_seconds=profile_seconds,
        )
        scene = scenario.profiling_scene(0)
        scene.driver_positions = scenario.driver.position_model(
            lean_m=float(lean), seed=500 + k
        )
        link = scenario._link(scene, 55, extra=k)
        total = scenario.config.profile_front_hold_s + profile_seconds
        stream = link.capture(0.0, total, with_imu=False)
        phase = sanitize_stream(stream.times, stream.csi)
        yaw = scene.driver_yaw(phase.times)
        out[float(lean)] = {
            "orientation_deg": np.rad2deg(yaw),
            "phase_rad": wrap_phase(np.asarray(phase.values)),
        }
    return out


def fig08_steering_phase(segment_s: float = 6.0, seed: int = 0) -> dict[str, np.ndarray]:
    """Fig. 8: wheel turning moves the CSI phase without any head motion."""
    from repro.cabin.trajectory import PiecewiseTrajectory, TrajectoryBuilder

    # Segment 1: head turns, hands still.  Segment 2: head still, the
    # driver saws the wheel back and forth.
    scenario = build_scenario(
        seed=seed,
        runtime_motion="scan",
        runtime_duration_s=segment_s,
        runtime_front_hold_s=1.0,
        steering="none",
    )
    scene = scenario.runtime_scene(0)
    boundary = segment_s + 1.0

    builder = TrajectoryBuilder(0.0, 0.0)
    builder.hold(boundary)  # wheel straight while the head turns
    for _ in range(4):
        builder.ramp_to(np.deg2rad(120.0), np.deg2rad(180.0))
        builder.ramp_to(-np.deg2rad(120.0), np.deg2rad(180.0))
    builder.ramp_to(0.0, np.deg2rad(180.0))
    wheel = builder.build(smoothing_s=0.15)

    head = scene.driver_yaw_trajectory
    scene.driver_yaw_trajectory = PiecewiseTrajectory(
        np.concatenate([head.knot_times, [wheel.end]]),
        np.concatenate([head.knot_values, [head.knot_values[-1]]]),
        head.smoothing_s,
    )
    scene.steering_trajectory = wheel

    link = scenario._link(scene, 56)
    stream = link.capture(0.0, float(wheel.end), with_imu=True)
    phase = sanitize_stream(stream.times, stream.csi)
    return {
        "time_s": phase.times,
        "phase_rad": wrap_phase(np.asarray(phase.values)),
        "head_yaw_deg": np.rad2deg(scene.driver_yaw(phase.times)),
        "wheel_angle_deg": np.rad2deg(scene.steering_angle(phase.times)),
        "segment_boundary_s": boundary,
    }


# ----------------------------------------------------------------------
# Sec. 5.2 — configuration sweeps
# ----------------------------------------------------------------------
def fig10_prediction(
    horizons_s: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4),
    seed: int = 0,
    num_sessions: int = 2,
    runtime_duration_s: float = 12.0,
) -> dict[float, dict]:
    """Fig. 10: tracking/forecast error vs prediction horizon."""
    scenario = build_scenario(seed=seed, runtime_duration_s=runtime_duration_s)
    profile = run_profiling(scenario)
    out: dict[float, dict] = {}
    for horizon in horizons_s:
        campaign = run_campaign(
            scenario,
            ViHOTConfig(horizon_s=float(horizon)),
            num_sessions=num_sessions,
            profile=profile,
        )
        errors = campaign.errors_deg
        out[float(horizon)] = {"summary": summarize_errors(errors), **_cdf_dict(errors)}
    return out


def fig11_layout_curves(
    layouts: Sequence[str] = ("behind-driver", "center-console"),
    seed: int = 0,
    profile_seconds: float = 6.0,
) -> dict[str, dict[str, np.ndarray]]:
    """Fig. 11: the CSI-orientation curve depends on antenna placement."""
    out: dict[str, dict[str, np.ndarray]] = {}
    for layout in layouts:
        scenario = build_scenario(
            seed=seed, rx_layout=layout, profile_seconds=profile_seconds
        )
        scene = scenario.profiling_scene(scenario.config.num_positions // 2)
        link = scenario._link(scene, 57)
        total = scenario.config.profile_front_hold_s + profile_seconds
        stream = link.capture(0.0, total, with_imu=False)
        phase = sanitize_stream(stream.times, stream.csi)
        out[layout] = {
            "time_s": phase.times,
            "phase_rad": wrap_phase(np.asarray(phase.values)),
            "orientation_deg": np.rad2deg(scene.driver_yaw(phase.times)),
        }
    return out


def fig12_antenna_layouts(
    layouts: Sequence[str] = (
        "behind-driver",
        "center-console",
        "rear-shelf",
        "a-pillars",
        "overhead",
    ),
    seed: int = 0,
    num_sessions: int = 2,
    runtime_duration_s: float = 12.0,
) -> dict[str, dict]:
    """Fig. 12: tracking-error CDF per RX antenna placement."""
    out: dict[str, dict] = {}
    for layout in layouts:
        scenario = build_scenario(
            seed=seed, rx_layout=layout, runtime_duration_s=runtime_duration_s
        )
        campaign = run_campaign(scenario, num_sessions=num_sessions)
        errors = campaign.errors_deg
        out[layout] = {"summary": summarize_errors(errors), **_cdf_dict(errors)}
    return out


def fig13a_profile_interval(
    intervals: Sequence[str] = ("1 minute", "1 hour", "1 day", "1 week"),
    seed: int = 0,
    num_sessions: int = 2,
    runtime_duration_s: float = 12.0,
) -> dict[str, dict]:
    """Fig. 13a: profiling-to-runtime interval.

    Sec. 5.2.4 attributes the degradation entirely to the driver leaving
    the seat: any interval >= 1 hour implies a re-seat, whose head
    position differs from the profiled one by a similar amount whether
    an hour or a week passed.  We model exactly that: "1 minute" keeps
    the profiled seating; longer intervals add a ~1.5 cm lean re-seat
    plus a few millimetres of posture-height change the lean-only
    profile grid cannot absorb (growing marginally with the interval).
    """
    reseat = {
        "1 minute": (0.0, 0.0),
        "1 hour": (0.015, 0.004),
        "1 day": (0.016, 0.0045),
        "1 week": (0.017, 0.005),
    }
    out: dict[str, dict] = {}
    scenario0 = build_scenario(seed=seed, runtime_duration_s=runtime_duration_s)
    profile = run_profiling(scenario0)
    for interval in intervals:
        if interval not in reseat:
            raise ValueError(f"unknown interval {interval!r}")
        lean, height = reseat[interval]
        scenario = build_scenario(
            seed=seed + 13,
            runtime_duration_s=runtime_duration_s,
            reseat_offset_m=lean,
            reseat_height_m=height,
        )
        campaign = run_campaign(scenario, num_sessions=num_sessions, profile=profile)
        errors = campaign.errors_deg
        out[interval] = {"summary": summarize_errors(errors), **_cdf_dict(errors)}
    return out


def fig13b_window_size(
    windows_s: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3),
    seed: int = 0,
    num_sessions: int = 2,
    runtime_duration_s: float = 12.0,
) -> dict[float, dict]:
    """Fig. 13b: CSI input window size sweep."""
    scenario = build_scenario(seed=seed, runtime_duration_s=runtime_duration_s)
    profile = run_profiling(scenario)
    out: dict[float, dict] = {}
    for window in windows_s:
        campaign = run_campaign(
            scenario,
            ViHOTConfig(window_s=float(window)),
            num_sessions=num_sessions,
            profile=profile,
        )
        errors = campaign.errors_deg
        out[float(window)] = {"summary": summarize_errors(errors), **_cdf_dict(errors)}
    return out


def fig13c_turn_speed(
    speeds_deg_s: Sequence[float] = (100.0, 111.0, 124.0, 147.0),
    seed: int = 0,
    num_sessions: int = 2,
    runtime_duration_s: float = 12.0,
    window_s: float = 0.3,
) -> dict[float, dict]:
    """Fig. 13c: head-turning speed sweep (300 ms window, as in the paper)."""
    out: dict[float, dict] = {}
    profile = None
    for speed in speeds_deg_s:
        scenario = build_scenario(
            seed=seed,
            runtime_duration_s=runtime_duration_s,
            runtime_turn_speed=np.deg2rad(float(speed)),
        )
        if profile is None:
            profile = run_profiling(scenario)
        campaign = run_campaign(
            scenario,
            ViHOTConfig(window_s=window_s),
            num_sessions=num_sessions,
            profile=profile,
        )
        errors = campaign.errors_deg
        out[float(speed)] = {"summary": summarize_errors(errors), **_cdf_dict(errors)}
    return out


def fig13d_drivers(
    drivers: Sequence[str] = ("A", "B", "C"),
    seed: int = 0,
    num_sessions: int = 2,
    runtime_duration_s: float = 12.0,
) -> dict[str, dict]:
    """Fig. 13d: per-driver accuracy, each against their own profile."""
    out: dict[str, dict] = {}
    for k, driver in enumerate(drivers):
        if driver not in DRIVERS:
            raise ValueError(f"unknown driver {driver!r}")
        scenario = build_scenario(
            seed=seed + k, driver=driver, runtime_duration_s=runtime_duration_s
        )
        campaign = run_campaign(scenario, num_sessions=num_sessions)
        errors = campaign.errors_deg
        out[driver] = {"summary": summarize_errors(errors), **_cdf_dict(errors)}
    return out


def fig14_speed_curves(
    speeds_deg_s: Sequence[float] = (60.0, 120.0),
    seed: int = 0,
    duration_s: float = 6.0,
) -> dict[float, dict[str, np.ndarray]]:
    """Fig. 14: rotation speed stretches/compresses the CSI curve in time."""
    out: dict[float, dict[str, np.ndarray]] = {}
    for speed in speeds_deg_s:
        scenario = build_scenario(
            seed=seed,
            runtime_duration_s=duration_s,
            runtime_front_hold_s=0.5,
            runtime_turn_speed=np.deg2rad(float(speed)),
        )
        stream, scene = scenario.runtime_capture(0)
        phase = sanitize_stream(stream.times, stream.csi)
        out[float(speed)] = {
            "time_s": phase.times,
            "phase_rad": wrap_phase(np.asarray(phase.values)),
            "orientation_deg": np.rad2deg(scene.driver_yaw(phase.times)),
        }
    return out


# ----------------------------------------------------------------------
# Sec. 5.3 — practical factors
# ----------------------------------------------------------------------
def fig15_micromotions(
    duration_s: float = 6.0, seed: int = 0
) -> dict[str, dict[str, np.ndarray]]:
    """Fig. 15: micro-motions cause far smaller phase variation than turning."""
    arms = {
        "breathing+blinking": dict(
            runtime_motion="still", micromotions=("breathing", "eyes")
        ),
        "intense eye motion": dict(runtime_motion="still", micromotions=("eyes",)),
        "music vibration": dict(runtime_motion="still", micromotions=("music",)),
        "head turning": dict(runtime_motion="scan", micromotions=("breathing",)),
    }
    out: dict[str, dict[str, np.ndarray]] = {}
    for label, overrides in arms.items():
        scenario = build_scenario(
            seed=seed,
            runtime_duration_s=duration_s,
            runtime_front_hold_s=0.5,
            **overrides,
        )
        stream, _scene = scenario.runtime_capture(0)
        phase = sanitize_stream(stream.times, stream.csi)
        out[label] = {
            "time_s": phase.times,
            "phase_rad": wrap_phase(np.asarray(phase.values)),
            "phase_std_rad": float(np.std(np.asarray(phase.values))),
        }
    return out


def fig16_vibration_phase(
    duration_s: float = 6.0, seed: int = 0
) -> dict[str, dict[str, np.ndarray]]:
    """Fig. 16: antenna vibration adds a noisy but parallel phase track."""
    out: dict[str, dict[str, np.ndarray]] = {}
    for label, amplitude in (("rigid", 0.0), ("vibrating", 0.003)):
        scenario = build_scenario(
            seed=seed,
            runtime_duration_s=duration_s,
            runtime_front_hold_s=0.5,
            vibration_amplitude_m=amplitude,
        )
        stream, scene = scenario.runtime_capture(0)
        phase = sanitize_stream(stream.times, stream.csi)
        out[label] = {
            "time_s": phase.times,
            "phase_rad": wrap_phase(np.asarray(phase.values)),
            "orientation_deg": np.rad2deg(scene.driver_yaw(phase.times)),
        }
    return out


def _onoff_cdf(
    base: ScenarioConfig,
    off_overrides: dict,
    on_overrides: dict,
    labels: Sequence[str],
    num_sessions: int,
    config: ViHOTConfig | None = None,
) -> dict[str, dict]:
    """Common scaffold for the Fig. 17 on/off comparisons.

    The profile is built once from the "off" arm (profiling happens in a
    parked, quiet car) and shared, as in the paper's protocol.
    """
    out: dict[str, dict] = {}
    profile = None
    for label, overrides in zip(labels, (off_overrides, on_overrides)):
        scenario = Scenario(base.with_(**overrides))
        if profile is None:
            profile = run_profiling(scenario)
        campaign = run_campaign(
            scenario, config, num_sessions=num_sessions, profile=profile
        )
        errors = campaign.errors_deg
        out[label] = {"summary": summarize_errors(errors), **_cdf_dict(errors)}
    return out


def fig17a_vibration(
    seed: int = 0, num_sessions: int = 2, runtime_duration_s: float = 12.0
) -> dict[str, dict]:
    """Fig. 17a: accuracy with/without (worst-case) antenna vibration."""
    base = ScenarioConfig(seed=seed, runtime_duration_s=runtime_duration_s)
    return _onoff_cdf(
        base,
        {"vibration_amplitude_m": 0.0},
        {"vibration_amplitude_m": 0.003},
        ("w/o ant vibration", "w/ ant vibration"),
        num_sessions,
    )


def fig17b_steering_identifier(
    seed: int = 0, num_sessions: int = 2, runtime_duration_s: float = 14.0
) -> dict[str, dict]:
    """Fig. 17b: the steering identifier on vs off during real turns.

    "Off" strips the IMU side-channel from the capture, so the tracker
    cannot tell steering-borne CSI swings from head turns — the paper
    shows errors up to ~80 degrees in that case.
    """
    base = ScenarioConfig(
        seed=seed,
        runtime_duration_s=runtime_duration_s,
        runtime_motion="glance",
        steering="turns",
    )
    scenario = Scenario(base)
    profile = run_profiling(scenario)
    out: dict[str, dict] = {}

    for label, use_imu in (
        ("w/o steering identifier", False),
        ("w/ steering identifier", True),
    ):
        errors = []
        for session in range(num_sessions):
            stream, scene = scenario.runtime_capture(session)
            if not use_imu:
                stream = CsiStream(stream.times, stream.csi, stream.seqs, imu=None)
            camera = CameraTracker(
                scene, rng=np.random.default_rng((seed, 78, session))
            )
            tracker = ViHOTTracker(profile, ViHOTConfig(), camera=camera)
            tracking = tracker.process(stream, estimate_stride_s=0.05)
            truth_stream = scenario.headset_truth(
                scene, float(stream.times[-1]) + 0.1, session
            )
            truth = truth_stream.interp(tracking.target_times)
            err = np.abs(np.rad2deg(tracking.orientations - truth))
            active = tracking.target_times > base.runtime_front_hold_s
            errors.append(err[active])
        pooled = np.concatenate(errors)
        out[label] = {"summary": summarize_errors(pooled), **_cdf_dict(pooled)}
    return out


def fig17c_passenger(
    seed: int = 0, num_sessions: int = 2, runtime_duration_s: float = 12.0
) -> dict[str, dict]:
    """Fig. 17c: accuracy with/without a front passenger."""
    base = ScenarioConfig(seed=seed, runtime_duration_s=runtime_duration_s)
    return _onoff_cdf(
        base,
        {"with_passenger": False},
        {"with_passenger": True},
        ("w/o passenger", "w/ passenger"),
        num_sessions,
    )


def fig17d_interference(
    seed: int = 0, num_sessions: int = 2, runtime_duration_s: float = 12.0
) -> dict[str, dict]:
    """Fig. 17d: accuracy with/without interfering WiFi traffic."""
    base = ScenarioConfig(seed=seed, runtime_duration_s=runtime_duration_s)
    return _onoff_cdf(
        base,
        {"csma": "clean"},
        {"csma": "interfered"},
        ("w/o WiFi interference", "w/ WiFi interference"),
        num_sessions,
    )


def sampling_rate(duration_s: float = 10.0, seed: int = 0) -> dict[str, float]:
    """The sampling-rate claims: ~500/400 Hz CSI vs ~30 Hz camera.

    Returns achieved CSI rates and worst gaps for the clean and
    interfered channels, plus the camera frame rate for the >10x claim.
    """
    out: dict[str, float] = {}
    for label in ("clean", "interfered"):
        scenario = build_scenario(seed=seed, csma=label, runtime_duration_s=duration_s)
        stream, _scene = scenario.runtime_capture(0)
        series = TimeSeries(stream.times, np.zeros(len(stream)))
        out[f"csi_rate_hz_{label}"] = mean_rate(series)
        out[f"max_gap_ms_{label}"] = largest_gap(series) * 1000.0
    out["camera_rate_hz"] = constants.CAMERA_FRAME_RATE_HZ
    out["speedup_clean"] = out["csi_rate_hz_clean"] / out["camera_rate_hz"]
    return out


# ----------------------------------------------------------------------
# Ablations (DESIGN.md "design decisions worth ablating")
# ----------------------------------------------------------------------
def ablation_matching(
    seed: int = 0, num_sessions: int = 2, runtime_duration_s: float = 12.0
) -> dict[str, dict]:
    """DTW series matching vs the Eq. (5) strawman and rigid matching."""
    scenario = build_scenario(seed=seed, runtime_duration_s=runtime_duration_s)
    profile = run_profiling(scenario)
    config = ViHOTConfig()
    out: dict[str, dict] = {}

    trackers = {
        "vihot (dtw series)": None,
        "point mapping (eq.5)": PointMappingTracker(profile, config),
        "rigid nearest window": NearestFingerprintTracker(profile, config),
    }
    for label, tracker in trackers.items():
        errors = []
        for session in range(num_sessions):
            if tracker is None:
                result = run_tracking_session(scenario, profile, config, session=session)
                errors.append(result.active_errors_deg)
                continue
            stream, scene = scenario.runtime_capture(session)
            tracking = tracker.process(stream, estimate_stride_s=0.05)
            truth_stream = scenario.headset_truth(
                scene, float(stream.times[-1]) + 0.1, session
            )
            truth = truth_stream.interp(tracking.target_times)
            err = np.abs(np.rad2deg(tracking.orientations - truth))
            active = tracking.target_times > scenario.config.runtime_front_hold_s
            errors.append(err[active])
        pooled = np.concatenate(errors)
        out[label] = {"summary": summarize_errors(pooled), **_cdf_dict(pooled)}
    return out


def ablation_position(
    seed: int = 0, num_sessions: int = 2, runtime_duration_s: float = 12.0
) -> dict[str, dict]:
    """Joint position estimation vs a single-position profile."""
    out: dict[str, dict] = {}
    for label, positions in (("10 positions", 10), ("1 position", 1)):
        scenario = build_scenario(
            seed=seed, num_positions=positions, runtime_duration_s=runtime_duration_s
        )
        campaign = run_campaign(scenario, num_sessions=num_sessions)
        errors = campaign.errors_deg
        out[label] = {"summary": summarize_errors(errors), **_cdf_dict(errors)}
    return out


def ablation_length_search(
    seed: int = 0, num_sessions: int = 2, runtime_duration_s: float = 12.0
) -> dict[str, dict]:
    """The [0.5W, 2W] length search vs fixed-length matching.

    The runtime turns ~2x faster than the profiling pass, so without the
    length search DTW must absorb the whole speed mismatch through
    warping alone (Sec. 3.4.4 argues it cannot).
    """
    scenario = build_scenario(
        seed=seed,
        runtime_duration_s=runtime_duration_s,
        runtime_turn_speed=np.deg2rad(130.0),
    )
    profile = run_profiling(scenario)
    out: dict[str, dict] = {}
    configs = {
        "length search [0.5W,2W]": ViHOTConfig(),
        "fixed length W": ViHOTConfig(num_length_candidates=1, length_range=(1.0, 1.0)),
    }
    for label, config in configs.items():
        campaign = run_campaign(
            scenario, config, num_sessions=num_sessions, profile=profile
        )
        errors = campaign.errors_deg
        out[label] = {"summary": summarize_errors(errors), **_cdf_dict(errors)}
    return out


def ablation_sanitization(duration_s: float = 6.0, seed: int = 0) -> dict[str, float]:
    """Antenna-difference sanitisation vs raw single-antenna phase.

    Returns the phase standard deviation of a *stationary* scene: the raw
    phase is CFO/SFO-dominated garbage, the sanitised difference is flat.
    """
    scenario = build_scenario(
        seed=seed, runtime_motion="still", runtime_duration_s=duration_s
    )
    stream, _scene = scenario.runtime_capture(0)
    raw = np.angle(stream.csi[:, 0, :])
    raw_mean = np.asarray([float(np.angle(np.exp(1j * row).mean())) for row in raw])
    sanitized = antenna_phase_difference(stream.csi)
    return {
        "raw_phase_std_rad": float(phase_std(raw_mean)),
        "sanitized_phase_std_rad": float(phase_std(sanitized)),
    }
