"""Evaluation metrics (Sec. 5.1).

The paper's metric is the *angular deviation*: the absolute difference
between ViHOT's head-orientation estimate and the headset ground truth,
reported as medians, means with standard deviations, and CDFs across all
head-turning events of a set of sessions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tracker import TrackingResult


def angular_errors_deg(
    result: TrackingResult,
    truth_yaw_rad: np.ndarray,
) -> np.ndarray:
    """Per-estimate absolute angular deviation [deg].

    ``truth_yaw_rad`` must be sampled at ``result.target_times`` (the
    session runner does that against the scene's ground truth).
    """
    truth_yaw_rad = np.asarray(truth_yaw_rad, dtype=np.float64)
    if truth_yaw_rad.shape != (len(result),):
        raise ValueError(
            f"need one truth sample per estimate: got {truth_yaw_rad.shape} "
            f"for {len(result)} estimates"
        )
    return np.abs(np.rad2deg(result.orientations - truth_yaw_rad))


def error_cdf(
    errors_deg: np.ndarray,
    grid_deg: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of angular errors on a degree grid.

    Returns ``(grid, fraction <= grid)`` — the curves of Figs. 10b, 12,
    13 and 17.
    """
    errors_deg = np.asarray(errors_deg, dtype=np.float64)
    if errors_deg.size == 0:
        raise ValueError("cannot build a CDF from zero errors")
    if grid_deg is None:
        grid_deg = np.arange(0.0, 61.0, 1.0)
    grid_deg = np.asarray(grid_deg, dtype=np.float64)
    fractions = np.searchsorted(np.sort(errors_deg), grid_deg, side="right") / len(
        errors_deg
    )
    return grid_deg, fractions


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of one experiment arm.

    Attributes mirror what the paper reports: median, mean, std, p90 and
    max of the angular deviation [deg], plus the sample count.
    """

    median_deg: float
    mean_deg: float
    std_deg: float
    p90_deg: float
    max_deg: float
    count: int

    def __str__(self) -> str:
        return (
            f"median {self.median_deg:5.1f}  mean {self.mean_deg:5.1f}"
            f" +- {self.std_deg:4.1f}  p90 {self.p90_deg:5.1f}"
            f"  max {self.max_deg:5.1f}  (n={self.count})"
        )


def summarize_errors(errors_deg: np.ndarray) -> ErrorSummary:
    """Condense an error sample into the paper's headline statistics."""
    errors_deg = np.asarray(errors_deg, dtype=np.float64)
    if errors_deg.size == 0:
        raise ValueError("cannot summarise zero errors")
    return ErrorSummary(
        median_deg=float(np.median(errors_deg)),
        mean_deg=float(np.mean(errors_deg)),
        std_deg=float(np.std(errors_deg)),
        p90_deg=float(np.percentile(errors_deg, 90)),
        max_deg=float(np.max(errors_deg)),
        count=int(errors_deg.size),
    )
