"""Terminal plots — dependency-free rendering for reports and examples.

The benchmarks print tables; sometimes a picture says it faster, and this
repository deliberately has no matplotlib dependency.  These helpers draw
compact unicode line/CDF charts good enough to eyeball a figure's shape
in a CI log.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

_BARS = " .:-=+*#%@"


def ascii_series(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 72,
    height: int = 12,
    title: str = "",
) -> str:
    """Render one series as a unicode scatter-line chart."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1 or len(x) < 2:
        raise ValueError("need matching 1-D x and y with >= 2 points")
    if width < 10 or height < 3:
        raise ValueError("chart too small to draw")

    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    cols = np.clip(((x - x_lo) / (x_hi - x_lo) * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(
        ((y_hi - y) / (y_hi - y_lo) * (height - 1)).astype(int), 0, height - 1
    )
    for c, r in zip(cols, rows):
        grid[r][c] = "*"

    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        label = y_hi if r == 0 else (y_lo if r == height - 1 else None)
        prefix = f"{label:+8.2f} |" if label is not None else "         |"
        lines.append(prefix + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_lo:<10.2f}{'':^{max(width - 20, 0)}}{x_hi:>10.2f}")
    return "\n".join(lines)


def ascii_cdfs(
    curves: dict[str, Sequence],
    width: int = 60,
    grid_max: float | None = None,
    title: str = "",
) -> str:
    """Render labelled CDF curves as per-arm horizontal bars.

    ``curves`` maps an arm label to ``(grid_deg, fractions)``.  Each arm
    prints one bar whose fill encodes the CDF height across the grid —
    reading left to right shows how fast the arm's errors concentrate.
    """
    lines = [title] if title else []
    for label, (grid, frac) in curves.items():
        grid = np.asarray(grid, dtype=np.float64)
        frac = np.asarray(frac, dtype=np.float64)
        if grid_max is not None:
            keep = grid <= grid_max
            grid, frac = grid[keep], frac[keep]
        if len(grid) < 2:
            raise ValueError(f"CDF for {label!r} has too few points")
        samples = np.interp(
            np.linspace(grid[0], grid[-1], width), grid, frac
        )
        bar = "".join(_BARS[int(round(v * (len(_BARS) - 1)))] for v in samples)
        lines.append(f"{label:>26s} |{bar}|")
    lines.append(f"{'':>26s}  0{'deg':^{max(width - 6, 0)}}{grid[-1]:.0f}deg")
    return "\n".join(lines)


def sparkline(values: Sequence, width: int = 40) -> str:
    """One-line sparkline of a series (resampled to ``width`` chars)."""
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or len(values) < 2:
        raise ValueError("need a 1-D series with >= 2 points")
    resampled = np.interp(
        np.linspace(0, len(values) - 1, width), np.arange(len(values)), values
    )
    lo, hi = resampled.min(), resampled.max()
    span = (hi - lo) or 1.0
    blocks = "▁▂▃▄▅▆▇█"
    return "".join(
        blocks[int(round((v - lo) / span * (len(blocks) - 1)))] for v in resampled
    )
