"""Driving-condition presets.

The paper evaluates on "a campus road with light traffic at a safe speed
below 15 mph" (Sec. 5.1).  Downstream users asked-for-by the intro's
ADAS scenarios want more: city stop-and-go, highway cruising, a parked
calibration bay.  Each preset bundles the environmental knobs of
:class:`repro.experiments.scenarios.ScenarioConfig` that co-vary with a
road type; everything else stays overridable.

    >>> from repro.experiments.presets import preset_scenario
    >>> scenario = preset_scenario("city", seed=3)
"""

from __future__ import annotations


from repro.experiments.scenarios import Scenario, ScenarioConfig

#: Environmental knob bundles per road type.
PRESETS: dict[str, dict] = {
    # The paper's evaluation condition: slow, smooth, little steering.
    "campus": dict(
        vehicle_speed_mps=6.0,
        steering="lane",
        vibration_amplitude_m=0.0008,
        csma="clean",
        runtime_motion="glance",
    ),
    # Urban stop-and-go: frequent intersection turns, moderate vibration,
    # other WiFi everywhere.
    "city": dict(
        vehicle_speed_mps=9.0,
        steering="turns",
        vibration_amplitude_m=0.0015,
        csma="interfered",
        runtime_motion="glance",
    ),
    # Highway: fast and straight; mirror checks dominate; expansion-joint
    # vibration.
    "highway": dict(
        vehicle_speed_mps=30.0,
        steering="lane",
        vibration_amplitude_m=0.002,
        csma="clean",
        runtime_motion="glance",
    ),
    # Parked calibration bay: the profiling condition.
    "parked": dict(
        vehicle_speed_mps=0.0,
        steering="none",
        vibration_amplitude_m=0.0,
        csma="clean",
        runtime_motion="scan",
    ),
}


def preset_config(name: str, **overrides) -> ScenarioConfig:
    """Build a ``ScenarioConfig`` for a named road type.

    Explicit ``overrides`` win over the preset's bundle.
    """
    if name not in PRESETS:
        raise ValueError(f"unknown preset {name!r}; choose from {sorted(PRESETS)}")
    merged = dict(PRESETS[name])
    merged.update(overrides)
    return ScenarioConfig(**merged)


def preset_scenario(name: str, **overrides) -> Scenario:
    """Build a ready-to-run :class:`Scenario` for a named road type."""
    return Scenario(preset_config(name, **overrides))
