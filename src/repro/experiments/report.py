"""Plain-text rendering of experiment outputs.

The benchmarks print the same rows/series the paper's figures plot; these
helpers keep that formatting consistent (and trivially greppable in CI
logs).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.experiments.metrics import ErrorSummary


def format_cdf_rows(
    label: str,
    grid_deg: np.ndarray,
    fractions: np.ndarray,
    points: Sequence[float] = (5, 10, 20, 30, 60),
) -> str:
    """One line summarising a CDF at a few grid points."""
    grid_deg = np.asarray(grid_deg)
    fractions = np.asarray(fractions)
    parts = []
    for p in points:
        k = int(np.searchsorted(grid_deg, p))
        k = min(k, len(fractions) - 1)
        parts.append(f"P(err<={p:g}deg)={fractions[k]:.2f}")
    return f"{label:28s} " + "  ".join(parts)


def format_summary_table(rows: dict[str, ErrorSummary], title: str = "") -> str:
    """Multi-line table of per-arm error summaries."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'arm':28s} {'median':>7s} {'mean':>7s} {'std':>6s} {'p90':>7s} {'max':>7s} {'n':>6s}"
    lines.append(header)
    lines.append("-" * len(header))
    for label, s in rows.items():
        lines.append(
            f"{label:28s} {s.median_deg:7.1f} {s.mean_deg:7.1f} {s.std_deg:6.1f} "
            f"{s.p90_deg:7.1f} {s.max_deg:7.1f} {s.count:6d}"
        )
    return "\n".join(lines)
