"""Session runners: profile once, track sessions, collect angular errors.

Matches the paper's protocol (Sec. 5.1): build the driver's CSI profile,
run each test for 60 s, repeat 10 times, and report the angular deviation
against the headset ground truth across sessions.  Our defaults shrink
the durations/session counts for CI; pass paper-scale numbers to
reproduce the full campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.profile import CsiProfile
from repro.core.tracker import TrackingResult, ViHOTTracker
from repro.experiments.metrics import ErrorSummary, summarize_errors
from repro.experiments.scenarios import Scenario
from repro.sensors.camera import CameraTracker


@dataclass
class SessionResult:
    """One tracked run-time session with its evaluation data.

    Attributes:
        tracking: the tracker's estimates.
        truth_yaw: headset ground-truth yaw at each estimate's target
            time [rad].
        errors_deg: absolute angular deviation per estimate [deg].
        active_mask: True where the session counts as a "head-turning
            event" window (after the initial facing-front hold) — the
            population the paper's CDFs are computed over.
    """

    tracking: TrackingResult
    truth_yaw: np.ndarray
    errors_deg: np.ndarray
    active_mask: np.ndarray

    @property
    def active_errors_deg(self) -> np.ndarray:
        return self.errors_deg[self.active_mask]

    def summary(self) -> ErrorSummary:
        return summarize_errors(self.active_errors_deg)


def run_profiling(scenario: Scenario) -> CsiProfile:
    """Run the scenario's profiling pass (Sec. 3.3)."""
    return scenario.build_profile()


def run_tracking_session(
    scenario: Scenario,
    profile: CsiProfile,
    config: ViHOTConfig | None = None,
    session: int = 0,
    estimate_stride_s: float = 0.05,
    with_camera_fallback: bool = False,
) -> SessionResult:
    """Capture and track one run-time session against ``profile``."""
    config = config if config is not None else ViHOTConfig()
    stream, scene = scenario.runtime_capture(session)
    camera = None
    if with_camera_fallback:
        camera = CameraTracker(
            scene, rng=np.random.default_rng((scenario.config.seed, 77, session))
        )
    tracker = ViHOTTracker(profile, config, camera=camera)
    tracking = tracker.process(stream, estimate_stride_s=estimate_stride_s)
    if len(tracking) == 0:
        raise RuntimeError("tracker produced no estimates; session too short?")

    t_end = float(stream.times[-1]) + config.horizon_s + 0.1
    truth_stream = scenario.headset_truth(scene, t_end, session)
    truth = truth_stream.interp(tracking.target_times)
    errors = np.abs(np.rad2deg(tracking.orientations - truth))
    active = tracking.target_times > scenario.config.runtime_front_hold_s
    if not np.any(active):
        active = np.ones(len(tracking), dtype=bool)
    return SessionResult(tracking, truth, errors, active)


@dataclass
class CampaignResult:
    """Errors pooled across repeated sessions (the paper runs 10)."""

    sessions: list[SessionResult] = field(default_factory=list)

    @property
    def errors_deg(self) -> np.ndarray:
        if not self.sessions:
            return np.zeros(0)
        return np.concatenate([s.active_errors_deg for s in self.sessions])

    def summary(self) -> ErrorSummary:
        return summarize_errors(self.errors_deg)


def run_campaign(
    scenario: Scenario,
    config: ViHOTConfig | None = None,
    num_sessions: int = 3,
    estimate_stride_s: float = 0.05,
    profile: CsiProfile | None = None,
    with_camera_fallback: bool = False,
) -> CampaignResult:
    """Profile once, then track ``num_sessions`` independent sessions."""
    if num_sessions < 1:
        raise ValueError("num_sessions must be >= 1")
    if profile is None:
        profile = run_profiling(scenario)
    campaign = CampaignResult()
    for session in range(num_sessions):
        campaign.sessions.append(
            run_tracking_session(
                scenario,
                profile,
                config,
                session=session,
                estimate_stride_s=estimate_stride_s,
                with_camera_fallback=with_camera_fallback,
            )
        )
    return campaign
