"""Scenario builders mirroring the paper's evaluation setup (Sec. 5.1).

A ``Scenario`` is one fully-specified world + measurement campaign:

* a profiling pass — the driver leans to ``num_positions`` head positions
  and scans the head left-right for ~10 s at each (Fig. 5), with ground
  truth from the headset;
* a run-time session — 60 s (reduced by default for CI speed) of either
  continuous head turning at a configurable speed (the paper's accuracy
  tests, Fig. 14) or naturalistic glance-driving, possibly with steering,
  a passenger, antenna vibration or interfering WiFi traffic.

Every stochastic choice derives from ``ScenarioConfig.seed`` so a
scenario is exactly reproducible, while different sessions (the paper
repeats each test 10 times) use different seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cabin.driver import (
    DriverProfile,
    HeadPositionModel,
    glance_trajectory,
    scan_trajectory,
)
from repro.cabin.geometry import CabinLayout
from repro.cabin.micromotion import (
    BreathingMotion,
    EyeBlinkMotion,
    MusicVibrationMotion,
)
from repro.cabin.passenger import PassengerModel, passenger_glance_trajectory
from repro.cabin.scene import CabinScene
from repro.cabin.steering import (
    lane_keeping_trajectory,
    turning_trajectory,
)
from repro.cabin.trajectory import PiecewiseTrajectory
from repro.cabin.vibration import VibrationModel
from repro.core.profile import CsiProfile
from repro.core.profiling import ProfileBuilder
from repro.net.clock import ClockModel
from repro.net.csma import CsmaConfig
from repro.net.link import CsiStream, WifiLink
from repro.rf.channel import ChannelSimulator
from repro.rf.impairments import HardwareImpairments
from repro.rf.spectrum import Spectrum
from repro.sensors.headset import HeadsetConfig, HeadsetTracker

#: The three test drivers of Sec. 5.2.5 (heights 170-182 cm).
DRIVERS: dict[str, DriverProfile] = {
    "A": DriverProfile(name="A"),
    "B": DriverProfile(
        name="B",
        head_radius_m=0.100,
        head_height_m=0.06,
        turn_speed_rad_s=np.deg2rad(100.0),
        face_scale=1.10,
    ),
    "C": DriverProfile(
        name="C",
        head_radius_m=0.090,
        head_height_m=-0.03,
        turn_speed_rad_s=np.deg2rad(124.0),
        face_scale=0.92,
    ),
}


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that defines one evaluation scenario.

    Durations default to CI-friendly values; the paper's full settings
    are 10 positions x 10 s profiling and 60 s x 10 run-time sessions —
    pass those explicitly when regenerating publication-scale numbers.
    """

    seed: int = 0
    driver: str = "A"
    rx_layout: str = "behind-driver"

    # Profiling pass
    num_positions: int = 10
    lean_span_m: float = 0.07
    profile_seconds: float = 8.0
    profile_front_hold_s: float = 1.5
    profile_scan_speed: float = np.deg2rad(80.0)
    profile_scan_amplitude: float = np.deg2rad(80.0)

    # Run-time session
    runtime_duration_s: float = 20.0
    runtime_motion: str = "scan"  # "scan" | "glance" | "still"
    runtime_turn_speed: float | None = None  # None -> driver's habit
    runtime_lean_m: float = 0.012
    runtime_front_hold_s: float = 2.5
    reseat_offset_m: float = 0.0
    reseat_height_m: float = 0.0

    # Environment
    band: str = "2.4GHz"  # "2.4GHz" | "5GHz" (Sec. 7 extension)
    csma: str = "clean"  # "clean" | "interfered"
    with_passenger: bool = False
    vibration_amplitude_m: float = 0.0
    steering: str = "none"  # "none" | "lane" | "turns"
    micromotions: tuple[str, ...] = ("breathing",)
    vehicle_speed_mps: float = 6.0
    headset_slip: bool = True

    def __post_init__(self) -> None:
        if self.driver not in DRIVERS:
            raise ValueError(f"unknown driver {self.driver!r}; choose from {sorted(DRIVERS)}")
        if self.num_positions < 1:
            raise ValueError("num_positions must be >= 1")
        if self.runtime_motion not in ("scan", "glance", "still"):
            raise ValueError(f"unknown runtime_motion {self.runtime_motion!r}")
        if self.band not in ("2.4GHz", "5GHz"):
            raise ValueError(f"unknown band {self.band!r}")
        if self.csma not in ("clean", "interfered"):
            raise ValueError(f"unknown csma mode {self.csma!r}")
        if self.steering not in ("none", "lane", "turns"):
            raise ValueError(f"unknown steering mode {self.steering!r}")
        known = {"breathing", "eyes", "music"}
        unknown = set(self.micromotions) - known
        if unknown:
            raise ValueError(f"unknown micromotions {sorted(unknown)}; choose from {sorted(known)}")

    def with_(self, **overrides) -> ScenarioConfig:
        """Functional update (``dataclasses.replace`` wrapper)."""
        return replace(self, **overrides)


def _with_front_hold(tail: PiecewiseTrajectory, hold_s: float) -> PiecewiseTrajectory:
    """Prefix a facing-front hold so the position estimator can anchor."""
    return PiecewiseTrajectory(
        np.concatenate([[0.0], tail.knot_times]),
        np.concatenate([[0.0], tail.knot_values]),
        tail.smoothing_s,
    )


class Scenario:
    """A reproducible profiling + run-time measurement campaign."""

    # Tags deriving independent RNG streams from the base seed.
    _TAG_PROFILE = 1
    _TAG_RUNTIME = 2
    _TAG_HEADSET = 3
    _TAG_LINK = 4
    _TAG_IMPAIR = 5
    _TAG_CLOCK = 6

    def __init__(self, config: ScenarioConfig | None = None) -> None:
        config = config if config is not None else ScenarioConfig()
        self.config = config
        self.driver = DRIVERS[config.driver]
        self.spectrum = (
            Spectrum.wifi_5ghz() if config.band == "5GHz" else Spectrum.wifi_2_4ghz()
        )
        self._layout = CabinLayout().with_rx_layout(config.rx_layout)

    def _rng(self, tag: int, extra: int = 0) -> np.random.Generator:
        return np.random.default_rng((self.config.seed, tag, extra))

    # ------------------------------------------------------------------
    # Scene construction
    # ------------------------------------------------------------------
    def _micromotions(self) -> list:
        motions = []
        if "breathing" in self.config.micromotions:
            motions.append(BreathingMotion())
        if "eyes" in self.config.micromotions:
            motions.append(EyeBlinkMotion())
        if "music" in self.config.micromotions:
            motions.append(MusicVibrationMotion())
        return motions

    def _base_scene(self, yaw, lean_m: float, pos_seed: int, runtime: bool) -> CabinScene:
        from repro.cabin.vehicle import VehicleKinematics

        config = self.config
        steering_traj = None
        vehicle = VehicleKinematics(speed_mps=config.vehicle_speed_mps)
        if runtime and config.steering == "lane":
            steering_traj = lane_keeping_trajectory(
                config.runtime_duration_s + 1.0, self._rng(7)
            )
        elif runtime and config.steering == "turns":
            # Scale the turn rate so even short CI sessions contain one
            # or two intersection turns (the paper's 60 s sessions see a
            # couple at ~2/minute).
            per_minute = max(2.0, 90.0 / config.runtime_duration_s)
            steering_traj = turning_trajectory(
                config.runtime_duration_s + 1.0,
                self._rng(7),
                turns_per_minute=per_minute,
            )
        passenger = None
        if runtime and config.with_passenger:
            passenger = PassengerModel(
                yaw=passenger_glance_trajectory(
                    config.runtime_duration_s + 1.0, self._rng(8)
                )
            )
        vibration = None
        if config.vibration_amplitude_m > 0:
            vibration = VibrationModel(
                amplitude_m=config.vibration_amplitude_m,
                seed=config.seed * 31 + (11 if runtime else 12),
            )
        return CabinScene(
            layout=self._layout,
            driver_head=self.driver.head_model(),
            driver_positions=self.driver.position_model(lean_m=lean_m, seed=pos_seed),
            driver_yaw_trajectory=yaw,
            steering_trajectory=steering_traj,
            vehicle=vehicle,
            passenger=passenger,
            micromotions=self._micromotions(),
            vibration=vibration,
        )

    def _link(self, scene: CabinScene, tag: int, extra: int = 0) -> WifiLink:
        config = self.config
        csma = CsmaConfig.clean() if config.csma == "clean" else CsmaConfig.interfered()
        impairments = HardwareImpairments(
            self.spectrum, rng=self._rng(self._TAG_IMPAIR, extra)
        )
        return WifiLink(
            ChannelSimulator(scene, self.spectrum, impairments),
            csma=csma,
            phone_clock=ClockModel.ntp_synced(self._rng(self._TAG_CLOCK, extra)),
            rng=self._rng(self._TAG_LINK, extra),
        )

    def _headset(self, scene: CabinScene, extra: int = 0) -> HeadsetTracker:
        config = HeadsetConfig() if self.config.headset_slip else HeadsetConfig(
            slip_rate_per_min=0.0
        )
        return HeadsetTracker(scene, config, rng=self._rng(self._TAG_HEADSET, extra))

    # ------------------------------------------------------------------
    # Profiling pass
    # ------------------------------------------------------------------
    def lean_grid(self) -> np.ndarray:
        """The profiled lean offsets (Fig. 5's 10 positions)."""
        config = self.config
        if config.num_positions == 1:
            return np.array([0.0])
        half = config.lean_span_m / 2.0
        return np.linspace(-half, half, config.num_positions)

    def profiling_scene(self, position_index: int) -> CabinScene:
        """The world during the profiling pass at one head position."""
        config = self.config
        lean = float(self.lean_grid()[position_index])
        scan = scan_trajectory(
            config.profile_seconds,
            amplitude_rad=config.profile_scan_amplitude,
            speed_rad_s=config.profile_scan_speed,
            t_start=config.profile_front_hold_s,
            rng=self._rng(self._TAG_PROFILE, position_index),
        )
        yaw = _with_front_hold(scan, config.profile_front_hold_s)
        return self._base_scene(
            yaw, lean, pos_seed=1000 + self.config.seed * 97 + position_index, runtime=False
        )

    def build_profile(self) -> CsiProfile:
        """Run the whole profiling pass and return the driver's profile."""
        config = self.config
        builder = ProfileBuilder(driver=config.driver)
        total = config.profile_front_hold_s + config.profile_seconds
        for k in range(config.num_positions):
            scene = self.profiling_scene(k)
            link = self._link(scene, self._TAG_PROFILE, extra=k)
            stream = link.capture(0.0, total, with_imu=False)
            truth = self._headset(scene, extra=k).yaw_stream(0.0, total)
            builder.add_position(
                stream,
                truth,
                label=float(self.lean_grid()[k]),
                front_hold_s=config.profile_front_hold_s,
            )
        return builder.build()

    # ------------------------------------------------------------------
    # Run-time session
    # ------------------------------------------------------------------
    def runtime_scene(self, session: int = 0) -> CabinScene:
        """The world during run-time session ``session``."""
        config = self.config
        speed = config.runtime_turn_speed
        if speed is None:
            speed = self.driver.turn_speed_rad_s
        rng = self._rng(self._TAG_RUNTIME, session)
        if config.runtime_motion == "scan":
            tail = scan_trajectory(
                config.runtime_duration_s,
                amplitude_rad=config.profile_scan_amplitude,
                speed_rad_s=speed,
                t_start=config.runtime_front_hold_s,
                rng=rng,
            )
            yaw = _with_front_hold(tail, config.runtime_front_hold_s)
        elif config.runtime_motion == "glance":
            tail = glance_trajectory(
                config.runtime_duration_s,
                rng,
                speed_rad_s=speed,
                t_start=config.runtime_front_hold_s,
            )
            yaw = _with_front_hold(tail, config.runtime_front_hold_s)
        else:  # "still"
            yaw = PiecewiseTrajectory.constant(
                0.0, 0.0, config.runtime_front_hold_s + config.runtime_duration_s
            )
        lean = config.runtime_lean_m + config.reseat_offset_m
        scene = self._base_scene(
            yaw, lean, pos_seed=9000 + self.config.seed * 89 + session, runtime=True
        )
        if config.reseat_height_m != 0.0:
            # Re-seating changes posture vertically too — a shift the
            # lean-only profile grid cannot compensate (Sec. 5.2.4's
            # residual error after the driver leaves the seat).
            base = scene.driver_positions
            center = base.base_center + np.array([0.0, 0.0, config.reseat_height_m])
            scene.driver_positions = HeadPositionModel(
                base_center=center,
                lean_m=base.lean_m,
                sway_std_m=base.sway_std_m,
                sway_tau_s=base.sway_tau_s,
                seed=base.seed,
                horizon_s=base.horizon_s,
            )
        return scene

    def runtime_capture(self, session: int = 0) -> tuple[CsiStream, CabinScene]:
        """Capture one run-time session; returns the stream and its world."""
        config = self.config
        scene = self.runtime_scene(session)
        link = self._link(scene, self._TAG_RUNTIME, extra=100 + session)
        total = config.runtime_front_hold_s + config.runtime_duration_s
        with_imu = config.steering != "none"
        stream = link.capture(0.0, total, with_imu=with_imu)
        return stream, scene

    def headset_truth(self, scene: CabinScene, t_end: float, session: int = 0):
        """The headset's ground-truth yaw log for a run-time session."""
        return self._headset(scene, extra=200 + session).yaw_stream(0.0, t_end)


def build_scenario(**overrides) -> Scenario:
    """Convenience: ``Scenario(ScenarioConfig(**overrides))``."""
    return Scenario(ScenarioConfig(**overrides))
