"""Deterministic fault injection for the serving stack.

A :class:`FaultPlan` composes seedable, windowed injectors —
packet-loss bursts, CSI dropout/NaN storms, subcarrier corruption,
clock skew/jitter, amplitude fades, queue-overload surges — as a
wrapper over any packet source: the synthetic fleet in
``repro.serve.loadgen``, the chaos runner in ``repro.serve.chaos``, or
a logged :class:`~repro.net.link.CsiStream` via :func:`inject_stream`.

All injectors are off by default (the empty plan is the identity), and
every fault decision is a pure function of ``(seed, stream id)`` — the
same chaos run replays bit-identically.
"""

from repro.faults.injectors import (
    AmplitudeFade,
    BoundInjector,
    ClockSkew,
    CsiDropout,
    FaultInjector,
    FaultPlan,
    FaultWindow,
    Packet,
    PacketLossBurst,
    QueueSurge,
    StreamFaults,
    SubcarrierCorruption,
    chaos_plan,
    stream_rng,
)
from repro.faults.replay import inject_stream

__all__ = [
    "FaultPlan",
    "FaultWindow",
    "FaultInjector",
    "BoundInjector",
    "StreamFaults",
    "Packet",
    "PacketLossBurst",
    "CsiDropout",
    "SubcarrierCorruption",
    "ClockSkew",
    "AmplitudeFade",
    "QueueSurge",
    "chaos_plan",
    "stream_rng",
    "inject_stream",
]
