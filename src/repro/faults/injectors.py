"""Deterministic, seedable fault injectors for packet sources.

ViHOT's own design degrades gracefully (steering interference falls back
to the camera, Sec. 3.5), but the serving layer above it has to survive
the *transport* faults real in-vehicle CSI links throw at it: bursty
packet loss, NaN storms from a wedged NIC, corrupted subcarriers, clock
skew and jitter, deep amplitude fades, and queue-overload surges.  This
module is the catalogue of those faults as composable injectors.

Design rules, all load-bearing:

* **Off by default.**  A :class:`FaultPlan` with no injectors is the
  identity — wrappers built from it never draw randomness, never copy a
  matrix, and fault-free runs stay bit-identical to unwrapped ones.
* **Deterministic.**  Every decision derives from ``(plan.seed,
  stream_id, injector index)`` through a :class:`numpy.random.Generator`;
  replaying the same plan over the same stream reproduces the same
  faults bit-for-bit, so chaos runs are debuggable and CI-stable.
* **Composable.**  Injectors transform one packet into zero or more
  packets and chain in plan order, so one plan can drop, corrupt and
  duplicate simultaneously.
* **Windowed.**  Each injector is active inside a :class:`FaultWindow`
  of stream time and passes packets through untouched outside it, which
  is what lets a chaos scenario assert *recovery after faults clear*.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Packet",
    "FaultWindow",
    "FaultInjector",
    "BoundInjector",
    "PacketLossBurst",
    "CsiDropout",
    "SubcarrierCorruption",
    "ClockSkew",
    "AmplitudeFade",
    "QueueSurge",
    "StreamFaults",
    "FaultPlan",
    "chaos_plan",
    "stream_rng",
]

#: One packet: ``(stream time, csi matrix)``.
Packet = tuple[float, np.ndarray]


def stream_rng(seed: int, stream_id: str, salt: int = 0) -> np.random.Generator:
    """An independent generator for ``(seed, stream, injector slot)``.

    The stream id participates through a stable CRC (not ``hash()``,
    which is salted per process), so fault sequences are reproducible
    across runs and independent across sessions.
    """
    entropy = [seed & 0xFFFFFFFF, zlib.crc32(stream_id.encode("utf-8")), salt]
    return np.random.default_rng(np.random.SeedSequence(entropy))


@dataclass(frozen=True)
class FaultWindow:
    """Stream-time interval ``[start_s, stop_s)`` an injector is active in."""

    start_s: float = 0.0
    stop_s: float = float("inf")

    def __post_init__(self) -> None:
        if not self.start_s <= self.stop_s:
            raise ValueError(
                f"inverted fault window [{self.start_s}, {self.stop_s})"
            )

    def covers(self, time: float) -> bool:
        # NaN times (already-corrupted stamps) compare False on purpose.
        return self.start_s <= time < self.stop_s


class BoundInjector:
    """One injector's per-stream state: packets in, packets out.

    Specs (:class:`FaultInjector` subclasses) are immutable configuration;
    ``bind()`` produces one of these per stream, owning the stream's RNG
    and burst state so concurrent sessions never share entropy.
    """

    def __init__(self, name: str, window: FaultWindow) -> None:
        self.name = name
        self.window = window
        self.seen = 0  # packets offered while the window was active
        self.touched = 0  # packets dropped, altered or duplicated

    def process(self, time: float, csi: np.ndarray) -> list[Packet]:
        if not self.window.covers(time):
            return [(time, csi)]
        self.seen += 1
        return self._apply(time, csi)

    def _apply(self, time: float, csi: np.ndarray) -> list[Packet]:
        raise NotImplementedError


class FaultInjector:
    """Base class for injector configuration.  Subclasses are frozen
    dataclasses; ``bind(rng)`` returns the per-stream stateful form."""

    name = "fault"

    def bind(self, rng: np.random.Generator) -> BoundInjector:
        raise NotImplementedError


class _Burst:
    """Shared burst machine: enter a burst with per-packet probability
    ``enter_rate``, stay in it for a geometric ``mean_len`` packets."""

    def __init__(
        self, rng: np.random.Generator, enter_rate: float, mean_len: float
    ) -> None:
        self._rng = rng
        self._enter = min(1.0, max(0.0, enter_rate))
        self._mean = max(1.0, mean_len)
        self._left = 0

    def step(self) -> bool:
        """Advance one packet; True while inside a burst."""
        if self._left > 0:
            self._left -= 1
            return True
        if self._rng.random() < self._enter:
            # The geometric draw is >= 1; this packet consumes the first.
            self._left = int(self._rng.geometric(1.0 / self._mean)) - 1
            return True
        return False


# ----------------------------------------------------------------------
# Packet loss
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PacketLossBurst(FaultInjector):
    """Bursty packet drops (CSMA collisions, door/engine transients).

    ``drop_rate`` is the target long-run fraction of packets lost inside
    the window; losses arrive in geometric bursts of mean ``burst_mean``
    packets rather than independently, matching reported in-vehicle
    dropout behaviour.
    """

    name = "packet_loss"
    drop_rate: float = 0.05
    burst_mean: float = 5.0
    window: FaultWindow = FaultWindow()

    def bind(self, rng: np.random.Generator) -> BoundInjector:
        return _BoundPacketLoss(self, rng)


class _BoundPacketLoss(BoundInjector):
    def __init__(self, spec: PacketLossBurst, rng: np.random.Generator) -> None:
        super().__init__(spec.name, spec.window)
        self._burst = _Burst(rng, spec.drop_rate / spec.burst_mean, spec.burst_mean)

    def _apply(self, time: float, csi: np.ndarray) -> list[Packet]:
        if self._burst.step():
            self.touched += 1
            return []
        return [(time, csi)]


# ----------------------------------------------------------------------
# CSI dropout / NaN storms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CsiDropout(FaultInjector):
    """Storms of useless CSI: the packet arrives but its matrix is
    garbage (NaN fill for a wedged extractor, zero fill for a squelched
    front end).  These are exactly the packets ingest must *reject* —
    one NaN reaching the tracker poisons its incremental unwrap."""

    name = "csi_dropout"
    storm_rate: float = 0.05
    storm_mean: float = 20.0
    fill: float = float("nan")
    window: FaultWindow = FaultWindow()

    def bind(self, rng: np.random.Generator) -> BoundInjector:
        return _BoundCsiDropout(self, rng)


class _BoundCsiDropout(BoundInjector):
    def __init__(self, spec: CsiDropout, rng: np.random.Generator) -> None:
        super().__init__(spec.name, spec.window)
        self._fill = spec.fill
        self._burst = _Burst(rng, spec.storm_rate / spec.storm_mean, spec.storm_mean)

    def _apply(self, time: float, csi: np.ndarray) -> list[Packet]:
        if not self._burst.step():
            return [(time, csi)]
        self.touched += 1
        value: complex = complex(self._fill, self._fill)
        if not np.issubdtype(np.asarray(csi).dtype, np.complexfloating):
            value = self._fill
        return [(time, np.full(csi.shape, value, dtype=csi.dtype))]


# ----------------------------------------------------------------------
# Subcarrier corruption
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SubcarrierCorruption(FaultInjector):
    """Randomise the phase of a few subcarriers per hit packet —
    narrowband interference that survives the CSI tool's CRC because
    the payload decoded fine."""

    name = "subcarrier_corruption"
    rate: float = 0.2
    num_subcarriers: int = 6
    window: FaultWindow = FaultWindow()

    def bind(self, rng: np.random.Generator) -> BoundInjector:
        return _BoundSubcarrier(self, rng)


class _BoundSubcarrier(BoundInjector):
    def __init__(self, spec: SubcarrierCorruption, rng: np.random.Generator) -> None:
        super().__init__(spec.name, spec.window)
        self._rng = rng
        self._rate = spec.rate
        self._num = spec.num_subcarriers

    def _apply(self, time: float, csi: np.ndarray) -> list[Packet]:
        if self._rng.random() >= self._rate:
            return [(time, csi)]
        self.touched += 1
        out = np.asarray(csi).astype(np.complex128, copy=True)
        n_sub = out.shape[-1]
        hit = self._rng.choice(n_sub, size=min(self._num, n_sub), replace=False)
        spins = self._rng.uniform(-np.pi, np.pi, size=(out.shape[0], len(hit)))
        out[:, hit] = out[:, hit] * np.exp(1j * spins)
        return [(time, out)]


# ----------------------------------------------------------------------
# Clock skew / jitter
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClockSkew(FaultInjector):
    """Timestamp faults: a rate error accumulating over the window
    (``skew``), white jitter (``jitter_s``) that can reorder packets,
    and occasional non-finite stamps (``corrupt_rate``) from a stepped
    NTP clock — the stamps ingest-side validation must refuse."""

    name = "clock_skew"
    skew: float = 0.0
    jitter_s: float = 0.0
    corrupt_rate: float = 0.0
    window: FaultWindow = FaultWindow()

    def bind(self, rng: np.random.Generator) -> BoundInjector:
        return _BoundClockSkew(self, rng)


class _BoundClockSkew(BoundInjector):
    def __init__(self, spec: ClockSkew, rng: np.random.Generator) -> None:
        super().__init__(spec.name, spec.window)
        self._rng = rng
        self._spec = spec

    def _apply(self, time: float, csi: np.ndarray) -> list[Packet]:
        spec = self._spec
        if spec.corrupt_rate > 0.0 and self._rng.random() < spec.corrupt_rate:
            self.touched += 1
            return [(float("nan"), csi)]
        stamped = time
        if spec.skew != 0.0:
            stamped = stamped + spec.skew * (time - self.window.start_s)
        if spec.jitter_s > 0.0:
            stamped = stamped + float(self._rng.normal(0.0, spec.jitter_s))
        if stamped != time:
            self.touched += 1
        return [(stamped, csi)]


# ----------------------------------------------------------------------
# Amplitude fades
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AmplitudeFade(FaultInjector):
    """Deep fades: the signal drops toward the noise floor for a spell,
    so the measured phase difference is dominated by additive noise."""

    name = "amplitude_fade"
    fade_rate: float = 0.05
    fade_mean: float = 30.0
    floor: float = 1e-3
    noise: float = 0.05
    window: FaultWindow = FaultWindow()

    def bind(self, rng: np.random.Generator) -> BoundInjector:
        return _BoundAmplitudeFade(self, rng)


class _BoundAmplitudeFade(BoundInjector):
    def __init__(self, spec: AmplitudeFade, rng: np.random.Generator) -> None:
        super().__init__(spec.name, spec.window)
        self._rng = rng
        self._spec = spec
        self._burst = _Burst(rng, spec.fade_rate / spec.fade_mean, spec.fade_mean)

    def _apply(self, time: float, csi: np.ndarray) -> list[Packet]:
        if not self._burst.step():
            return [(time, csi)]
        self.touched += 1
        spec = self._spec
        out = np.asarray(csi).astype(np.complex128, copy=False) * spec.floor
        noise = self._rng.standard_normal(out.shape) + 1j * self._rng.standard_normal(
            out.shape
        )
        return [(time, out + spec.noise * noise)]


# ----------------------------------------------------------------------
# Queue-overload surges
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueueSurge(FaultInjector):
    """Duplicate packets in bursts — a retransmit storm or a stuck
    producer — to pressure the bounded ingest ring into shedding."""

    name = "queue_surge"
    surge_rate: float = 0.02
    surge_mean: float = 20.0
    amplification: int = 4
    spacing_s: float = 1e-5
    window: FaultWindow = FaultWindow()

    def bind(self, rng: np.random.Generator) -> BoundInjector:
        return _BoundQueueSurge(self, rng)


class _BoundQueueSurge(BoundInjector):
    def __init__(self, spec: QueueSurge, rng: np.random.Generator) -> None:
        super().__init__(spec.name, spec.window)
        self._spec = spec
        self._burst = _Burst(rng, spec.surge_rate / spec.surge_mean, spec.surge_mean)

    def _apply(self, time: float, csi: np.ndarray) -> list[Packet]:
        if not self._burst.step():
            return [(time, csi)]
        self.touched += 1
        spec = self._spec
        return [
            (time + j * spec.spacing_s, csi) for j in range(max(1, spec.amplification))
        ]


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
class StreamFaults:
    """A plan's injectors bound to one stream, applied in plan order."""

    def __init__(self, bound: tuple[BoundInjector, ...]) -> None:
        self._bound = bound

    @property
    def injectors(self) -> tuple[BoundInjector, ...]:
        return self._bound

    def process(self, time: float, csi: np.ndarray) -> list[Packet]:
        """Run one packet through the chain; 0..n packets out."""
        packets: list[Packet] = [(time, csi)]
        for injector in self._bound:
            produced: list[Packet] = []
            for t, c in packets:
                produced.extend(injector.process(t, c))
            packets = produced
            if not packets:
                break
        return packets

    def touched_counts(self) -> dict[str, int]:
        """Per-injector count of packets dropped/altered/duplicated."""
        return {b.name: b.touched for b in self._bound}


@dataclass(frozen=True)
class FaultPlan:
    """A seeded composition of injectors over a packet source.

    The empty plan (the default) is the identity: ``enabled`` is False,
    callers skip binding entirely, and no RNG is ever constructed — the
    property that keeps fault-free runs bit-identical.
    """

    injectors: tuple[FaultInjector, ...] = ()
    seed: int = 0

    @property
    def enabled(self) -> bool:
        return bool(self.injectors)

    def bind(self, stream_id: str) -> StreamFaults:
        """Fresh per-stream state for every injector in the plan."""
        return StreamFaults(
            tuple(
                spec.bind(stream_rng(self.seed, stream_id, salt=k))
                for k, spec in enumerate(self.injectors)
            )
        )


def chaos_plan(
    seed: int = 0, start_s: float = 1.0, stop_s: float = 1.8
) -> FaultPlan:
    """One of every injector class, all active in ``[start_s, stop_s)``.

    Rates are deliberately brutal — the point of the chaos scenario is
    to push sessions through degradation and quarantine, then prove
    they all return to healthy once the window closes.
    """
    window = FaultWindow(start_s, stop_s)
    return FaultPlan(
        injectors=(
            PacketLossBurst(drop_rate=0.15, burst_mean=4.0, window=window),
            CsiDropout(storm_rate=0.5, storm_mean=30.0, window=window),
            SubcarrierCorruption(rate=0.3, num_subcarriers=8, window=window),
            ClockSkew(skew=2e-4, jitter_s=2e-4, corrupt_rate=0.05, window=window),
            AmplitudeFade(fade_rate=0.1, fade_mean=20.0, window=window),
            QueueSurge(surge_rate=0.05, surge_mean=10.0, amplification=3, window=window),
        ),
        seed=seed,
    )
