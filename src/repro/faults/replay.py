"""Fault injection over logged captures (:class:`~repro.net.link.CsiStream`).

The serving layer injects faults packet-by-packet as traffic flows
(`repro.serve.loadgen` / `repro.serve.chaos`); this module is the batch
counterpart for replay workflows — corrupt a logged capture once, then
run ``vihot track`` or any offline pipeline over the damaged copy.
"""

from __future__ import annotations

import numpy as np

from repro.faults.injectors import FaultPlan
from repro.net.link import CsiStream

__all__ = ["inject_stream"]


def inject_stream(
    stream: CsiStream, plan: FaultPlan, stream_id: str = "replay"
) -> CsiStream:
    """Apply ``plan`` to a logged capture, returning the faulted copy.

    With an empty (disabled) plan the input stream object is returned
    unchanged — no copy, no RNG — so fault-free replays stay
    bit-identical.  Dropped packets shrink the stream, duplicated ones
    extend it, and sequence numbers are renumbered to stay contiguous;
    the IMU side-channel is carried across untouched (RF faults do not
    corrupt the phone's gyro).
    """
    if not plan.enabled:
        return stream
    faults = plan.bind(stream_id)
    times: list[float] = []
    matrices: list[np.ndarray] = []
    for k in range(len(stream)):
        for t, csi in faults.process(float(stream.times[k]), stream.csi[k]):
            times.append(t)
            matrices.append(np.asarray(csi))
    if matrices:
        csi_out = np.stack(matrices).astype(stream.csi.dtype, copy=False)
    else:
        csi_out = np.empty((0,) + stream.csi.shape[1:], dtype=stream.csi.dtype)
    return CsiStream(
        np.asarray(times, dtype=np.float64),
        csi_out,
        np.arange(len(times)),
        stream.imu,
    )
