"""Geometric primitives: vectors, rotations and reflection-point math."""

from repro.geometry.vec import (
    vec3,
    norm,
    normalize,
    distance,
    angle_between,
    project_onto,
)
from repro.geometry.rotations import (
    rotz,
    roty,
    rotx,
    euler_zyx,
    yaw_of,
    wrap_angle,
    unwrap_angles,
    deg2rad,
    rad2deg,
)
from repro.geometry.shapes import (
    Sphere,
    reflection_point_sphere,
    segment_intersects_sphere,
)

__all__ = [
    "vec3",
    "norm",
    "normalize",
    "distance",
    "angle_between",
    "project_onto",
    "rotz",
    "roty",
    "rotx",
    "euler_zyx",
    "yaw_of",
    "wrap_angle",
    "unwrap_angles",
    "deg2rad",
    "rad2deg",
    "Sphere",
    "reflection_point_sphere",
    "segment_intersects_sphere",
]
