"""Rotation matrices and angle conventions.

The car frame has +x toward the rear, +y toward the passenger side and +z
up (see DESIGN.md).  Head yaw is a rotation about +z; 0 rad faces the front
of the car (the -x direction from the driver's seat), positive yaw turns
toward the passenger side.

Angle parameters carry unit-domain markers (:mod:`repro.units`) checked
by ``vihot lint --dataflow``: scalar signatures use
``Annotated[float, Domain(...)]``, array signatures use the
``:domain name: ...`` docstring convention.
"""

from __future__ import annotations

from typing import Annotated

import numpy as np
from numpy.typing import ArrayLike

from repro.units import Domain


def deg2rad(deg: ArrayLike) -> np.ndarray:
    """Degrees to radians (vectorised).

    :domain deg: deg
    :domain return: rad
    """
    return np.deg2rad(deg)


def rad2deg(rad: ArrayLike) -> np.ndarray:
    """Radians to degrees (vectorised).

    :domain rad: rad
    :domain return: deg
    """
    return np.rad2deg(rad)


def rotz(angle_rad: Annotated[float, Domain("rad")]) -> np.ndarray:
    """Rotation matrix about the +z (up) axis — head yaw."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def roty(angle_rad: Annotated[float, Domain("rad")]) -> np.ndarray:
    """Rotation matrix about the +y axis — head pitch."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    return np.array([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])


def rotx(angle_rad: Annotated[float, Domain("rad")]) -> np.ndarray:
    """Rotation matrix about the +x axis — head roll."""
    c, s = np.cos(angle_rad), np.sin(angle_rad)
    return np.array([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])


def euler_zyx(
    yaw: Annotated[float, Domain("rad")],
    pitch: Annotated[float, Domain("rad")],
    roll: Annotated[float, Domain("rad")],
) -> np.ndarray:
    """Compose a rotation from intrinsic yaw (z), pitch (y), roll (x)."""
    return rotz(yaw) @ roty(pitch) @ rotx(roll)


def yaw_of(rotation: np.ndarray) -> Annotated[float, Domain("wrapped_rad")]:
    """Extract the yaw angle [rad] from a z-y-x rotation matrix."""
    rotation = np.asarray(rotation, dtype=np.float64)
    if rotation.shape != (3, 3):
        raise ValueError(f"expected a 3x3 matrix, got shape {rotation.shape}")
    return float(np.arctan2(rotation[1, 0], rotation[0, 0]))


def wrap_angle(angle_rad: ArrayLike) -> np.ndarray | float:
    """Wrap angles to ``(-pi, pi]`` (vectorised).

    :domain angle_rad: rad
    :domain return: wrapped_rad
    """
    wrapped = np.mod(np.asarray(angle_rad, dtype=np.float64) + np.pi, 2.0 * np.pi) - np.pi
    # np.mod maps exact -pi to -pi; move it to +pi for a half-open interval.
    wrapped = np.where(wrapped == -np.pi, np.pi, wrapped)
    if np.ndim(angle_rad) == 0:
        return float(wrapped)
    return wrapped


def unwrap_angles(angles_rad: np.ndarray) -> np.ndarray:
    """Unwrap a 1-D sequence of wrapped angles into a continuous track.

    :domain angles_rad: wrapped_rad
    :domain return: unwrapped_rad
    """
    angles_rad = np.asarray(angles_rad, dtype=np.float64)
    if angles_rad.ndim != 1:
        raise ValueError("unwrap_angles expects a 1-D array")
    return np.unwrap(angles_rad)
