"""Shape primitives used by the RF scene: spheres and reflection points.

The cabin simulator models the driver's head (and other bodies) as spheres
carrying point scattering centres.  Two geometric operations matter for the
channel model:

* where on a sphere the specular TX->sphere->RX reflection happens (this
  sets a reflected path length), and
* whether the line-of-sight segment between two antennas is blocked by a
  sphere (this decides which RX antenna keeps a LOS path, the property
  Layout 1 in the paper exploits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import distance, normalize


@dataclass(frozen=True)
class Sphere:
    """A sphere with ``center`` (shape ``(3,)``) and ``radius`` [m]."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=np.float64)
        if center.shape != (3,):
            raise ValueError(f"sphere center must be a 3-vector, got {center.shape}")
        if self.radius <= 0:
            raise ValueError(f"sphere radius must be positive, got {self.radius}")
        object.__setattr__(self, "center", center)

    def contains(self, point: np.ndarray) -> bool:
        """True if ``point`` lies inside or on the sphere."""
        return bool(distance(point, self.center) <= self.radius)


def reflection_point_sphere(tx: np.ndarray, rx: np.ndarray, sphere: Sphere) -> np.ndarray:
    """Approximate specular reflection point on a sphere.

    For cabin-scale geometry (sphere radius ~0.1 m, distances ~0.5-1.5 m)
    the exact Alhazen solution is within a millimetre of the classical
    approximation: the point where the bisector of the TX and RX directions
    from the sphere centre pierces the surface.  We use the approximation;
    the resulting path-length error is far below the channel's noise floor.
    """
    to_tx = np.asarray(tx, dtype=np.float64) - sphere.center
    to_rx = np.asarray(rx, dtype=np.float64) - sphere.center
    bisector = normalize(normalize(to_tx) + normalize(to_rx))
    return sphere.center + sphere.radius * bisector


def creeping_excess(a: np.ndarray, b: np.ndarray, sphere: Sphere) -> float:
    """Excess length of the shortest path from ``a`` to ``b`` around a sphere.

    When the straight segment pierces the sphere, the field creeps along a
    tangent-arc-tangent geodesic: straight to a tangent point, an arc
    hugging the sphere, straight to the target.  Its length is

        sqrt(|CA|^2 - r^2) + sqrt(|CB|^2 - r^2) + r * arc

    with ``arc = gamma - acos(r/|CA|) - acos(r/|CB|)`` and ``gamma`` the
    angle ACB at the sphere centre.  Returns 0 when the segment clears the
    sphere (no detour).  This excess depends on how close the obstacle
    centre sits to the line — which is how a *leaning* head modulates the
    blocked path even though the endpoints never move.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if not segment_intersects_sphere(a, b, sphere):
        return 0.0
    ca = a - sphere.center
    cb = b - sphere.center
    da = float(np.linalg.norm(ca))
    db = float(np.linalg.norm(cb))
    r = sphere.radius
    if da <= r or db <= r:
        # Endpoint inside the sphere: no geodesic exists; treat the path
        # as grazing (half the worst-case detour) rather than crashing.
        return float((np.pi / 2.0 - 1.0) * r)
    gamma = float(np.arccos(np.clip(np.dot(ca, cb) / (da * db), -1.0, 1.0)))
    arc = gamma - np.arccos(r / da) - np.arccos(r / db)
    if arc <= 0.0:
        return 0.0
    detour = np.sqrt(da**2 - r**2) + np.sqrt(db**2 - r**2) + r * arc
    straight = float(np.linalg.norm(b - a))
    return float(max(detour - straight, 0.0))


def segment_intersects_sphere(a: np.ndarray, b: np.ndarray, sphere: Sphere) -> bool:
    """True if the segment from ``a`` to ``b`` passes through ``sphere``.

    Used for LOS blockage checks (e.g. the driver's head shadowing one RX
    antenna).  Endpoints inside the sphere count as intersections.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    ab = b - a
    length_sq = float(np.dot(ab, ab))
    if length_sq == 0.0:
        return sphere.contains(a)
    # Closest point on the segment to the sphere centre.
    t = float(np.dot(sphere.center - a, ab) / length_sq)
    t = min(1.0, max(0.0, t))
    closest = a + t * ab
    return bool(distance(closest, sphere.center) <= sphere.radius)
