"""Small 3-D vector helpers on top of numpy arrays.

Vectors are plain ``numpy.ndarray`` objects of shape ``(3,)`` (or ``(N, 3)``
for batches); these helpers keep call sites short and validated without
introducing a wrapper class that the rest of the numerical code would have
to unwrap.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]


def vec3(x: float, y: float, z: float) -> np.ndarray:
    """Build a float64 3-vector."""
    return np.array([x, y, z], dtype=np.float64)


def _check_vec(v: np.ndarray) -> np.ndarray:
    v = np.asarray(v, dtype=np.float64)
    if v.shape[-1] != 3:
        raise ValueError(f"expected trailing dimension 3, got shape {v.shape}")
    return v


def norm(v: ArrayLike) -> "float | np.ndarray":
    """Euclidean norm along the last axis.

    Returns a scalar for a single vector and an array for a batch.
    """
    v = _check_vec(v)
    result = np.linalg.norm(v, axis=-1)
    return float(result) if result.ndim == 0 else result


def normalize(v: ArrayLike) -> np.ndarray:
    """Return ``v`` scaled to unit length.

    Raises ``ValueError`` for (near-)zero vectors because a direction is
    undefined there and silently returning garbage hides geometry bugs.
    """
    v = _check_vec(v)
    length = np.linalg.norm(v, axis=-1, keepdims=True)
    if np.any(length < 1e-12):
        raise ValueError("cannot normalize a zero-length vector")
    return v / length


def distance(a: ArrayLike, b: ArrayLike) -> "float | np.ndarray":
    """Euclidean distance between points (broadcasts over batches)."""
    return norm(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))


def angle_between(a: ArrayLike, b: ArrayLike) -> float:
    """Angle [rad] between two vectors, in ``[0, pi]``."""
    ua = normalize(a)
    ub = normalize(b)
    cosine = float(np.clip(np.dot(ua, ub), -1.0, 1.0))
    return float(np.arccos(cosine))


def project_onto(v: ArrayLike, axis: ArrayLike) -> np.ndarray:
    """Project ``v`` onto the direction of ``axis``."""
    u = normalize(axis)
    v = _check_vec(v)
    return np.dot(v, u) * u
