"""WiFi link substrate: packet timing, traffic, CSI extraction, clocks."""

from repro.net.csma import CsmaConfig, PacketTimeline
from repro.net.traffic import IperfClient, Packet
from repro.net.csi_tool import CsiToolConfig, CsiRecord, CsiTool
from repro.net.clock import ClockModel
from repro.net.link import CsiStream, WifiLink

__all__ = [
    "CsmaConfig",
    "PacketTimeline",
    "IperfClient",
    "Packet",
    "CsiToolConfig",
    "CsiRecord",
    "CsiTool",
    "ClockModel",
    "CsiStream",
    "WifiLink",
]
