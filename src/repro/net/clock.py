"""Clock offset/drift between the phone and the laptop.

The prototype "uses NTP to roughly synchronize the phone and the laptop"
(Sec. 4).  NTP over WiFi leaves a residual offset of a few milliseconds
plus parts-per-million drift; the IMU stream (timestamped by the phone)
and the CSI stream (timestamped by the laptop) therefore disagree
slightly.  The steering identifier must tolerate this misalignment, so the
link model routes every phone-side timestamp through a ``ClockModel``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClockModel:
    """Affine clock mapping ``device = true * (1 + drift) + offset``.

    Attributes:
        offset_s: constant offset after NTP sync (a few ms is typical).
        drift_ppm: frequency error of the device clock in parts/million.
    """

    offset_s: float = 0.0
    drift_ppm: float = 0.0

    def to_device(self, true_times):
        """Map true time to this device's timestamps."""
        true_times = np.asarray(true_times, dtype=np.float64)
        result = true_times * (1.0 + self.drift_ppm * 1e-6) + self.offset_s
        return float(result) if result.ndim == 0 else result

    def to_true(self, device_times):
        """Invert: map device timestamps back to true time."""
        device_times = np.asarray(device_times, dtype=np.float64)
        result = (device_times - self.offset_s) / (1.0 + self.drift_ppm * 1e-6)
        return float(result) if result.ndim == 0 else result

    @staticmethod
    def ntp_synced(rng: np.random.Generator) -> ClockModel:
        """Draw a realistic post-NTP residual clock."""
        return ClockModel(
            offset_s=float(rng.normal(0.0, 0.004)),
            drift_ppm=float(rng.normal(0.0, 8.0)),
        )
