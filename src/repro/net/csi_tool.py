"""Intel-5300-style CSI extraction.

The 802.11n CSI tool [16] reports, per received packet, a complex CSI
matrix over 30 subcarriers per RX antenna, with each I/Q component
quantised to a signed 8-bit integer under a per-packet automatic gain.
That quantisation is a real (if small) noise source on top of Eq. (2), and
keeping it in the loop means the tracker is tested against CSI with the
same dynamic-range limits as the hardware's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.spectrum import Spectrum


@dataclass(frozen=True)
class CsiToolConfig:
    """CSI report format parameters.

    Attributes:
        bits: two's-complement width per I/Q component (Intel 5300: 8).
        agc_headroom: per-packet scale such that the largest component
            uses this fraction of full scale (AGC never rails the ADC).
    """

    bits: int = 8
    agc_headroom: float = 0.9

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError(f"bits must be >= 2, got {self.bits}")
        if not 0.0 < self.agc_headroom <= 1.0:
            raise ValueError("agc_headroom must be in (0, 1]")


@dataclass(frozen=True)
class CsiRecord:
    """One parsed CSI report.

    Attributes:
        time: receiver timestamp [s].
        seq: packet sequence number.
        csi: complex CSI, shape ``(n_rx, n_subcarriers)``.
        rssi_dbm: coarse received power indication.
    """

    time: float
    seq: int
    csi: np.ndarray
    rssi_dbm: float


class CsiTool:
    """Quantises raw channel snapshots into CSI records."""

    def __init__(
        self,
        spectrum: Spectrum | None = None,
        config: CsiToolConfig | None = None,
    ) -> None:
        self._spectrum = spectrum if spectrum is not None else Spectrum()
        self._config = config if config is not None else CsiToolConfig()

    @property
    def config(self) -> CsiToolConfig:
        return self._config

    def quantize(self, csi: np.ndarray) -> np.ndarray:
        """Apply per-packet AGC + fixed-point quantisation.

        ``csi`` has shape ``(T, n_rx, F)``; each packet (first axis) gets
        its own gain, exactly like a per-packet AGC'd ADC capture.  The
        returned CSI is rescaled back so amplitudes remain comparable
        across packets (the tool reports the AGC gain alongside).
        """
        csi = np.asarray(csi, dtype=np.complex128)
        if csi.ndim != 3:
            raise ValueError(f"csi must have shape (T, n_rx, F), got {csi.shape}")
        full_scale = 2 ** (self._config.bits - 1) - 1
        peak = np.max(
            np.maximum(np.abs(csi.real), np.abs(csi.imag)), axis=(1, 2), keepdims=True
        )
        peak = np.where(peak == 0, 1.0, peak)
        scale = self._config.agc_headroom * full_scale / peak
        quantised = np.round(csi.real * scale) + 1j * np.round(csi.imag * scale)
        return quantised / scale

    def records(
        self,
        times: np.ndarray,
        seqs: np.ndarray,
        csi: np.ndarray,
    ) -> list[CsiRecord]:
        """Package quantised CSI snapshots as per-packet records."""
        times = np.asarray(times, dtype=np.float64)
        seqs = np.asarray(seqs)
        if not len(times) == len(seqs) == len(csi):
            raise ValueError(
                f"length mismatch: {len(times)} times, {len(seqs)} seqs, "
                f"{len(csi)} CSI snapshots"
            )
        quantised = self.quantize(csi)
        power = np.mean(np.abs(quantised) ** 2, axis=(1, 2))
        power = np.where(power <= 0, 1e-12, power)
        rssi = 10.0 * np.log10(power) - 30.0
        return [
            CsiRecord(float(times[k]), int(seqs[k]), quantised[k], float(rssi[k]))
            for k in range(len(times))
        ]
