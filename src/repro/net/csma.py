"""CSMA/CA packet-timing model.

ViHOT's CSI sampling clock *is* the WiFi packet arrival process, and the
paper leans on two of its measured properties (Sec. 5.3.5):

* clean channel: ~500 packets/s, worst inter-frame gap ~34 ms;
* with an interfering station streaming video: ~400 packets/s, worst gap
  ~49 ms, and it is these larger gaps (not CSI corruption — CSMA avoids
  collisions) that degrade tracking accuracy.

The model draws inter-packet intervals from a shifted exponential (DIFS +
backoff around the nominal rate) and injects channel-busy bursts during
which the sender defers, producing the heavy gap tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import constants


@dataclass(frozen=True)
class CsmaConfig:
    """Packet-timing parameters.

    Attributes:
        rate_hz: nominal packet rate.
        min_interval_s: hard lower bound on packet spacing (frame airtime
            + SIFS/DIFS, ~0.5 ms for small UDP frames at 802.11n rates).
        max_gap_s: cap on any single gap (the driver app re-queues dummy
            packets aggressively; Sec. 3.4 "dummy packets will be
            inserted ... to maintain a small packet interval").
        busy_fraction: fraction of time the medium is occupied by
            interfering traffic (0 = clean channel).
        busy_burst_s: mean duration of one interference burst.
    """

    rate_hz: float = constants.CLEAN_CSI_RATE_HZ
    min_interval_s: float = 0.0005
    max_gap_s: float = constants.CLEAN_MAX_GAP_S
    busy_fraction: float = 0.0
    busy_burst_s: float = 0.012

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")
        if self.min_interval_s <= 0 or self.min_interval_s >= 1.0 / self.rate_hz:
            raise ValueError(
                "min_interval_s must be positive and below the mean interval"
            )
        if self.max_gap_s <= self.min_interval_s:
            raise ValueError("max_gap_s must exceed min_interval_s")
        if not 0.0 <= self.busy_fraction < 1.0:
            raise ValueError("busy_fraction must be in [0, 1)")
        if self.busy_burst_s <= 0:
            raise ValueError("busy_burst_s must be positive")

    @staticmethod
    def clean() -> CsmaConfig:
        """The paper's interference-free channel (~500 Hz, 34 ms max gap)."""
        return CsmaConfig()

    @staticmethod
    def interfered() -> CsmaConfig:
        """The paper's roadside-video interference case (~400 Hz, 49 ms).

        The sender still *tries* to transmit at the clean rate; the
        busy-channel deferrals are what drag the achieved rate down to
        ~400 Hz and stretch the worst gap to ~49 ms (Sec. 5.3.5).
        """
        return CsmaConfig(
            rate_hz=constants.CLEAN_CSI_RATE_HZ,
            max_gap_s=constants.INTERFERED_MAX_GAP_S,
            busy_fraction=0.04,
            busy_burst_s=0.012,
        )


class PacketTimeline:
    """Generates packet arrival times under the CSMA model."""

    def __init__(
        self,
        config: CsmaConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._config = config if config is not None else CsmaConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def config(self) -> CsmaConfig:
        return self._config

    def sample(self, t_start: float, t_end: float) -> np.ndarray:
        """Packet times in ``[t_start, t_end)``, strictly increasing."""
        if t_end <= t_start:
            raise ValueError(f"empty timeline span [{t_start}, {t_end}]")
        config = self._config
        mean_interval = 1.0 / config.rate_hz
        exp_mean = mean_interval - config.min_interval_s

        times = []
        t = t_start + float(self._rng.uniform(0.0, mean_interval))
        while t < t_end:
            times.append(t)
            gap = config.min_interval_s + float(self._rng.exponential(exp_mean))
            # Channel-busy bursts: the sender defers, stretching the gap.
            while self._rng.random() < config.busy_fraction:
                gap += float(self._rng.exponential(config.busy_burst_s))
            gap = min(gap, config.max_gap_s)
            t += gap
        return np.array(times, dtype=np.float64)
