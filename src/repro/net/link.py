"""The end-to-end WiFi link: packets in, CSI records out.

``WifiLink`` is the measurement front-end the tracker consumes.  It runs
the CSMA packet timeline through the channel simulator and the CSI tool,
and carries the phone's IMU stream across (through the phone's NTP-synced
clock).  The result, ``CsiStream``, is the in-memory equivalent of a
logged Intel 5300 capture session.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.dsp.series import TimeSeries
from repro.net.clock import ClockModel
from repro.net.csi_tool import CsiTool
from repro.net.csma import CsmaConfig, PacketTimeline
from repro.rf.channel import ChannelSimulator
from repro.sensors.imu import ImuConfig, PhoneImu


@dataclass(frozen=True)
class CsiStream:
    """One capture session.

    Attributes:
        times: packet arrival times (laptop clock = true time), ``(T,)``.
        csi: quantised CSI, ``(T, n_rx, F)``.
        seqs: packet sequence numbers, ``(T,)``.
        imu: phone gyro yaw-rate stream, re-expressed on the laptop
            timeline as well as possible given the NTP residual; ``None``
            when IMU streaming was off.
    """

    times: np.ndarray
    csi: np.ndarray
    seqs: np.ndarray
    imu: TimeSeries | None = None

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.float64)
        csi = np.asarray(self.csi)
        seqs = np.asarray(self.seqs)
        if csi.ndim != 3 or len(csi) != len(times) or len(seqs) != len(times):
            raise ValueError(
                f"inconsistent stream shapes: times {times.shape}, "
                f"csi {csi.shape}, seqs {seqs.shape}"
            )
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "csi", csi)
        object.__setattr__(self, "seqs", seqs)

    def __len__(self) -> int:
        return len(self.times)

    def slice(self, t_start: float, t_end: float) -> CsiStream:
        """Sub-stream with ``t_start <= time <= t_end``."""
        if t_start > t_end:
            raise ValueError(
                f"inverted slice interval: t_start={t_start} > t_end={t_end}"
            )
        lo = int(np.searchsorted(self.times, t_start, side="left"))
        hi = int(np.searchsorted(self.times, t_end, side="right"))
        imu = self.imu.slice(t_start, t_end) if self.imu is not None else None
        return CsiStream(self.times[lo:hi], self.csi[lo:hi], self.seqs[lo:hi], imu)

    # ------------------------------------------------------------------
    # Persistence: capture sessions are the raw data of this system, and
    # a deployment logs them (for profile updates, offline debugging and
    # regression traces).
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Serialise the capture to a compressed ``.npz`` archive."""
        path = Path(path)
        arrays = {
            "times": self.times,
            "csi": self.csi,
            "seqs": self.seqs,
        }
        meta = {"has_imu": self.imu is not None, "format": "vihot-csi-stream-v1"}
        if self.imu is not None:
            arrays["imu_times"] = self.imu.times
            arrays["imu_values"] = np.asarray(self.imu.values)
        arrays["meta_json"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)

    @staticmethod
    def load(path) -> CsiStream:
        """Load a capture previously written by :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no capture at {path}")
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta_json"].tobytes()).decode("utf-8"))
            if meta.get("format") != "vihot-csi-stream-v1":
                raise ValueError(f"unrecognised capture format in {path}")
            imu = None
            if meta["has_imu"]:
                imu = TimeSeries(data["imu_times"], data["imu_values"])
            return CsiStream(data["times"], data["csi"], data["seqs"], imu)


class WifiLink:
    """Phone -> laptop link producing CSI capture sessions."""

    def __init__(
        self,
        channel: ChannelSimulator,
        csma: CsmaConfig | None = None,
        csi_tool: CsiTool | None = None,
        phone_clock: ClockModel | None = None,
        imu_config: ImuConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        phone_clock = phone_clock if phone_clock is not None else ClockModel()
        imu_config = imu_config if imu_config is not None else ImuConfig()
        self._channel = channel
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._timeline = PacketTimeline(
            csma if csma is not None else CsmaConfig.clean(),
            rng=np.random.default_rng(self._rng.integers(2**32)),
        )
        self._csi_tool = csi_tool if csi_tool is not None else CsiTool(channel.spectrum)
        self._phone_clock = phone_clock
        self._imu_config = imu_config

    @property
    def channel(self) -> ChannelSimulator:
        return self._channel

    def capture(
        self,
        t_start: float,
        t_end: float,
        with_imu: bool = True,
    ) -> CsiStream:
        """Run the link over ``[t_start, t_end)`` and log the session."""
        if t_end <= t_start:
            raise ValueError(f"empty capture span [{t_start}, {t_end}]")
        times = self._timeline.sample(t_start, t_end)
        if len(times) < 2:
            raise RuntimeError(
                f"capture [{t_start}, {t_end}) produced {len(times)} packets; "
                "span too short for the configured packet rate"
            )
        csi = self._channel.measure(times)
        csi = self._csi_tool.quantize(csi)
        seqs = np.arange(len(times))

        imu = None
        if with_imu:
            phone_imu = PhoneImu(
                # The channel's scene carries the vehicle ground truth.
                self._channel.scene,
                self._imu_config,
                rng=np.random.default_rng(self._rng.integers(2**32)),
            )
            stream = phone_imu.yaw_rate_stream(t_start, t_end)
            # The phone stamps IMU readings with its own clock; the laptop
            # treats those stamps as if they were its own — the residual
            # NTP offset/drift lands here, exactly as in the prototype.
            device_stamps = self._phone_clock.to_device(stream.times)
            order = np.argsort(device_stamps)
            imu = TimeSeries(device_stamps[order], np.asarray(stream.values)[order])
        return CsiStream(times, csi, seqs, imu)
