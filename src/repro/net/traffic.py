"""Iperf-style UDP probe traffic.

The prototype keeps the CSI stream alive by running an iperf UDP client on
the phone (Sec. 4).  Only packet timing matters for CSI sampling, but the
stream also carries sequence numbers (used by the tracker to detect
reordering/loss) and piggybacked IMU readings (Sec. 4: the phone's IMU
measurements "are UDP-streamed to the laptop along with the dummy Iperf
packets").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsp.series import TimeSeries
from repro.net.csma import PacketTimeline


@dataclass(frozen=True)
class Packet:
    """One UDP probe packet as the receiver logs it.

    Attributes:
        time: arrival time at the receiver [s].
        seq: sender sequence number.
        size_bytes: UDP payload size.
        imu_yaw_rate: most recent phone gyro reading piggybacked on this
            packet, or ``None`` when IMU streaming is off.
    """

    time: float
    seq: int
    size_bytes: int
    imu_yaw_rate: float | None = None


class IperfClient:
    """Generates the probe packet stream seen at the receiver."""

    def __init__(
        self,
        timeline: PacketTimeline,
        payload_bytes: int = 64,
        loss_rate: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if payload_bytes <= 0:
            raise ValueError(f"payload_bytes must be positive, got {payload_bytes}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self._timeline = timeline
        self._payload_bytes = payload_bytes
        self._loss_rate = loss_rate
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def stream(
        self,
        t_start: float,
        t_end: float,
        imu_stream: TimeSeries | None = None,
    ) -> list[Packet]:
        """Packets received in ``[t_start, t_end)``.

        Lost packets burn a sequence number but never arrive, so the
        receiver can detect the hole.  When ``imu_stream`` is given, each
        packet carries the latest IMU reading at its send time.
        """
        times = self._timeline.sample(t_start, t_end)
        # Latest IMU reading per packet, resolved in one vectorised pass.
        imu_index = None
        if imu_stream is not None and len(imu_stream) > 0:
            imu_index = np.searchsorted(imu_stream.times, times, side="right") - 1
        packets: list[Packet] = []
        for seq, t in enumerate(times):
            if self._loss_rate > 0 and self._rng.random() < self._loss_rate:
                continue
            imu_value = None
            if imu_index is not None and imu_index[seq] >= 0:
                imu_value = float(np.asarray(imu_stream.values)[imu_index[seq]])
            packets.append(
                Packet(
                    time=float(t),
                    seq=seq,
                    size_bytes=self._payload_bytes,
                    imu_yaw_rate=imu_value,
                )
            )
        return packets
