"""RF substrate: spectrum, antennas, propagation, multipath CSI synthesis."""

from repro.rf.spectrum import Spectrum
from repro.rf.antenna import (
    Antenna,
    IsotropicPattern,
    DipolePattern,
    RadiationPattern,
)
from repro.rf.propagation import (
    los_amplitude,
    reflection_amplitude,
    BLOCKED_LOS_ATTENUATION,
)
from repro.rf.multipath import ScattererTrack, BlockerTrack, synthesize_csi
from repro.rf.impairments import HardwareImpairments, ImpairmentConfig
from repro.rf.channel import ChannelSimulator

__all__ = [
    "Spectrum",
    "Antenna",
    "IsotropicPattern",
    "DipolePattern",
    "RadiationPattern",
    "los_amplitude",
    "reflection_amplitude",
    "BLOCKED_LOS_ATTENUATION",
    "ScattererTrack",
    "BlockerTrack",
    "synthesize_csi",
    "HardwareImpairments",
    "ImpairmentConfig",
    "ChannelSimulator",
]
