"""Antennas and radiation patterns.

Sec. 3.5 of the paper leverages the "donut" radiation pattern of the
phone's wire antenna: radiation is strongest broadside to the antenna wire
and has a null along the wire's axis.  Placing the phone so the null points
at the passenger suppresses the passenger's reflection without any
beamforming hardware.  ``DipolePattern`` models exactly that pattern; RX
antennas (external whips in the prototype) default to isotropic, which is a
fine approximation for phase-difference sensing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.vec import normalize


class RadiationPattern:
    """Interface: amplitude gain as a function of departure direction."""

    def gain(self, directions: np.ndarray) -> np.ndarray:
        """Amplitude gain for unit ``directions`` of shape ``(..., 3)``."""
        raise NotImplementedError


@dataclass(frozen=True)
class IsotropicPattern(RadiationPattern):
    """Unit gain in every direction."""

    def gain(self, directions: np.ndarray) -> np.ndarray:
        directions = np.asarray(directions, dtype=np.float64)
        return np.ones(directions.shape[:-1])


@dataclass(frozen=True)
class DipolePattern(RadiationPattern):
    """Classic half-wave-dipole-like donut: amplitude ``sin(psi)``.

    ``psi`` is the angle between the departure direction and the antenna
    ``axis`` (the wire).  Power gain is ``sin^2(psi)``: zero along the
    axis, maximum broadside.  ``floor`` bounds the null depth because real
    phone antennas never reach a perfect null (enclosure coupling, ground
    plane currents); the default -26 dB floor matches published phone
    antenna measurements closely enough for interference studies.
    """

    axis: np.ndarray = field(default_factory=lambda: np.array([0.0, 1.0, 0.0]))
    floor: float = 0.05

    def __post_init__(self) -> None:
        axis = normalize(np.asarray(self.axis, dtype=np.float64))
        if not 0.0 <= self.floor < 1.0:
            raise ValueError(f"floor must be in [0, 1), got {self.floor}")
        object.__setattr__(self, "axis", axis)

    def gain(self, directions: np.ndarray) -> np.ndarray:
        directions = np.asarray(directions, dtype=np.float64)
        lengths = np.linalg.norm(directions, axis=-1, keepdims=True)
        if np.any(lengths < 1e-12):
            raise ValueError("directions must be non-zero vectors")
        unit = directions / lengths
        cos_psi = np.clip(unit @ self.axis, -1.0, 1.0)
        sin_psi = np.sqrt(1.0 - cos_psi**2)
        return np.maximum(sin_psi, self.floor)


@dataclass(frozen=True)
class Antenna:
    """An antenna: a position in the car frame plus a radiation pattern.

    ``name`` appears in diagnostics (e.g. which RX antenna lost LOS).
    """

    position: np.ndarray
    pattern: RadiationPattern = field(default_factory=IsotropicPattern)
    name: str = "antenna"

    def __post_init__(self) -> None:
        position = np.asarray(self.position, dtype=np.float64)
        if position.shape != (3,):
            raise ValueError(f"antenna position must be a 3-vector, got {position.shape}")
        object.__setattr__(self, "position", position)

    def gain_toward(self, points: np.ndarray) -> np.ndarray:
        """Amplitude gain toward each of ``points`` (shape ``(..., 3)``)."""
        points = np.asarray(points, dtype=np.float64)
        return self.pattern.gain(points - self.position)
