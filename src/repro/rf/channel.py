"""End-to-end channel simulation: scene geometry -> per-packet CSI.

``ChannelSimulator`` is the bridge between the cabin world model and the
RF math.  Any object with the attributes below works as a scene (the
concrete implementation lives in :mod:`repro.cabin.scene`):

* ``tx_antenna`` — an :class:`repro.rf.antenna.Antenna` (the phone).
* ``rx_antennas`` — sequence of RX :class:`Antenna` objects (the NIC).
* ``rx_offsets(times)`` — vibration offsets, shape ``(n_rx, T, 3)``.
* ``scatterer_tracks(times)`` — list of :class:`ScattererTrack` covering
  everything that reflects: driver head, steering hands, passenger,
  micro-motions and static clutter.
* ``blocker_tracks(times)`` — list of :class:`BlockerTrack` spheres that
  can shadow LOS paths (the driver's head).
* ``surfaces`` (optional) — planar reflectors contributing first-order
  image-method paths (:mod:`repro.rf.surfaces`).

For every RX antenna the simulator assembles the LOS path (attenuated when
blocked) plus one bounce per scatterer, then evaluates Eq. (1) across the
subcarrier grid.  Hardware impairments (Eq. 2) are applied on top when a
:class:`HardwareImpairments` instance is supplied.
"""

from __future__ import annotations


import numpy as np

from repro.rf.antenna import Antenna
from repro.rf.impairments import HardwareImpairments
from repro.rf.multipath import synthesize_csi
from repro.rf.propagation import (
    BLOCKED_LOS_ATTENUATION,
    los_amplitude,
    reflection_amplitude,
)
from repro.rf.spectrum import Spectrum
from repro.rf.surfaces import surface_paths


class ChannelSimulator:
    """Synthesises (optionally impaired) CSI matrices for a cabin scene."""

    def __init__(
        self,
        scene,
        spectrum: Spectrum | None = None,
        impairments: HardwareImpairments | None = None,
        blocked_los_attenuation: float = BLOCKED_LOS_ATTENUATION,
    ) -> None:
        self._scene = scene
        self._spectrum = spectrum if spectrum is not None else Spectrum()
        self._impairments = impairments
        if not 0.0 <= blocked_los_attenuation <= 1.0:
            raise ValueError(
                f"blocked_los_attenuation must be in [0, 1], got {blocked_los_attenuation}"
            )
        self._blocked_atten = blocked_los_attenuation

    @property
    def scene(self):
        return self._scene

    @property
    def spectrum(self) -> Spectrum:
        return self._spectrum

    @property
    def num_rx(self) -> int:
        return len(self._scene.rx_antennas)

    def clean_csi(self, times: np.ndarray) -> np.ndarray:
        """Noise-free CSI, shape ``(T, n_rx, F)`` (Eq. 1 only)."""
        times = np.asarray(times, dtype=np.float64)
        if times.ndim != 1:
            raise ValueError(f"times must be 1-D, got shape {times.shape}")
        num_times = len(times)
        scene = self._scene
        wavelengths = self._spectrum.wavelengths_m
        carrier_wavelength = self._spectrum.carrier_wavelength_m

        tx: Antenna = scene.tx_antenna
        scatterers = scene.scatterer_tracks(times)
        blockers = scene.blocker_tracks(times)
        rx_offsets = scene.rx_offsets(times)
        rx_offsets = np.asarray(rx_offsets, dtype=np.float64)
        expected = (self.num_rx, num_times, 3)
        if rx_offsets.shape != expected:
            raise ValueError(
                f"rx_offsets must have shape {expected}, got {rx_offsets.shape}"
            )

        for track in scatterers:
            if len(track) != num_times:
                raise ValueError(
                    f"scatterer {track.name!r} has {len(track)} samples for "
                    f"{num_times} times"
                )

        csi = np.empty((num_times, self.num_rx, len(wavelengths)), dtype=np.complex128)
        tx_pos = tx.position[None, :]
        for a, rx in enumerate(scene.rx_antennas):
            rx_pos = rx.position[None, :] + rx_offsets[a]

            # --- LOS path -------------------------------------------------
            los_vec = rx_pos - tx_pos
            los_len = np.linalg.norm(los_vec, axis=1).copy()
            los_amp = los_amplitude(los_len, carrier_wavelength)
            los_amp = los_amp * tx.gain_toward(rx_pos)
            for blocker in blockers:
                blocked = blocker.blocks(
                    np.broadcast_to(tx_pos, rx_pos.shape), rx_pos
                )
                if not np.any(blocked):
                    continue
                transmission = (
                    blocker.transmission
                    if blocker.transmission is not None
                    else self._blocked_atten
                )
                los_amp = np.where(blocked, los_amp * transmission, los_amp)
                # The creeping wave around the blocker is longer than the
                # straight line.  Two contributions: the geometric detour
                # (sensitive to where the blocker sits relative to the
                # line — how a leaning head moves the phase) and the
                # blocker's own aspect term (how a *rotating* head does).
                los_len = los_len + blocker.creeping_excess(
                    np.broadcast_to(tx_pos, rx_pos.shape), rx_pos
                )
                if blocker.extra_path_m is not None:
                    los_len = los_len + np.where(blocked, blocker.extra_path_m, 0.0)

            lengths = [los_len]
            amplitudes = [los_amp]

            # --- first-order surface bounces (static image paths) ----------
            for _name, length, gamma, departure in surface_paths(
                tx.position, rx.position, getattr(scene, "surfaces", ())
            ):
                amp = gamma * los_amplitude(length, carrier_wavelength)
                amp = amp * float(tx.gain_toward(departure[None, :])[0])
                lengths.append(np.full(num_times, length))
                amplitudes.append(np.full(num_times, amp))

            # --- one bounce per scatterer ----------------------------------
            for track in scatterers:
                d1 = np.linalg.norm(track.positions - tx_pos, axis=1)
                d2 = np.linalg.norm(track.positions - rx_pos, axis=1)
                amp = reflection_amplitude(d1, d2, carrier_wavelength, 1.0)
                amp = amp * np.sqrt(track.rcs_m2) * tx.gain_toward(track.positions)
                lengths.append(d1 + d2)
                amplitudes.append(amp)

            csi[:, a, :] = synthesize_csi(
                np.stack(lengths, axis=1),
                np.stack(amplitudes, axis=1),
                wavelengths,
            )
        return csi

    def measure(self, times: np.ndarray) -> np.ndarray:
        """CSI as the NIC would report it: Eq. (1) plus Eq. (2) noise."""
        csi = self.clean_csi(times)
        if self._impairments is None:
            return csi
        return self._impairments.apply(csi, np.asarray(times, dtype=np.float64))
