"""Commodity-hardware CSI impairments — Eq. (2) of the paper.

The measured phase on subcarrier ``f`` is

    phi_hat_f(t) = phi_f(t) + 2 pi (f / N) dt + beta(t) + Z_f

where ``beta(t)`` is the CFO-induced common phase offset, ``dt`` the
SFO-induced sampling lag (its phase error grows linearly with the signed
subcarrier index ``f``), and ``Z_f`` thermal noise.  Crucially, all RX
antennas of one NIC share the oscillator and sampling clock, so ``beta``
and ``dt`` are identical across antennas — that is what makes the
antenna-difference sanitiser of Sec. 3.2 work, and what these models must
reproduce exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rf.spectrum import Spectrum


@dataclass(frozen=True)
class ImpairmentConfig:
    """Noise magnitudes for the simulated NIC.

    Attributes:
        cfo_step_rad: per-packet standard deviation of the CFO phase
            random walk.  Residual CFO after the 802.11 preamble
            correction drifts packet-to-packet; a random walk with
            occasional large steps is the accepted model [47].
        cfo_jitter_rad: additional i.i.d. per-packet CFO phase jitter.
        sfo_delay_std_s: standard deviation of the slowly varying SFO
            sampling lag ``dt`` (tens of nanoseconds for commodity NICs).
        sfo_drift_tau_s: correlation time of the SFO lag process.
        snr_db: per-subcarrier thermal SNR relative to the total received
            power (sets ``Z_f``).
    """

    cfo_step_rad: float = 0.05
    cfo_jitter_rad: float = 0.3
    sfo_delay_std_s: float = 40e-9
    sfo_drift_tau_s: float = 1.0
    snr_db: float = 28.0

    def __post_init__(self) -> None:
        if self.cfo_step_rad < 0 or self.cfo_jitter_rad < 0:
            raise ValueError("CFO noise magnitudes must be non-negative")
        if self.sfo_delay_std_s < 0:
            raise ValueError("sfo_delay_std_s must be non-negative")
        if self.sfo_drift_tau_s <= 0:
            raise ValueError("sfo_drift_tau_s must be positive")


class HardwareImpairments:
    """Applies CFO/SFO/thermal noise to clean CSI matrices.

    One instance models one receiver NIC; the CFO/SFO realisations it
    draws are shared across that NIC's antennas (see module docstring).
    """

    def __init__(
        self,
        spectrum: Spectrum,
        config: ImpairmentConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._spectrum = spectrum
        self._config = config if config is not None else ImpairmentConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def config(self) -> ImpairmentConfig:
        return self._config

    def cfo_phases(self, times: np.ndarray) -> np.ndarray:
        """Draw the CFO phase offset ``beta(t)`` for each packet time."""
        times = np.asarray(times, dtype=np.float64)
        steps = self._rng.normal(0.0, self._config.cfo_step_rad, len(times))
        walk = np.cumsum(steps)
        jitter = self._rng.normal(0.0, self._config.cfo_jitter_rad, len(times))
        return walk + jitter

    def sfo_delays(self, times: np.ndarray) -> np.ndarray:
        """Draw the slowly varying SFO sampling lag ``dt(t)`` per packet.

        Ornstein-Uhlenbeck-style first-order process so that nearby
        packets share nearly the same lag, as real sampling clocks do.
        """
        times = np.asarray(times, dtype=np.float64)
        if len(times) == 0:
            return np.zeros(0)
        config = self._config
        delays = np.empty(len(times), dtype=np.float64)
        delays[0] = self._rng.normal(0.0, config.sfo_delay_std_s)
        for k in range(1, len(times)):
            gap = max(times[k] - times[k - 1], 0.0)
            rho = np.exp(-gap / config.sfo_drift_tau_s)
            innovation_std = config.sfo_delay_std_s * np.sqrt(max(1.0 - rho**2, 0.0))
            delays[k] = rho * delays[k - 1] + self._rng.normal(0.0, innovation_std)
        return delays

    def apply(self, csi: np.ndarray, times: np.ndarray) -> np.ndarray:
        """Return noisy CSI per Eq. (2).

        Args:
            csi: clean CSI of shape ``(T, n_rx, F)``.
            times: packet times, shape ``(T,)``.
        """
        csi = np.asarray(csi, dtype=np.complex128)
        times = np.asarray(times, dtype=np.float64)
        if csi.ndim != 3:
            raise ValueError(f"csi must have shape (T, n_rx, F), got {csi.shape}")
        if len(times) != csi.shape[0]:
            raise ValueError(
                f"got {len(times)} times for {csi.shape[0]} CSI snapshots"
            )

        beta = self.cfo_phases(times)
        delays = self.sfo_delays(times)
        indices = self._spectrum.subcarrier_indices.astype(np.float64)
        # SFO phase error: 2 pi * (f / N) * dt, with f the SIGNED subcarrier
        # index, expressed against the subcarrier spacing (f/N of the
        # sample clock) — the linear-in-f term of Eq. (2).
        sample_rate_hz = (
            self._spectrum.fft_size
            * (self._spectrum.frequencies_hz[1] - self._spectrum.frequencies_hz[0])
            / float(indices[1] - indices[0])
        )
        sfo_phase = (
            2.0
            * np.pi
            * (indices[None, :] / self._spectrum.fft_size)
            * delays[:, None]
            * sample_rate_hz
        )
        distortion = np.exp(1j * (beta[:, None] + sfo_phase))
        noisy = csi * distortion[:, None, :]

        # Thermal noise scaled to the average per-subcarrier signal power.
        signal_power = float(np.mean(np.abs(csi) ** 2))
        noise_power = signal_power * 10.0 ** (-self._config.snr_db / 10.0)
        sigma = np.sqrt(noise_power / 2.0)
        noise = self._rng.normal(0.0, sigma, csi.shape) + 1j * self._rng.normal(
            0.0, sigma, csi.shape
        )
        return noisy + noise
