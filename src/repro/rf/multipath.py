"""Multipath CSI synthesis — Eq. (1) of the paper.

The cabin scene is reduced to a set of time-varying point scatterers plus
(possibly blocked) LOS paths.  ``synthesize_csi`` turns per-path lengths
and amplitudes into per-subcarrier complex CSI:

    H_f(t) = sum_k  A_k(t) * exp(j 2 pi d_k(t) / lambda_f)

``ScattererTrack`` / ``BlockerTrack`` are the hand-off types between the
cabin world model (which knows about heads, wheels and passengers) and the
RF channel (which only cares about positions and cross-sections).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ScattererTrack:
    """A point scatterer sampled at the channel's packet times.

    Attributes:
        name: label for diagnostics ("head-face", "steering-hands", ...).
        positions: ``(T, 3)`` scatterer positions per sample time.
        rcs_m2: radar cross-section [m^2]; scalar or ``(T,)`` if the
            effective cross-section varies (e.g. a turning head presenting
            a different aspect).
    """

    name: str
    positions: np.ndarray
    rcs_m2: np.ndarray

    def __post_init__(self) -> None:
        positions = np.asarray(self.positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise ValueError(
                f"positions must have shape (T, 3), got {positions.shape}"
            )
        rcs = np.asarray(self.rcs_m2, dtype=np.float64)
        if rcs.ndim == 0:
            rcs = np.full(len(positions), float(rcs))
        if rcs.shape != (len(positions),):
            raise ValueError(
                f"rcs_m2 must be scalar or shape (T,); got {rcs.shape} for T={len(positions)}"
            )
        if np.any(rcs < 0):
            raise ValueError("rcs_m2 must be non-negative")
        object.__setattr__(self, "positions", positions)
        object.__setattr__(self, "rcs_m2", rcs)

    def __len__(self) -> int:
        return len(self.positions)


@dataclass(frozen=True)
class BlockerTrack:
    """A moving sphere that can shadow LOS paths (the driver's head).

    A blocked LOS does not vanish: the field creeps around (and partly
    through) the obstacle, attenuated and with an excess path length.
    For a rotating head that excess is aspect-dependent — the creeping
    wave hugs a nose, a cheek or an ear depending on the yaw — which is
    precisely how head *orientation* modulates the phase of the
    behind-the-head antenna in the paper's Layout 1.

    Attributes:
        name: label for diagnostics.
        centers: ``(T, 3)`` sphere centres per sample time.
        radius: sphere radius [m].
        extra_path_m: optional ``(T,)`` aspect-dependent excess path the
            creeping wave accrues, added to a blocked LOS path's length.
        transmission: optional amplitude factor for blocked paths; when
            ``None`` the channel's default blocked-LOS attenuation is
            used.
    """

    name: str
    centers: np.ndarray
    radius: float
    extra_path_m: np.ndarray | None = None
    transmission: float | None = None

    def __post_init__(self) -> None:
        centers = np.asarray(self.centers, dtype=np.float64)
        if centers.ndim != 2 or centers.shape[1] != 3:
            raise ValueError(f"centers must have shape (T, 3), got {centers.shape}")
        if self.radius <= 0:
            raise ValueError(f"radius must be positive, got {self.radius}")
        object.__setattr__(self, "centers", centers)
        if self.extra_path_m is not None:
            extra = np.asarray(self.extra_path_m, dtype=np.float64)
            if extra.shape != (len(centers),):
                raise ValueError(
                    f"extra_path_m must have shape ({len(centers)},), "
                    f"got {extra.shape}"
                )
            object.__setattr__(self, "extra_path_m", extra)
        if self.transmission is not None and not 0.0 <= self.transmission <= 1.0:
            raise ValueError(f"transmission must be in [0, 1], got {self.transmission}")

    def creeping_excess(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised geometric detour excess for blocked segments.

        Tangent-arc-tangent geodesic around the sphere (see
        :func:`repro.geometry.shapes.creeping_excess`); returns 0 where
        the segment clears the sphere.  Shapes broadcast like
        :meth:`blocks`.
        """
        a = np.broadcast_to(np.asarray(a, dtype=np.float64), self.centers.shape)
        b = np.broadcast_to(np.asarray(b, dtype=np.float64), self.centers.shape)
        ca = a - self.centers
        cb = b - self.centers
        da = np.linalg.norm(ca, axis=1)
        db = np.linalg.norm(cb, axis=1)
        r = self.radius
        blocked = self.blocks(a, b)
        outside = (da > r) & (db > r)
        safe_da = np.where(outside, da, 2.0 * r)
        safe_db = np.where(outside, db, 2.0 * r)
        cos_gamma = np.einsum("td,td->t", ca, cb) / (safe_da * safe_db)
        gamma = np.arccos(np.clip(cos_gamma, -1.0, 1.0))
        arc = gamma - np.arccos(r / safe_da) - np.arccos(r / safe_db)
        detour = (
            np.sqrt(np.maximum(safe_da**2 - r**2, 0.0))
            + np.sqrt(np.maximum(safe_db**2 - r**2, 0.0))
            + r * np.maximum(arc, 0.0)
        )
        straight = np.linalg.norm(b - a, axis=1)
        excess = np.maximum(detour - straight, 0.0)
        excess = np.where(arc > 0.0, excess, 0.0)
        # Endpoint inside the sphere: grazing fallback (matches the
        # scalar helper in repro.geometry.shapes).
        excess = np.where(outside, excess, (np.pi / 2.0 - 1.0) * r)
        return np.where(blocked, excess, 0.0)

    def blocks(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorised segment-sphere test for segment ``a(t) -> b(t)``.

        ``a`` and ``b`` broadcast against ``(T, 3)``.  Returns a boolean
        ``(T,)`` mask, True where the sphere intersects the segment.
        """
        a = np.broadcast_to(np.asarray(a, dtype=np.float64), self.centers.shape)
        b = np.broadcast_to(np.asarray(b, dtype=np.float64), self.centers.shape)
        ab = b - a
        length_sq = np.einsum("td,td->t", ab, ab)
        # Guard zero-length segments: treat as point-in-sphere.
        safe = np.where(length_sq > 0, length_sq, 1.0)
        t_par = np.einsum("td,td->t", self.centers - a, ab) / safe
        t_par = np.clip(t_par, 0.0, 1.0)
        closest = a + t_par[:, None] * ab
        dist = np.linalg.norm(closest - self.centers, axis=1)
        return dist <= self.radius


def synthesize_csi(
    lengths_m: np.ndarray,
    amplitudes: np.ndarray,
    wavelengths_m: np.ndarray,
) -> np.ndarray:
    """Sum paths into per-subcarrier CSI (Eq. 1).

    Args:
        lengths_m: ``(T, K)`` path lengths over time.
        amplitudes: ``(T, K)`` path amplitudes over time.
        wavelengths_m: ``(F,)`` subcarrier wavelengths.

    Returns:
        Complex CSI of shape ``(T, F)``.

    The path loop is kept at python level and the ``(T, F)`` inner product
    vectorised, so memory stays at one ``(T, F)`` buffer instead of a
    ``(T, K, F)`` cube.
    """
    lengths_m = np.asarray(lengths_m, dtype=np.float64)
    amplitudes = np.asarray(amplitudes, dtype=np.float64)
    wavelengths_m = np.asarray(wavelengths_m, dtype=np.float64)
    if lengths_m.shape != amplitudes.shape or lengths_m.ndim != 2:
        raise ValueError(
            f"lengths {lengths_m.shape} and amplitudes {amplitudes.shape} "
            "must share a (T, K) shape"
        )
    if wavelengths_m.ndim != 1 or np.any(wavelengths_m <= 0):
        raise ValueError("wavelengths_m must be a 1-D array of positive values")

    num_times, num_paths = lengths_m.shape
    inv_lambda = 1.0 / wavelengths_m
    csi = np.zeros((num_times, len(wavelengths_m)), dtype=np.complex128)
    for k in range(num_paths):
        phase = 2.0 * np.pi * np.outer(lengths_m[:, k], inv_lambda)
        csi += amplitudes[:, k, None] * np.exp(1j * phase)
    return csi
