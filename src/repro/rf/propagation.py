"""Propagation amplitudes: free-space LOS and single-bounce reflections.

The channel model only needs *relative* amplitudes between paths (CSI is
measured after AGC), so we use the standard narrowband forms:

* LOS (Friis, amplitude): ``A = lambda / (4 pi d)``.
* Single-bounce scattering (bistatic radar, amplitude):
  ``A = sqrt(rcs) * lambda / ((4 pi)^{1.5} d1 d2)``, where ``rcs`` is the
  scatterer's radar cross-section [m^2].  Human heads at 2.4 GHz have an
  RCS of roughly 0.01-0.1 m^2; a steering wheel with hands is similar.

When the driver's head blocks an RX antenna's LOS, the through-body
attenuation at 2.4 GHz is on the order of 10-20 dB; the residual
(diffracted + attenuated) LOS keeps the blocked antenna usable while making
its phase head-dominated — the property Layout 1 exploits (Sec. 5.2.2).
"""

from __future__ import annotations

import numpy as np

#: Amplitude attenuation applied to a LOS path blocked by a head
#: (~ -16 dB power, mid-range of published 2.4 GHz through-body losses).
BLOCKED_LOS_ATTENUATION = 0.15

_FOUR_PI = 4.0 * np.pi


def los_amplitude(distance_m: np.ndarray, wavelength_m: float) -> np.ndarray:
    """Free-space amplitude of a direct path (Friis, unit antenna gains)."""
    distance_m = np.asarray(distance_m, dtype=np.float64)
    if np.any(distance_m <= 0):
        raise ValueError("LOS distance must be positive")
    if wavelength_m <= 0:
        raise ValueError(f"wavelength must be positive, got {wavelength_m}")
    return wavelength_m / (_FOUR_PI * distance_m)


def reflection_amplitude(
    d1_m: np.ndarray,
    d2_m: np.ndarray,
    wavelength_m: float,
    rcs_m2: float,
) -> np.ndarray:
    """Amplitude of a TX -> scatterer -> RX bounce (bistatic radar form)."""
    d1_m = np.asarray(d1_m, dtype=np.float64)
    d2_m = np.asarray(d2_m, dtype=np.float64)
    if np.any(d1_m <= 0) or np.any(d2_m <= 0):
        raise ValueError("reflection leg distances must be positive")
    if wavelength_m <= 0:
        raise ValueError(f"wavelength must be positive, got {wavelength_m}")
    if rcs_m2 < 0:
        raise ValueError(f"rcs must be non-negative, got {rcs_m2}")
    return np.sqrt(rcs_m2) * wavelength_m / (_FOUR_PI**1.5 * d1_m * d2_m)
