"""OFDM spectrum description for the simulated 802.11n link.

A ``Spectrum`` pins down which subcarriers the CSI tool reports and their
absolute frequencies/wavelengths.  The per-subcarrier wavelength matters:
Eq. (1) of the paper sums ``exp(j 2 pi d_k / lambda_f)`` per subcarrier
``f``, and the small wavelength spread across a 20 MHz channel is what
gives CSI its frequency selectivity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import constants


@dataclass(frozen=True)
class Spectrum:
    """Carrier frequency plus the reported subcarrier grid.

    Attributes:
        carrier_hz: centre frequency of the channel [Hz].
        subcarrier_indices: signed OFDM subcarrier indices (Intel 5300
            layout by default).
        fft_size: OFDM FFT size ``N`` used by the SFO phase model
            (Eq. (2) has the SFO term grow as ``2 pi f / N * dt``).
    """

    carrier_hz: float = constants.DEFAULT_CARRIER_HZ
    subcarrier_indices: np.ndarray = field(
        default_factory=lambda: constants.INTEL5300_SUBCARRIER_INDICES.copy()
    )
    fft_size: int = constants.OFDM_FFT_SIZE

    def __post_init__(self) -> None:
        if self.carrier_hz <= 0:
            raise ValueError(f"carrier_hz must be positive, got {self.carrier_hz}")
        indices = np.asarray(self.subcarrier_indices, dtype=np.int64)
        if indices.ndim != 1 or len(indices) == 0:
            raise ValueError("subcarrier_indices must be a non-empty 1-D array")
        if self.fft_size < 2:
            raise ValueError(f"fft_size must be >= 2, got {self.fft_size}")
        if np.any(np.abs(indices) >= self.fft_size):
            raise ValueError("subcarrier indices exceed the FFT size")
        object.__setattr__(self, "subcarrier_indices", indices)

    @property
    def num_subcarriers(self) -> int:
        return len(self.subcarrier_indices)

    @property
    def frequencies_hz(self) -> np.ndarray:
        """Absolute subcarrier frequencies [Hz], shape ``(num_subcarriers,)``."""
        return constants.subcarrier_frequencies(self.carrier_hz, self.subcarrier_indices)

    @property
    def wavelengths_m(self) -> np.ndarray:
        """Per-subcarrier wavelengths [m]."""
        return constants.SPEED_OF_LIGHT / self.frequencies_hz

    @property
    def carrier_wavelength_m(self) -> float:
        """Wavelength at the channel centre [m] (~0.123 m at 2.437 GHz)."""
        return constants.wavelength(self.carrier_hz)

    @staticmethod
    def wifi_2_4ghz() -> Spectrum:
        """The prototype's band: 2.4 GHz channel 6 (Sec. 4)."""
        return Spectrum()

    @staticmethod
    def wifi_5ghz() -> Spectrum:
        """5 GHz channel 36 — the Sec. 7 extension.

        The paper expects *better* performance at 5 GHz: the shorter
        wavelength roughly doubles the phase swing per centimetre of
        path change, and the higher propagation loss shrinks the
        interference footprint of distant reflectors.
        """
        return Spectrum(carrier_hz=5.180e9)
