"""First-order specular reflections off cabin surfaces (image method).

The random point clutter of :mod:`repro.cabin.geometry` models small
interior objects; the *large* reflectors — windshield, roof, side glass —
are better modelled as planes.  For a plane with a reflection coefficient
``gamma``, the specular TX -> plane -> RX path is exactly the direct path
from the TX's mirror image to the RX (the image method), valid when the
plane is large compared to the Fresnel zone, which metre-scale glass at
12 cm wavelength comfortably is.

These paths are static (the glass does not move), so like the point
clutter they contribute constant phasors — but physically placed ones,
which matters for how the composite phase differs between antenna
layouts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.vec import normalize


@dataclass(frozen=True)
class ReflectingPlane:
    """An infinite plane reflector ``dot(n, x) = d`` with amplitude gamma.

    Attributes:
        name: label ("windshield", "roof", ...).
        normal: unit normal (direction does not matter for mirroring).
        offset: signed plane offset ``d`` such that points on the plane
            satisfy ``dot(normal, x) == offset``.
        gamma: amplitude reflection coefficient (glass at WiFi grazing
            angles: ~0.3-0.6; a metal roof: ~0.9).
    """

    name: str
    normal: np.ndarray
    offset: float
    gamma: float

    def __post_init__(self) -> None:
        normal = normalize(np.asarray(self.normal, dtype=np.float64))
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must be in [0, 1], got {self.gamma}")
        object.__setattr__(self, "normal", normal)

    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        """Signed distance of ``points`` (``(..., 3)``) to the plane."""
        points = np.asarray(points, dtype=np.float64)
        return points @ self.normal - self.offset

    def mirror(self, points: np.ndarray) -> np.ndarray:
        """Mirror image of ``points`` across the plane."""
        points = np.asarray(points, dtype=np.float64)
        distance = self.signed_distance(points)
        return points - 2.0 * distance[..., None] * self.normal

    def reflection_path(
        self, tx: np.ndarray, rx: np.ndarray
    ) -> tuple[float, float]:
        """``(path_length, amplitude_factor)`` of the specular bounce.

        The path length is ``|image(tx) - rx|``; the amplitude factor is
        ``gamma`` (free-space spreading over the unfolded length is the
        caller's job, identical to a LOS of that length).  Raises if TX
        and RX sit on opposite sides of the plane (no specular path).
        """
        tx = np.asarray(tx, dtype=np.float64)
        rx = np.asarray(rx, dtype=np.float64)
        side_tx = self.signed_distance(tx)
        side_rx = self.signed_distance(rx)
        if side_tx * side_rx < 0:
            raise ValueError(
                f"no specular path off {self.name!r}: endpoints straddle the plane"
            )
        image = self.mirror(tx)
        return float(np.linalg.norm(image - rx)), self.gamma


def default_cabin_surfaces() -> list[ReflectingPlane]:
    """The dominant glass/metal planes of a sedan cabin (car frame).

    Offsets follow DESIGN.md's frame: origin at the phone on the dash,
    +x rear, +y passenger side, +z up.
    """
    return [
        # Windshield: raked glass ahead of the dashboard.  Automotive
        # glass reflects ~10-20% of the power at WiFi incidence angles.
        ReflectingPlane(
            "windshield", np.array([0.85, 0.0, -0.53]), -0.22, gamma=0.15
        ),
        # Roof: the metal panel reflects strongly but the headliner
        # (fabric + foam, lossy at 2.4 GHz) attenuates both passes.
        ReflectingPlane("roof", np.array([0.0, 0.0, 1.0]), 0.75, gamma=0.12),
        # Side glass, as the windshield.
        ReflectingPlane(
            "driver-window", np.array([0.0, 1.0, 0.0]), -0.62, gamma=0.15
        ),
        ReflectingPlane(
            "passenger-window", np.array([0.0, 1.0, 0.0]), 0.95, gamma=0.15
        ),
    ]


def surface_paths(
    tx: np.ndarray,
    rx: np.ndarray,
    surfaces: list[ReflectingPlane],
) -> list[tuple[str, float, float, np.ndarray]]:
    """All first-order surface bounces between two antennas.

    Returns ``(name, path_length, gamma, departure_target)`` per usable
    surface, where ``departure_target`` is the RX's mirror image — the
    point the TX radiates *toward* along this path, which is what the TX
    antenna pattern must be evaluated against.  Surfaces with no
    specular path (endpoints straddling) are skipped.
    """
    paths = []
    rx = np.asarray(rx, dtype=np.float64)
    for plane in surfaces:
        try:
            length, gamma = plane.reflection_path(tx, rx)
        except ValueError:
            continue
        paths.append((plane.name, length, gamma, plane.mirror(rx)))
    return paths
