"""``repro.scenarios``: declared, tiered, replayable fleet scenarios.

A scenario is a :class:`~repro.scenarios.spec.ScenarioSpec` — cabin
count, traffic shape, workload mix, fault plan, churn and seed — that
fully determines a fleet run: same spec, same bits out.  Specs live in
a validating registry addressable by name or tier (T0 calm commute
through T3 rush-hour chaos), and the canonical packs in
:mod:`~repro.scenarios.packs` register themselves on import, so
``import repro.scenarios`` is enough to see the full catalogue.

The CLI front end is ``vihot scenarios list|validate|run`` plus
``vihot serve-bench --scenario <name-or-tier>``.
"""

from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    register_scenario,
    resolve_scenario,
)
from repro.scenarios.runner import run_scenario, run_scenario_chaos
from repro.scenarios.spec import TIERS, ScenarioSpec
from repro.scenarios.validate import validate_scenario

# Importing the packs registers the canonical catalogue; keep this after
# the registry import so registration has something to register into.
from repro.scenarios import packs as _packs  # noqa: E402

__all__ = [
    "TIERS",
    "ScenarioSpec",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "resolve_scenario",
    "run_scenario",
    "run_scenario_chaos",
    "validate_scenario",
]

del _packs
