"""The canonical scenario packs, two per tier.

Each pack is sized for CI: small fleets, 2.5–3 s of 100 Hz stream time,
so a full-tier sweep stays in seconds of wall clock while still
exercising every serving-layer path the tier contract names.  The first
pack registered under each tier is its flagship (what ``--scenario T2``
resolves to), so ordering below is deliberate.

Fault plans reuse :func:`repro.faults.chaos_plan` — every injector class
opening over a mid-run window — with per-scenario seeds so no two packs
share a corruption pattern.
"""

from __future__ import annotations

from repro.faults import chaos_plan
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import ScenarioSpec

T0_CALM_COMMUTE = register_scenario(ScenarioSpec(
    name="t0-calm-commute",
    tier="T0",
    description="Six head-tracking cabins on clean streams: the baseline "
                "the registry's replay guarantee is anchored to.",
    seed=11,
    num_sessions=6,
    duration_s=2.5,
    workload_mix=("plain",),
))

T0_STEADY_BREATHING = register_scenario(ScenarioSpec(
    name="t0-steady-breathing",
    tier="T0",
    description="Four parked cabins running breathing-rate micro-motion "
                "sensing only — the V2iFi-style workload in isolation.",
    seed=12,
    num_sessions=4,
    duration_s=3.0,
    workload_mix=("breathing",),
))

T1_MORNING_MIX = register_scenario(ScenarioSpec(
    name="t1-morning-mix",
    tier="T1",
    description="Head tracking across its serving variants — plain, "
                "IMU-fused, camera fallback and forecasting — in one fleet.",
    seed=21,
    num_sessions=8,
    duration_s=2.5,
    workload_mix=("plain", "imu", "camera", "forecast"),
))

T1_REAR_SEAT_SHUTTLE = register_scenario(ScenarioSpec(
    name="t1-rear-seat-shuttle",
    tier="T1",
    description="A shuttle fleet mixing head tracking with CarFi-style "
                "rear-seat occupant localization, batched.",
    seed=22,
    num_sessions=6,
    duration_s=2.5,
    workload_mix=("plain", "localize"),
    batching=True,
))

T2_DOWNTOWN_INTERFERENCE = register_scenario(ScenarioSpec(
    name="t2-downtown-interference",
    tier="T2",
    description="Head-tracking variants under a mid-run fault storm: "
                "bursty loss, NaN dropouts, clock skew and deep fades.",
    seed=31,
    num_sessions=8,
    duration_s=2.5,
    workload_mix=("plain", "imu", "forecast"),
    fault_plan=chaos_plan(seed=31, start_s=0.8, stop_s=1.5),
))

T2_VITALS_UNDER_LOAD = register_scenario(ScenarioSpec(
    name="t2-vitals-under-load",
    tier="T2",
    description="Breathing sensing sharing the tick loop with head "
                "tracking while every injector class fires.",
    seed=32,
    num_sessions=6,
    duration_s=3.0,
    workload_mix=("breathing", "plain"),
    fault_plan=chaos_plan(seed=32, start_s=1.0, stop_s=1.8),
))

T2_SHARDED_RUSH = register_scenario(ScenarioSpec(
    name="t2-sharded-rush",
    tier="T2",
    description="Fifty mixed-workload cabins under the fault storm: the "
                "fleet the sharded serving fabric's bit-identity gate "
                "replays across worker counts.  Registered after the "
                "tier flagship on purpose — CI targets it by name.",
    seed=33,
    num_sessions=50,
    duration_s=2.0,
    workload_mix=("plain", "imu", "forecast"),
    fault_plan=chaos_plan(seed=33, start_s=0.7, stop_s=1.4),
))

T3_RUSH_HOUR_CHAOS = register_scenario(ScenarioSpec(
    name="t3-rush-hour-chaos",
    tier="T3",
    description="The full stack at once: every cabin kind, heavy faults, "
                "a fifth of the fleet churning mid-run, batched scheduling.",
    seed=41,
    num_sessions=12,
    duration_s=3.0,
    workload_mix=("plain", "imu", "camera", "forecast", "localize", "breathing"),
    fault_plan=chaos_plan(seed=41, start_s=1.0, stop_s=1.8),
    churn_fraction=0.2,
    batching=True,
))

T3_STADIUM_EGRESS = register_scenario(ScenarioSpec(
    name="t3-stadium-egress",
    tier="T3",
    description="Localization- and vitals-heavy fleet with aggressive "
                "session churn under the fault storm: the admission and "
                "teardown paths while degraded.",
    seed=42,
    num_sessions=10,
    duration_s=3.0,
    workload_mix=("plain", "localize", "breathing"),
    fault_plan=chaos_plan(seed=42, start_s=0.9, stop_s=1.7),
    churn_fraction=0.3,
))
