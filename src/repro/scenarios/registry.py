"""The scenario registry: declared specs addressable by name or tier.

Registration is validating (a spec that fails
:func:`~repro.scenarios.validate.validate_scenario` is refused) and
idempotent (re-registering a name with the same
:attr:`~repro.scenarios.spec.ScenarioSpec.scenario_id` is a no-op, a
different identity under a taken name raises).  Registration order is
preserved: the first scenario registered under a tier is that tier's
*flagship*, so CLI calls like ``serve-bench --scenario T2`` resolve to a
canonical pack without spelling the full name.
"""

from __future__ import annotations

from repro.scenarios.spec import TIERS, ScenarioSpec
from repro.scenarios.validate import validate_scenario

_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Validate and register ``spec``; returns it for chaining.

    Raises :class:`ValueError` if the spec violates the scenario
    contract, or if its name is taken by a structurally different spec.
    """
    problems = validate_scenario(spec)
    if problems:
        detail = "; ".join(problems)
        raise ValueError(f"scenario {spec.name!r} is invalid: {detail}")
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.scenario_id != spec.scenario_id:
        raise ValueError(
            f"scenario name {spec.name!r} already registered with a "
            f"different identity ({existing.scenario_id} != {spec.scenario_id})"
        )
    _REGISTRY.setdefault(spec.name, spec)
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by exact name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def list_scenarios(tier: str | None = None) -> tuple[ScenarioSpec, ...]:
    """All registered scenarios in registration order, optionally one tier."""
    if tier is not None and tier not in TIERS:
        raise ValueError(f"tier {tier!r} is not one of {list(TIERS)}")
    return tuple(
        spec for spec in _REGISTRY.values() if tier is None or spec.tier == tier
    )


def resolve_scenario(name_or_tier: str) -> ScenarioSpec:
    """Resolve a scenario name, or a tier to its flagship scenario.

    A tier (``"T2"``) resolves to the first scenario registered under
    it.  Anything else must be an exact scenario name.
    """
    if name_or_tier in _REGISTRY:
        return _REGISTRY[name_or_tier]
    if name_or_tier in TIERS:
        for spec in _REGISTRY.values():
            if spec.tier == name_or_tier:
                return spec
        raise KeyError(f"no scenarios registered under tier {name_or_tier!r}")
    known = ", ".join(sorted(_REGISTRY)) or "<none>"
    raise KeyError(
        f"unknown scenario or tier {name_or_tier!r}; "
        f"tiers: {', '.join(TIERS)}; registered: {known}"
    )
