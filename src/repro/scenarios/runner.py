"""Run a declared scenario through the serving stack.

Two entry points, matching the two fleet drivers:

* :func:`run_scenario` — the loadgen path
  (:func:`repro.serve.loadgen.run_load`): throughput/latency metrics,
  optional stream capture and standalone-replay verification.
* :func:`run_scenario_chaos` — the containment path
  (:func:`repro.serve.chaos.run_chaos`): counts unhandled exceptions and
  checks the fleet heals after the fault window.

Both take every knob from the spec, so a scenario's
:attr:`~repro.scenarios.spec.ScenarioSpec.scenario_id` fully determines
what either driver replays.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec
from repro.serve.chaos import ChaosResult, run_chaos
from repro.serve.loadgen import LoadResult, run_load


def run_scenario(
    spec: ScenarioSpec,
    verify_sessions: int | None = None,
    capture_sessions: int = 0,
    workers: int = 0,
    processes: bool = True,
) -> LoadResult:
    """Run ``spec`` through the loadgen driver.

    ``verify_sessions`` defaults to two standalone-replay probes on
    clean scenarios and zero on faulted or churning ones (a corrupted
    or interrupted stream has no standalone twin to compare against).
    ``capture_sessions`` captures that many estimate streams for replay
    comparison; note churn takes the fleet tail, so capturing the whole
    fleet on a churning scenario clamps the churn away.

    ``workers`` > 0 serves the scenario through the sharded
    :class:`~repro.serve.fabric.ServingFabric` instead of one manager —
    the scenario id pins the same estimate stream either way, which is
    how CI gates the fleet's bit-identity across worker counts.
    """
    if verify_sessions is None:
        churned = spec.churn_sessions > 0
        verify_sessions = (
            0 if spec.fault_plan.enabled or churned
            else min(2, spec.num_sessions)
        )
    return run_load(
        num_sessions=spec.num_sessions,
        duration_s=spec.duration_s,
        rate_hz=spec.rate_hz,
        tick_interval_s=spec.tick_interval_s,
        stride_s=spec.stride_s,
        budget_s=spec.budget_s,
        queue_depth=spec.queue_depth,
        verify_sessions=verify_sessions,
        buffer_s=spec.buffer_s,
        seed=spec.seed,
        plan=spec.fault_plan if spec.fault_plan.enabled else None,
        batching=spec.batching,
        capture_sessions=capture_sessions,
        workloads=spec.workload_mix,
        churn_sessions=spec.churn_sessions,
        workers=workers,
        processes=processes,
    )


def run_scenario_chaos(spec: ScenarioSpec) -> ChaosResult:
    """Run ``spec`` through the chaos containment driver.

    Passes the spec's own fault plan verbatim — including an empty plan
    for T0/T1 scenarios, so the default storm never leaks into a tier
    that promised clean streams.
    """
    return run_chaos(
        num_sessions=spec.num_sessions,
        duration_s=spec.duration_s,
        rate_hz=spec.rate_hz,
        tick_interval_s=spec.tick_interval_s,
        stride_s=spec.stride_s,
        budget_s=spec.budget_s,
        queue_depth=spec.queue_depth,
        buffer_s=spec.buffer_s,
        seed=spec.seed,
        plan=spec.fault_plan,
        batching=spec.batching,
        workloads=spec.workload_mix,
    )
