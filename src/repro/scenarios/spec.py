"""The declared-scenario contract.

A :class:`ScenarioSpec` is a complete, self-contained description of one
fleet run: cabin count, traffic shape, workload mix, fault plan, session
churn and the seed that makes all of it deterministic.  Two runs of the
same spec produce bit-identical estimate streams and identical serving
counters — the replay guarantee the scenario tests pin.

Identity is structural: :attr:`ScenarioSpec.scenario_id` hashes the
sorted-key JSON encoding of every replay-relevant field, so renaming a
scenario keeps its id while touching any knob changes it.  Fault
injectors are serialized with their class name plus their dataclass
fields, so two plans with the same numbers but different injector types
hash differently.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.faults import FaultPlan

#: Canonical scenario tiers, calmest first.  T0 is a fault-free single
#: workload commute; T3 is rush-hour chaos — heavy faults, mixed
#: workloads and mid-run session churn.
TIERS: tuple[str, ...] = ("T0", "T1", "T2", "T3")


@dataclass(frozen=True)
class ScenarioSpec:
    """One declared fleet scenario, fully deterministic given ``seed``.

    ``workload_mix`` is a cycle of loadgen cabin kinds (see
    :data:`repro.serve.loadgen.ALL_WORKLOAD_KINDS`): cabin ``k`` gets
    ``workload_mix[k % len(workload_mix)]``.  ``churn_fraction`` closes
    that share of the fleet mid-run and reopens it later in the same
    run, exercising session teardown and re-admission under load.
    """

    name: str
    tier: str
    description: str
    seed: int = 0
    num_sessions: int = 8
    duration_s: float = 2.5
    rate_hz: float = 100.0
    tick_interval_s: float = 0.05
    stride_s: float = 0.25
    budget_s: float = 1.0
    queue_depth: int = 4096
    buffer_s: float = 6.0
    workload_mix: tuple[str, ...] = ("plain",)
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    churn_fraction: float = 0.0
    batching: bool = False

    def identity(self) -> dict[str, object]:
        """The replay-relevant fields as a JSON-encodable mapping.

        ``description`` is deliberately excluded: prose edits must not
        change a scenario's identity.  Injectors carry their class name
        so plans that differ only in injector type hash differently.
        """
        return {
            "name": self.name,
            "tier": self.tier,
            "seed": self.seed,
            "num_sessions": self.num_sessions,
            "duration_s": self.duration_s,
            "rate_hz": self.rate_hz,
            "tick_interval_s": self.tick_interval_s,
            "stride_s": self.stride_s,
            "budget_s": self.budget_s,
            "queue_depth": self.queue_depth,
            "buffer_s": self.buffer_s,
            "workload_mix": list(self.workload_mix),
            "fault_seed": self.fault_plan.seed,
            "fault_injectors": [
                {"type": type(inj).__name__, **asdict(inj)}
                for inj in self.fault_plan.injectors
            ],
            "churn_fraction": self.churn_fraction,
            "batching": self.batching,
        }

    @property
    def scenario_id(self) -> str:
        """A 12-hex-digit structural identity for this scenario."""
        payload = json.dumps(self.identity(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    @property
    def churn_sessions(self) -> int:
        """How many sessions the churn fraction closes mid-run."""
        return int(round(self.churn_fraction * self.num_sessions))
