"""Contract validation for declared scenarios.

:func:`validate_scenario` returns a list of human-readable problems —
empty means the spec honours both the general sanity contract (positive
rates, known workload kinds, fault windows inside the run) and its
tier's behavioural contract:

* **T0** — calm commute: no faults, no churn.
* **T1** — mixed traffic allowed, still fault-free and churn-free.
* **T2** — interference: a fault plan is mandatory.
* **T3** — rush-hour chaos: faults *and* session churn *and* at least
  two distinct workload engines sharing the tick loop.

Registration refuses invalid specs, and ``vihot scenarios validate``
runs the same checks over every registered pack in CI.
"""

from __future__ import annotations

import math
import re

from repro.scenarios.spec import TIERS, ScenarioSpec
from repro.serve.loadgen import ALL_WORKLOAD_KINDS, kind_workload

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9-]*$")


def validate_scenario(spec: ScenarioSpec) -> list[str]:
    """Check ``spec`` against the scenario contract.

    Returns a list of problems; an empty list means the spec is valid.
    """
    problems: list[str] = []

    if not _NAME_RE.match(spec.name):
        problems.append(
            f"name {spec.name!r} must match [a-z0-9][a-z0-9-]* "
            "(lowercase kebab-case)"
        )
    if spec.tier not in TIERS:
        problems.append(f"tier {spec.tier!r} is not one of {list(TIERS)}")

    if spec.num_sessions < 1:
        problems.append(f"num_sessions must be >= 1, got {spec.num_sessions}")
    for field_name in ("duration_s", "rate_hz", "tick_interval_s", "stride_s",
                       "budget_s"):
        value = float(getattr(spec, field_name))
        if not value > 0:
            problems.append(f"{field_name} must be > 0, got {value}")
    if spec.queue_depth < 1:
        problems.append(f"queue_depth must be >= 1, got {spec.queue_depth}")
    if spec.buffer_s < 2.5:
        # The engine needs window_s + stable_window_s of history before
        # its first estimate; a shorter ring buffer silently starves it.
        problems.append(f"buffer_s must be >= 2.5, got {spec.buffer_s}")

    if not spec.workload_mix:
        problems.append("workload_mix must name at least one cabin kind")
    unknown = sorted(set(spec.workload_mix) - set(ALL_WORKLOAD_KINDS))
    if unknown:
        problems.append(
            f"unknown workload kinds {unknown}; known: {list(ALL_WORKLOAD_KINDS)}"
        )

    if not 0.0 <= spec.churn_fraction <= 0.9:
        problems.append(
            f"churn_fraction must be in [0, 0.9], got {spec.churn_fraction}"
        )

    for inj in spec.fault_plan.injectors:
        window = inj.window
        label = type(inj).__name__
        if not math.isfinite(window.stop_s):
            problems.append(f"{label}: fault window must have a finite stop_s")
        elif not 0.0 <= window.start_s < window.stop_s <= spec.duration_s:
            problems.append(
                f"{label}: fault window [{window.start_s}, {window.stop_s}) "
                f"must satisfy 0 <= start < stop <= duration_s "
                f"({spec.duration_s})"
            )

    problems.extend(_tier_problems(spec))
    return problems


def _tier_problems(spec: ScenarioSpec) -> list[str]:
    problems: list[str] = []
    faulted = spec.fault_plan.enabled
    churning = spec.churn_fraction > 0
    if spec.tier in ("T0", "T1"):
        if faulted:
            problems.append(f"{spec.tier} scenarios must not carry a fault plan")
        if churning:
            problems.append(f"{spec.tier} scenarios must not churn sessions")
    elif spec.tier == "T2":
        if not faulted:
            problems.append("T2 scenarios must carry a fault plan")
    elif spec.tier == "T3":
        if not faulted:
            problems.append("T3 scenarios must carry a fault plan")
        if not churning:
            problems.append("T3 scenarios must churn sessions (churn_fraction > 0)")
        engines = {kind_workload(kind) for kind in spec.workload_mix}
        if len(engines) < 2:
            problems.append(
                "T3 scenarios must mix at least two distinct workload "
                f"engines, got {sorted(engines)}"
            )
    return problems
