"""Sensor models: IMUs, the ground-truth headset and the camera tracker."""

from repro.sensors.imu import ImuConfig, PhoneImu, GyroSample
from repro.sensors.headset import HeadsetConfig, HeadsetTracker
from repro.sensors.camera import CameraConfig, CameraTracker

__all__ = [
    "ImuConfig",
    "PhoneImu",
    "GyroSample",
    "HeadsetConfig",
    "HeadsetTracker",
    "CameraConfig",
    "CameraTracker",
]
