"""Camera-based head tracking (the fallback mode and the baseline).

The paper's fallback uses dlib landmarks on the phone's front camera; its
camera *baseline* is what ViHOT's 10x-sampling-rate claim is measured
against.  The error model captures the three camera weaknesses Sec. 2.1
lists:

* a 30 fps frame rate (no samples between frames),
* motion blur: per-frame error grows with the angular speed during the
  exposure, and the tracker drops frames entirely at high speed, and
* lighting: error scales up as the cabin darkens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro import constants
from repro.dsp.series import TimeSeries


class DriverYawScene(Protocol):
    """What :class:`CameraTracker` needs from a cabin scene."""

    def driver_yaw(self, times: np.ndarray) -> np.ndarray:
        """True head yaw [rad] at ``times``.

        :domain return: rad
        """
        ...

    def driver_yaw_rate(self, times: np.ndarray) -> np.ndarray:
        """True head yaw rate [rad/s] at ``times``.

        :domain return: rad_per_s
        """
        ...


@dataclass(frozen=True)
class CameraConfig:
    """Camera tracker error model.

    Attributes:
        frame_rate_hz: video frame rate.
        base_noise_rad: per-frame angular error std in good light with a
            still head.
        exposure_s: effective exposure time; blur error is proportional to
            ``|yaw rate| * exposure``.
        blur_gain: fraction of the intra-exposure sweep that turns into
            estimation error.
        drop_speed_rad_s: angular speed beyond which the landmark fitter
            starts losing the face.
        drop_probability: chance of losing a frame beyond that speed.
        profile_error_gain: landmark error added per radian of yaw beyond
            ``profile_threshold_rad`` — at large yaw the camera sees a
            profile face, half the landmarks vanish and dlib-style
            fitting degrades steeply (why FaceRig "may temporarily lose
            track of the head", Sec. 2.1).
        profile_threshold_rad: yaw where profile-face degradation begins.
        light_level: 1.0 = daylight; error scales with ``1/light_level``
            down to ``min_light`` (night-time failure of Sec. 2.1).
        min_light: floor preventing a division blow-up.
    """

    frame_rate_hz: float = constants.CAMERA_FRAME_RATE_HZ
    base_noise_rad: float = np.deg2rad(2.0)
    exposure_s: float = 1.0 / 120.0
    blur_gain: float = 0.5
    drop_speed_rad_s: float = np.deg2rad(160.0)
    drop_probability: float = 0.5
    profile_error_gain: float = 0.20
    profile_threshold_rad: float = np.deg2rad(35.0)
    light_level: float = 1.0
    min_light: float = 0.15

    def __post_init__(self) -> None:
        if self.frame_rate_hz <= 0:
            raise ValueError(f"frame_rate_hz must be positive, got {self.frame_rate_hz}")
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if not 0.0 < self.min_light <= 1.0:
            raise ValueError("min_light must be in (0, 1]")
        if self.light_level <= 0:
            raise ValueError("light_level must be positive")


class CameraTracker:
    """Simulated dlib-style head tracker on the phone's front camera."""

    def __init__(
        self,
        scene: DriverYawScene,
        config: CameraConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._scene = scene
        self._config = config if config is not None else CameraConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def config(self) -> CameraConfig:
        return self._config

    def _noise_std(self, yaw_rates: np.ndarray, yaws: np.ndarray) -> np.ndarray:
        """Per-frame angular error std for the given motion state.

        :domain yaw_rates: rad_per_s
        :domain yaws: rad
        """
        config = self._config
        light = max(config.light_level, config.min_light)
        blur = config.blur_gain * np.abs(yaw_rates) * config.exposure_s
        profile_face = config.profile_error_gain * np.maximum(
            np.abs(yaws) - config.profile_threshold_rad, 0.0
        )
        return config.base_noise_rad / light + blur + profile_face

    def yaw_stream(self, t_start: float, t_end: float) -> TimeSeries:
        """Per-frame yaw estimates over ``[t_start, t_end]``.

        Dropped frames are simply absent from the returned series, which
        is how a downstream consumer experiences tracking loss.
        """
        if t_end <= t_start:
            raise ValueError(f"empty camera span [{t_start}, {t_end}]")
        config = self._config
        step = 1.0 / config.frame_rate_hz
        times = np.arange(t_start, t_end, step)
        true_yaw = self._scene.driver_yaw(times)
        yaw_rates = self._scene.driver_yaw_rate(times)

        keep = np.ones(len(times), dtype=bool)
        lost = (np.abs(yaw_rates) > config.drop_speed_rad_s) | (
            np.abs(true_yaw) > np.deg2rad(80.0)
        )
        keep[lost] = self._rng.random(int(lost.sum())) > config.drop_probability

        noise = self._rng.normal(0.0, 1.0, len(times)) * self._noise_std(
            yaw_rates, true_yaw
        )
        estimates = true_yaw + noise
        return TimeSeries(times[keep], estimates[keep])

    def estimate_at(self, t: float) -> float:
        """Single-shot estimate at ``t`` using the most recent frame.

        :domain return: rad
        """
        frame_interval = 1.0 / self._config.frame_rate_hz
        stream = self.yaw_stream(max(0.0, t - 5 * frame_interval), t + frame_interval)
        past = stream.before(t + 1e-9)
        if len(past) == 0:
            raise RuntimeError(f"camera produced no frame before t={t}")
        return float(np.asarray(past.values)[-1])
