"""Ground-truth headset (the paper's reversed GearVR).

The evaluation wears a Samsung GearVR on the *back* of the driver's head
purely to log ground-truth orientation (Fig. 2 and Sec. 5.1).  The IMU
fusion inside such a headset is accurate to ~1 degree, but footnote 5
admits the headset "may temporarily slip away during rotation, causing a
high but rare error" — we model slip as rare transient offsets so the
evaluation harness sees the same artefact the authors did, and so tests
can assert that slips create outliers rather than bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.dsp.series import TimeSeries


class TrueYawScene(Protocol):
    """What :class:`HeadsetTracker` needs from a cabin scene."""

    def driver_yaw(self, times: np.ndarray) -> np.ndarray:
        """True head yaw [rad] at ``times``.

        :domain return: rad
        """
        ...


@dataclass(frozen=True)
class HeadsetConfig:
    """Headset tracking error model.

    Attributes:
        rate_hz: IMU fusion output rate.
        noise_std_rad: white angular noise of the fused yaw estimate.
        slip_rate_per_min: expected number of slip events per minute of
            vigorous head turning (rare).
        slip_magnitude_rad: std of the transient slip offset.
        slip_duration_s: how long a slip takes to recover (strap settles).
    """

    rate_hz: float = 120.0
    noise_std_rad: float = np.deg2rad(0.8)
    slip_rate_per_min: float = 0.4
    slip_magnitude_rad: float = np.deg2rad(12.0)
    slip_duration_s: float = 1.5

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")
        if self.noise_std_rad < 0 or self.slip_magnitude_rad < 0:
            raise ValueError("noise magnitudes must be non-negative")
        if self.slip_rate_per_min < 0:
            raise ValueError("slip_rate_per_min must be non-negative")
        if self.slip_duration_s <= 0:
            raise ValueError("slip_duration_s must be positive")


class HeadsetTracker:
    """Produces ground-truth yaw streams as the headset would log them."""

    def __init__(
        self,
        scene: TrueYawScene,
        config: HeadsetConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._scene = scene
        self._config = config if config is not None else HeadsetConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)

    @property
    def config(self) -> HeadsetConfig:
        return self._config

    def yaw_stream(self, t_start: float, t_end: float) -> TimeSeries:
        """Headset yaw log over ``[t_start, t_end]`` (noise + rare slips)."""
        if t_end <= t_start:
            raise ValueError(f"empty headset span [{t_start}, {t_end}]")
        config = self._config
        step = 1.0 / config.rate_hz
        times = np.arange(t_start, t_end, step)
        yaw = self._scene.driver_yaw(times) + self._rng.normal(
            0.0, config.noise_std_rad, len(times)
        )

        duration_min = (t_end - t_start) / 60.0
        expected_slips = config.slip_rate_per_min * duration_min
        num_slips = int(self._rng.poisson(expected_slips))
        for _ in range(num_slips):
            slip_start = float(self._rng.uniform(t_start, t_end))
            offset = float(self._rng.normal(0.0, config.slip_magnitude_rad))
            # Offset decays linearly back to zero as the strap settles.
            in_slip = (times >= slip_start) & (
                times < slip_start + config.slip_duration_s
            )
            decay = 1.0 - (times[in_slip] - slip_start) / config.slip_duration_s
            yaw[in_slip] += offset * decay
        return TimeSeries(times, yaw)
