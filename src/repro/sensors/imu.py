"""IMU models: the dashboard phone's gyroscope and accelerometer.

The phone is rigidly mounted, so its gyro z-axis reads the car body's yaw
rate (plus bias and noise) — the signal the steering identifier
(Sec. 3.6.2) thresholds to decide whether a CSI variation came from the
steering wheel or the head.  Readings are also jittered by engine/road
vibration, which the identifier must not mistake for a turn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.dsp.series import TimeSeries


class YawRateScene(Protocol):
    """What :class:`PhoneImu` needs from a cabin scene.

    Structural: :class:`repro.cabin.scene.CabinScene` satisfies it, and
    tests can substitute anything with a ``car_yaw_rate``.
    """

    def car_yaw_rate(self, times: np.ndarray) -> np.ndarray:
        """Car body yaw rate [rad/s] at ``times``.

        :domain return: rad_per_s
        """
        ...


@dataclass(frozen=True)
class GyroSample:
    """One gyroscope reading (z-axis yaw rate only, 2-D tracking)."""

    time: float
    yaw_rate: float


@dataclass(frozen=True)
class ImuConfig:
    """Noise model for a phone-grade MEMS IMU.

    Attributes:
        rate_hz: sampling rate of the IMU stream.
        gyro_noise_std: white noise std of the yaw-rate reading [rad/s].
        gyro_bias_std: std of the constant (per-power-cycle) bias [rad/s].
        vibration_std: extra jitter from engine/road vibration [rad/s].
    """

    rate_hz: float = 100.0
    gyro_noise_std: float = 0.004
    gyro_bias_std: float = 0.002
    vibration_std: float = 0.006

    def __post_init__(self) -> None:
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be positive, got {self.rate_hz}")
        for name in ("gyro_noise_std", "gyro_bias_std", "vibration_std"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


class PhoneImu:
    """Samples the car's yaw rate as the mounted phone would report it."""

    def __init__(
        self,
        scene: YawRateScene,
        config: ImuConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        config = config if config is not None else ImuConfig()
        self._scene = scene
        self._config = config
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._bias = float(self._rng.normal(0.0, config.gyro_bias_std))

    @property
    def config(self) -> ImuConfig:
        return self._config

    @property
    def bias(self) -> float:
        """This power-cycle's constant gyro bias [rad/s].

        :domain return: rad_per_s
        """
        return self._bias

    def yaw_rate_stream(self, t_start: float, t_end: float) -> TimeSeries:
        """Gyro z readings over ``[t_start, t_end]`` at the IMU rate."""
        if t_end <= t_start:
            raise ValueError(f"empty IMU span [{t_start}, {t_end}]")
        step = 1.0 / self._config.rate_hz
        times = np.arange(t_start, t_end, step)
        true_rate = self._scene.car_yaw_rate(times)
        noise_std = np.hypot(
            self._config.gyro_noise_std, self._config.vibration_std
        )
        readings = true_rate + self._bias + self._rng.normal(0.0, noise_std, len(times))
        return TimeSeries(times, readings)
