"""The multi-session tracking service layer.

Everything below :mod:`repro.core` tracks *one* driver; this package is
the layer a fleet backend (every vehicle its own WiFi cell) or a
multi-headset bridge actually deploys: a
:class:`~repro.serve.manager.SessionManager` multiplexing many
:class:`~repro.core.online.OnlineTracker` sessions behind one batched
ingestion queue, one budgeted round-robin estimate scheduler, and one
metrics registry.

    manager = SessionManager()
    manager.open_session("car-17", fingerprint=fp, build_profile=build)
    for packet in nic:
        manager.ingest("car-17", packet.time, packet.csi)
    manager.tick()                        # drain -> schedule -> evict
    print(manager.estimates()["car-17"])  # latest Estimate
    print(manager.render_metrics())       # one-line fleet health

The serving layer adds routing, scheduling and observability — never
tracking behaviour: a session's estimates are bit-identical to a
standalone ``OnlineTracker`` fed the same packets.
"""

from repro.serve.batch import BatchedScheduler, BatchGroup, BatchPlanner
from repro.serve.chaos import ChaosResult, run_chaos
from repro.serve.export import render_prometheus
from repro.serve.fabric import ServingFabric, merge_snapshots
from repro.serve.ingest import IngestBatch, IngestQueue, IngestRecord
from repro.serve.loadgen import (
    ALL_WORKLOAD_KINDS,
    WORKLOAD_KINDS,
    LoadResult,
    SyntheticCabin,
    SyntheticCamera,
    kind_uses_imu,
    kind_workload,
    run_load,
)
from repro.serve.manager import (
    ManagerTickReport,
    ProfileCache,
    SessionManager,
    scenario_fingerprint,
)
from repro.serve.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_snapshot,
)
from repro.serve.openloop import (
    OpenLoopResult,
    SloSpec,
    SloViolation,
    run_open_loop,
)
from repro.serve.scheduler import RoundRobinScheduler, ServedEstimate, TickReport
from repro.serve.shard import ShardRouter
from repro.serve.shm import SharedCsiRing
from repro.serve.session import (
    CREATED,
    DEGRADED,
    EVICTED,
    HEALTH_STATES,
    HEALTHY,
    IDLE,
    LIFECYCLE,
    LIVE,
    PROFILED,
    QUARANTINED,
    HealthPolicy,
    SessionHealth,
    SessionStateError,
    TrackedSession,
)

__all__ = [
    "SessionManager",
    "ManagerTickReport",
    "ProfileCache",
    "scenario_fingerprint",
    "TrackedSession",
    "SessionStateError",
    "LIFECYCLE",
    "CREATED",
    "PROFILED",
    "LIVE",
    "IDLE",
    "EVICTED",
    "IngestQueue",
    "IngestBatch",
    "IngestRecord",
    "RoundRobinScheduler",
    "BatchedScheduler",
    "BatchPlanner",
    "BatchGroup",
    "TickReport",
    "ServedEstimate",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "render_snapshot",
    "render_prometheus",
    "ServingFabric",
    "merge_snapshots",
    "ShardRouter",
    "SharedCsiRing",
    "SloSpec",
    "SloViolation",
    "OpenLoopResult",
    "run_open_loop",
    "run_load",
    "LoadResult",
    "SyntheticCabin",
    "SyntheticCamera",
    "WORKLOAD_KINDS",
    "ALL_WORKLOAD_KINDS",
    "kind_workload",
    "kind_uses_imu",
    "run_chaos",
    "ChaosResult",
    "HealthPolicy",
    "SessionHealth",
    "HEALTH_STATES",
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
]
