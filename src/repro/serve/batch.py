"""Fleet-batched estimate scheduling: plan groups, stack the kernel work.

The round-robin scheduler serves one session per poll, so a 50-session
fleet pays 50 Python dispatches and 50 separate numpy DP calls for
near-identical array shapes.  This module adds the batched alternative:

* :class:`BatchPlanner` partitions the due sessions into groups whose
  engines are interchangeable — same profile *object* (the manager's
  profile cache shares it fleet-wide), equal config up to the forecast
  horizon (every :class:`~repro.core.engine.BatchItem` carries its own
  engine, so per-context stages run with their session's horizon while
  the batch-aware match stacks across the group), the same stage chain
  and window shape, and no per-session camera.  Sessions that
  don't qualify (camera-backed steering fallback, degraded health) are
  planned as singleton fallback groups and served on the sequential
  path.  Quarantined sessions never reach the planner — ``pending()``
  already excludes them.
* :class:`BatchedScheduler` executes each group as one
  :meth:`~repro.core.engine.EstimationEngine.estimate_batch` call — the
  stage-wave execution that stacks the DTW match across the group —
  while preserving :class:`~repro.serve.scheduler.RoundRobinScheduler`'s
  contract: the same pending snapshot and cursor rotation, the same
  wall-time budget check (deferral, never silent skips; the cursor parks
  on the first deferred session), and the same per-session
  lateness/deadline accounting.  Per-session estimate values are
  bit-identical to the sequential scheduler's
  (``tests/serve/test_batching.py``).

Fallback rules, explicitly: a session is served sequentially whenever it
(a) carries a camera (the steering stage would need *its* camera, not
the group leader's), (b) is health-degraded (fault containment should
not let one flapping session poison a stacked call), or (c) ends up
alone in its group (no stacking win).  Errors from a stacked call are
contained per session exactly like sequential poll exceptions — same
``"Type: message"`` error strings, same unadvanced poll clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Sequence

from repro.core.engine import BatchItem, EstimationEngine
from repro.serve.scheduler import (
    RoundRobinScheduler,
    ServedEstimate,
    TickReport,
)
from repro.serve.session import HEALTHY, TrackedSession

#: The planner's grouping key: (profile identity, horizon-normalized
#: config, stage chain, window shape).  Engines agreeing on all four are
#: stackable for camera-less sessions: the horizon is the one config
#: field the batch-aware stages never read, so forecast sessions share
#: their plain siblings' candidate banks while per-context stages still
#: run through each item's own engine.
GroupKey = tuple[int, object, tuple[str, ...], int]


@dataclass(frozen=True)
class BatchGroup:
    """One planned execution unit: sessions served by a single call.

    Attributes:
        key: the grouping key, ``None`` for fallback groups.
        sessions: the member sessions, in scheduler rotation order.
        batched: whether the group runs as one stacked engine call
            (size >= 2 and a shared key) or on the sequential path.
    """

    key: GroupKey | None
    sessions: tuple[TrackedSession, ...]
    batched: bool


@dataclass
class BatchPlanner:
    """Partition due sessions into stackable groups.

    Grouping is purely a performance decision — never a behavioural
    one: any partition must serve every session the same values, which
    is why the key demands engine interchangeability rather than mere
    similarity.

    ``max_batch`` caps the stack width: the stacked DTW's cost tensor
    grows linearly with it, and past the CPU cache it turns the kernel
    memory-bound — ``bench_kernels.py`` measures ~2x for cache-resident
    stacks vs ~0.9x for spilled ones.  Oversized groups are split into
    consecutive chunks (rotation order preserved), so correctness never
    depends on the cap.

    In the shape vocabulary of ``repro.units.AXIS_SYMBOLS``: a batched
    group of ``S`` sessions feeds the match stage an ``(S, m)`` query
    block against the shared ``(B, L)`` candidate bank, so ``max_batch``
    bounds the ``S`` axis of every stacked kernel call.
    """

    max_batch: int = 8

    def __post_init__(self) -> None:
        if self.max_batch < 2:
            raise ValueError(f"max_batch must be >= 2, got {self.max_batch}")

    def group_key(self, session: TrackedSession) -> GroupKey | None:
        """The session's batch group key, or ``None`` for fallback.

        ``None`` when the session has no tracker, carries a camera, or
        is not currently healthy (degraded sessions are isolated on the
        sequential path until they recover).

        The config is normalized to a zero horizon before keying:
        sessions differing *only* in ``horizon_s`` (forecast vs plain)
        are stackable because the batch items carry their own engines —
        the forecast/jump-filter/emit stages read each session's real
        horizon, and the stacked match never reads it at all.
        """
        tracker = session.tracker
        if tracker is None:
            return None
        if session.health.state != HEALTHY:
            return None
        engine = tracker.engine
        if engine.camera is not None:
            return None
        config = engine.config
        return (
            id(engine.profile),
            replace(config, horizon_s=0.0),
            engine.stage_names,
            config.window_samples,
        )

    def plan(self, sessions: Sequence[TrackedSession]) -> list[BatchGroup]:
        """Group ``sessions`` (already in rotation order) into units.

        Groups are ordered by their first member's rotation position and
        keep rotation order within the group, so budget-driven deferral
        stays as close to round-robin fairness as stacking allows.
        """
        keyed: dict[GroupKey, list[TrackedSession]] = {}
        order: list[tuple[GroupKey | None, TrackedSession]] = []
        for session in sessions:
            key = self.group_key(session)
            order.append((key, session))
            if key is not None:
                keyed.setdefault(key, []).append(session)
        groups: list[BatchGroup] = []
        planned: set[str] = set()
        for key, session in order:
            if session.session_id in planned:
                continue
            if key is None:
                planned.add(session.session_id)
                groups.append(BatchGroup(None, (session,), batched=False))
                continue
            members = keyed[key]
            for member in members:
                planned.add(member.session_id)
            for lo in range(0, len(members), self.max_batch):
                chunk = tuple(members[lo:lo + self.max_batch])
                groups.append(BatchGroup(key, chunk, batched=len(chunk) >= 2))
        return groups


@dataclass
class BatchedScheduler(RoundRobinScheduler):
    """The round-robin scheduler with group-stacked execution.

    Same budget, rotation, deferral and deadline semantics as the base
    class; the only change is the execution unit — a planned group
    instead of a single session.  The budget check runs between groups
    (at least one group is always served), and everything unserved when
    the budget runs out is deferred with the cursor parked on the first
    deferred session, exactly as the sequential scheduler defers the
    rest of its rotation.
    """

    planner: BatchPlanner = field(default_factory=BatchPlanner)

    def tick(self, sessions: Sequence[TrackedSession]) -> TickReport:
        """Serve due sessions group-by-group within the budget."""
        pending = [s for s in sessions if s.pending()]
        if not pending:
            return TickReport(budget_s=self.budget_s)
        pending = self._rotate(pending)
        groups = self.planner.plan(pending)

        start = self.wall_clock()
        served: list[ServedEstimate] = []
        deferred: list[str] = []
        misses = 0
        batched_groups = 0
        batched_sessions = 0
        fallback_sessions = 0
        batch_sizes: list[int] = []
        visited: set[str] = set()
        for group in groups:
            spent = self.wall_clock() - start
            if spent >= self.budget_s and served:
                deferred = [
                    s.session_id
                    for s in pending
                    if s.session_id not in visited
                ]
                self._cursor = deferred[0]
                break
            records, group_misses = self._serve_group(group)
            served.extend(records)
            misses += group_misses
            for session in group.sessions:
                visited.add(session.session_id)
            if group.batched:
                batched_groups += 1
                batched_sessions += len(group.sessions)
                batch_sizes.append(len(group.sessions))
            else:
                fallback_sessions += len(group.sessions)
        else:
            self._cursor = None
        return TickReport(
            served=tuple(served),
            deferred=tuple(deferred),
            budget_s=self.budget_s,
            elapsed_s=self.wall_clock() - start,
            deadline_misses=misses,
            batched_groups=batched_groups,
            batched_sessions=batched_sessions,
            fallback_sessions=fallback_sessions,
            batch_sizes=tuple(batch_sizes),
        )

    # ------------------------------------------------------------------
    # Group execution
    # ------------------------------------------------------------------
    def _serve_group(
        self, group: BatchGroup
    ) -> tuple[list[ServedEstimate], int]:
        """Serve one group; returns its serving records and miss count."""
        records: list[ServedEstimate] = []
        misses = 0
        # Pre-poll accounting per member — identical to the sequential
        # scheduler's: a session whose buffer emptied since the pending
        # snapshot is skipped, lateness is measured against the due
        # time, and lateness beyond one stride is a deadline miss.
        polls: list[tuple[TrackedSession, float, float, BatchItem | None]] = []
        for session in group.sessions:
            inputs = session.poll_inputs()
            if inputs is None:
                continue
            newest, item = inputs
            due = session.due_time
            lateness = 0.0
            if due is not None and newest > due:
                lateness = newest - due
            if lateness > session.stride_s:
                misses += 1
            polls.append((session, newest, lateness, item))
        if not polls:
            return records, misses
        if not group.batched:
            for session, newest, lateness, _item in polls:
                poll_start = self.wall_clock()
                error: str | None = None
                estimate = None
                try:
                    estimate = session.poll_estimate()
                except Exception as exc:  # contained, as in the base class
                    error = f"{type(exc).__name__}: {exc}"
                records.append(
                    ServedEstimate(
                        session_id=session.session_id,
                        estimate=estimate,
                        polled_t=float(newest),
                        elapsed_s=self.wall_clock() - poll_start,
                        lateness_s=lateness,
                        error=error,
                    )
                )
            return records, misses

        engine = self._leader_engine(polls[0][0])
        items = [item for _, _, _, item in polls if item is not None]
        poll_start = self.wall_clock()
        try:
            results = engine.estimate_batch(items) if items else []
        except Exception as exc:
            # estimate_batch contains per-item errors itself; a raise
            # here is a systemic failure of the stacked call, attributed
            # to every polled member (their poll clocks stay unadvanced,
            # like any failed sequential poll).
            error = f"{type(exc).__name__}: {exc}"
            elapsed_s = (self.wall_clock() - poll_start) / len(polls)
            for session, newest, lateness, _item in polls:
                records.append(
                    ServedEstimate(
                        session_id=session.session_id,
                        estimate=None,
                        polled_t=float(newest),
                        elapsed_s=elapsed_s,
                        lateness_s=lateness,
                        error=error,
                    )
                )
            return records, misses
        elapsed_s = (self.wall_clock() - poll_start) / len(polls)
        result_iter = iter(results)
        for session, newest, lateness, item in polls:
            if item is None:
                # The tracker declined (not warmed up): the poll clock
                # still advances, exactly like a sequential poll that
                # returned None.
                session.finish_poll(newest, None)
                records.append(
                    ServedEstimate(
                        session_id=session.session_id,
                        estimate=None,
                        polled_t=float(newest),
                        elapsed_s=elapsed_s,
                        lateness_s=lateness,
                        error=None,
                    )
                )
                continue
            result = next(result_iter)
            if result.error is not None:
                records.append(
                    ServedEstimate(
                        session_id=session.session_id,
                        estimate=None,
                        polled_t=float(newest),
                        elapsed_s=elapsed_s,
                        lateness_s=lateness,
                        error=f"{type(result.error).__name__}: {result.error}",
                    )
                )
                continue
            session.finish_poll(newest, result.estimate)
            records.append(
                ServedEstimate(
                    session_id=session.session_id,
                    estimate=result.estimate,
                    polled_t=float(newest),
                    elapsed_s=elapsed_s,
                    lateness_s=lateness,
                    error=None,
                )
            )
        return records, misses

    @staticmethod
    def _leader_engine(session: TrackedSession) -> EstimationEngine:
        tracker = session.tracker
        assert tracker is not None  # guaranteed by poll_inputs
        return tracker.engine
