"""The chaos scenario: a fleet under every injector at once.

This is the serving layer's graceful-degradation acceptance test as a
runnable artefact: drive a 50-session synthetic fleet through a
:func:`~repro.faults.chaos_plan` (bursty loss, NaN storms, corrupted
subcarriers, clock faults, deep fades and duplicate surges, all inside
one stream-time window), and measure three things:

1. **Containment** — zero unhandled exceptions reach the driver loop;
   every fault is absorbed by ingest rejection, scheduler containment
   or the health machine.
2. **Degradation** — the faults actually bite: packets are rejected,
   sessions degrade and quarantine, and the metrics registry reports
   all of it.
3. **Recovery** — once the fault window closes, every session returns
   to ``healthy`` with no operator intervention.

Wired into CI as ``benchmarks/bench_serve.py --chaos`` (fixed seed) and
asserted at the same scale by ``tests/serve/test_chaos.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro.core.config import ViHOTConfig
from repro.faults import FaultPlan, StreamFaults, chaos_plan
from repro.serve.loadgen import (
    ALL_WORKLOAD_KINDS,
    SYNTHETIC_FINGERPRINT,
    SyntheticCabin,
    SyntheticCamera,
    _cabin_kind,
    kind_uses_imu,
    kind_workload,
    synthetic_profile,
)
from repro.serve.manager import SessionManager
from repro.serve.session import HEALTH_STATES, HEALTHY


@dataclass(frozen=True)
class ChaosResult:
    """What one :func:`run_chaos` run observed."""

    sessions: int
    packets_offered: int  # packets emitted by the fault chains
    ingested: int  # packets accepted into trackers
    rejected: int  # non-finite packets refused at ingest
    drops: int  # packets shed by queue backpressure
    estimates: int
    poll_failures: int  # tracker exceptions contained by the scheduler
    quarantines: int
    releases: int
    recoveries: int
    unhandled: int  # exceptions that escaped to the driver loop
    injector_touches: dict[str, int]  # per-injector packets affected
    final_health: dict[str, int]  # health-state occupancy at the end
    all_healthy: bool
    wall_s: float
    metrics_line: str

    def as_dict(self) -> dict[str, object]:
        return {
            "sessions": self.sessions,
            "packets_offered": self.packets_offered,
            "ingested": self.ingested,
            "rejected": self.rejected,
            "drops": self.drops,
            "estimates": self.estimates,
            "poll_failures": self.poll_failures,
            "quarantines": self.quarantines,
            "releases": self.releases,
            "recoveries": self.recoveries,
            "unhandled": self.unhandled,
            "injector_touches": dict(self.injector_touches),
            "final_health": dict(self.final_health),
            "all_healthy": self.all_healthy,
            "wall_s": self.wall_s,
            "metrics": self.metrics_line,
        }

    def summary(self) -> str:
        touches = ",".join(
            f"{name}={count}" for name, count in sorted(self.injector_touches.items())
        )
        return (
            f"{self.sessions} sessions under chaos: "
            f"{self.packets_offered} packets offered, {self.ingested} ingested, "
            f"{self.rejected} rejected, {self.drops} shed, "
            f"{self.estimates} estimates, "
            f"{self.quarantines} quarantines / {self.releases} releases / "
            f"{self.recoveries} recoveries, "
            f"{self.unhandled} unhandled, "
            f"final={'all-healthy' if self.all_healthy else self.final_health}, "
            f"touches[{touches}] in {self.wall_s:.2f}s wall"
        )


def run_chaos(
    num_sessions: int = 50,
    duration_s: float = 3.0,
    rate_hz: float = 100.0,
    tick_interval_s: float = 0.05,
    stride_s: float = 0.25,
    budget_s: float = 1.0,
    queue_depth: int = 4096,
    config: ViHOTConfig | None = None,
    buffer_s: float = 6.0,
    seed: int = 0,
    plan: FaultPlan | None = None,
    batching: bool = False,
    workloads: Sequence[str] | None = None,
) -> ChaosResult:
    """Drive a synthetic fleet through a fault storm, then let it heal.

    The default ``plan`` opens every injector class over the middle
    third of the run (``[duration_s/3, 0.6 * duration_s)``), leaving the
    final stretch fault-free — long enough for every quarantine backoff
    (capped at ``HealthPolicy.backoff_max_ticks``) to expire and every
    session to produce the clean poll that declares it recovered.

    Every ``ingest`` and ``tick`` call is wrapped: anything that escapes
    the serving layer's own containment is counted in ``unhandled``
    (the chaos assertion is that the count stays zero).

    ``batching`` runs the storm under the fleet-batched scheduler:
    degraded sessions must drop to the sequential fallback path and the
    containment guarantees must hold unchanged.

    ``workloads`` cycles cabins through an explicit kind list (from
    :data:`~repro.serve.loadgen.ALL_WORKLOAD_KINDS`) so the storm can
    hit a mixed fleet — head tracking, occupant localization and
    breathing sensing in the same tick loop, the scenario registry's
    T2/T3 containment check.  ``None`` keeps the all-plain fleet.
    """
    if num_sessions < 1:
        raise ValueError("num_sessions must be >= 1")
    if workloads is not None:
        unknown = sorted(set(workloads) - set(ALL_WORKLOAD_KINDS))
        if unknown:
            raise ValueError(
                f"unknown workload kinds {unknown}; known: "
                f"{list(ALL_WORKLOAD_KINDS)}"
            )
    if config is None:
        config = ViHOTConfig(profile_stride=8, num_length_candidates=3)
    if plan is None:
        plan = chaos_plan(
            seed=seed, start_s=duration_s / 3.0, stop_s=0.6 * duration_s
        )

    profile = synthetic_profile()
    manager = SessionManager(
        config,
        queue_depth=queue_depth,
        budget_s=budget_s,
        stride_s=stride_s,
        idle_timeout_s=10 * duration_s + 60.0,  # no idling mid-run
        buffer_s=buffer_s,
        batching=batching,
    )
    kinds = [
        _cabin_kind(k, False, workloads) for k in range(num_sessions)
    ]
    cabins = [
        SyntheticCabin(f"cabin-{k:04d}", seed=seed * 10_000 + k, duration_s=duration_s,
                       rate_hz=rate_hz, workload=kind_workload(kinds[k]))
        for k in range(num_sessions)
    ]
    for k, cabin in enumerate(cabins):
        kind = kinds[k]
        manager.open_session(
            cabin.cabin_id,
            fingerprint=SYNTHETIC_FINGERPRINT,
            build_profile=lambda: profile,
            camera=SyntheticCamera(seed=seed * 10_000 + k)
            if kind == "camera"
            else None,
            config=replace(config, horizon_s=0.1) if kind == "forecast" else None,
            workload=kind_workload(kind),
        )
    faults: dict[str, StreamFaults] = {
        cabin.cabin_id: plan.bind(cabin.cabin_id) for cabin in cabins
    }

    offered = 0
    unhandled = 0
    start = time.perf_counter()
    next_tick = tick_interval_s
    imu_cursors = [0] * num_sessions
    for k in range(len(cabins[0])):
        t = float(cabins[0].times[k])
        for c, cabin in enumerate(cabins):
            if kind_uses_imu(kinds[c]):
                cursor = imu_cursors[c]
                while cursor < len(cabin.imu_times) and cabin.imu_times[cursor] <= t:
                    try:
                        manager.ingest_imu(
                            cabin.cabin_id,
                            float(cabin.imu_times[cursor]),
                            float(cabin.imu_rates[cursor]),
                        )
                    except Exception:
                        unhandled += 1
                    cursor += 1
                imu_cursors[c] = cursor
            for ft, fcsi in faults[cabin.cabin_id].process(t, cabin.csi_at(k)):
                offered += 1
                try:
                    manager.ingest(cabin.cabin_id, ft, fcsi)
                except Exception:
                    unhandled += 1
        if t >= next_tick:
            try:
                manager.tick()
            except Exception:
                unhandled += 1
            next_tick += tick_interval_s
    # Drain ticks: the stream is over but quarantine cooldowns may still
    # be counting down; keep ticking until they expire and the released
    # sessions get their recovery poll.
    for _ in range(64):
        try:
            report = manager.tick()
        except Exception:
            unhandled += 1
            continue
        states = manager.health_states()
        if all(state == HEALTHY for state in states.values()) and not report.released:
            break
    wall_s = time.perf_counter() - start

    touches: dict[str, int] = {}
    for chain in faults.values():
        for name, count in chain.touched_counts().items():
            touches[name] = touches.get(name, 0) + count
    states = manager.health_states()
    final_health = {
        state: sum(1 for s in states.values() if s == state)
        for state in HEALTH_STATES
    }
    counters = manager.metrics_snapshot()["counters"]
    assert isinstance(counters, dict)
    return ChaosResult(
        sessions=num_sessions,
        packets_offered=offered,
        ingested=int(counters["packets_ingested"]),
        rejected=int(counters["packets_rejected"]),
        drops=int(counters["packets_dropped"]),
        estimates=int(counters["estimates_served"]),
        poll_failures=int(counters["poll_failures"]),
        quarantines=int(counters["quarantines_total"]),
        releases=int(counters["quarantine_releases"]),
        recoveries=int(counters["recoveries_total"]),
        unhandled=unhandled,
        injector_touches=touches,
        final_health=final_health,
        all_healthy=all(state == HEALTHY for state in states.values()),
        wall_s=wall_s,
        metrics_line=manager.render_metrics(),
    )
