"""Prometheus text exposition over :class:`MetricsRegistry` snapshots.

The one-line ``render()`` report is for log grepping; a scrape target
wants the `Prometheus text format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_:
``# HELP`` / ``# TYPE`` headers, one sample per line, labels in braces.
:func:`render_prometheus` produces it from the same ``as_dict``
snapshots everything else consumes — for a single manager (one
unlabelled fleet) or for the sharded fabric, where every sample carries
a ``shard`` label: ``shard="fleet"`` for the merged aggregate and
``shard="0"``... for the per-worker views, so a dashboard can plot both
the fleet SLO and the balance across workers from one scrape.

Conventions applied:

* every metric is prefixed ``vihot_`` (unless the registry name
  already carries it — the per-workload open counters do);
* counters get the ``_total`` suffix when missing;
* histograms export quantile series (0.5 / 0.9 / 0.99 / 0.999) plus
  ``_max`` and ``_count`` — exactly the digest
  :meth:`Histogram.summary` retains, which is also exactly what the
  serve-bench SLO gate alerts on;
* per-stage tracking stats export as ``vihot_stage_*`` families with a
  ``stage`` label.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from typing import Any

#: ``Histogram.summary`` key -> Prometheus quantile label.
_QUANTILES = (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99"), ("p99_9", "0.999"))

_PREFIX = "vihot_"


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _metric_name(name: str) -> str:
    return name if name.startswith(_PREFIX) else _PREFIX + name


def _counter_name(name: str) -> str:
    name = _metric_name(name)
    return name if name.endswith("_total") else name + "_total"


def _labels(pairs: Mapping[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs.items())
    return "{" + inner + "}"


class _Family:
    """One metric family: header emitted once, samples accumulated."""

    def __init__(self, name: str, kind: str, help: str = "") -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.samples: list[str] = []

    def add(
        self,
        value: float,
        labels: Mapping[str, str],
        suffix: str = "",
    ) -> None:
        self.samples.append(
            f"{self.name}{suffix}{_labels(labels)} {_format_value(value)}"
        )

    def render(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        lines.extend(self.samples)
        return lines


def render_prometheus(
    fleet: Mapping[str, Any],
    shards: Mapping[int, Mapping[str, Any]] | None = None,
) -> str:
    """The text exposition of one fleet snapshot.

    Args:
        fleet: a :meth:`MetricsRegistry.as_dict` /
            :meth:`ServingFabric.metrics_snapshot` snapshot — exported
            with ``shard="fleet"`` when per-shard views accompany it,
            unlabelled otherwise (a single-process manager).
        shards: optional per-shard snapshots
            (:meth:`ServingFabric.shard_snapshots`), each exported with
            its ``shard="<index>"`` label.
    """
    families: dict[str, _Family] = {}

    def family(name: str, kind: str) -> _Family:
        if name not in families:
            families[name] = _Family(name, kind)
        return families[name]

    def emit(snapshot: Mapping[str, Any], labels: Mapping[str, str]) -> None:
        for name, value in snapshot.get("counters", {}).items():
            family(_counter_name(name), "counter").add(float(value), labels)
        for name, value in snapshot.get("gauges", {}).items():
            family(_metric_name(name), "gauge").add(float(value), labels)
        for name, summary in snapshot.get("histograms", {}).items():
            base = family(_metric_name(name), "summary")
            for key, quantile in _QUANTILES:
                if key in summary:
                    base.add(
                        float(summary[key]),
                        {**labels, "quantile": quantile},
                    )
            if "max" in summary:
                base.add(float(summary["max"]), labels, suffix="_max")
            base.add(float(summary["count"]), labels, suffix="_count")
        for stage in snapshot.get("stages", ()):
            stage_labels = {**labels, "stage": str(stage["stage"])}
            for column, kind in (
                ("evaluated", "counter"),
                ("fired", "counter"),
                ("terminal", "counter"),
            ):
                family(
                    _counter_name(f"stage_{column}"), kind
                ).add(float(stage[column]), stage_labels)
            for column in ("p50_ms", "p90_ms"):
                family(_metric_name(f"stage_{column}"), "gauge").add(
                    float(stage[column]), stage_labels
                )

    if shards:
        emit(fleet, {"shard": "fleet"})
        for index in sorted(shards):
            emit(shards[index], {"shard": str(index)})
    else:
        emit(fleet, {})

    lines: list[str] = []
    for name in sorted(families):
        lines.extend(families[name].render())
    return "\n".join(lines) + "\n"
