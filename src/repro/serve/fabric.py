"""The sharded multi-worker serving fabric.

One :class:`ServingFabric` scales the single-process
:class:`~repro.serve.manager.SessionManager` out to N worker processes
without changing what any tracker computes:

* **Routing.**  A :class:`~repro.serve.shard.ShardRouter` consistent-
  hashes every session id onto one shard; the session's whole life
  (open, packets, IMU, estimates, close) happens on that worker, so
  its tracker state never crosses a process boundary.
* **Ingest.**  Each shard owns a :class:`~repro.serve.shm.SharedCsiRing`
  — packets go parent -> worker through shared memory as plain numpy
  stores, never pickled.  Control traffic (open/close/IMU/tick) rides a
  duplex pipe per worker in strict request-reply order.
* **Ticks.**  ``tick()`` broadcasts to every worker (send to all, then
  collect, so workers tick concurrently) and merges the per-shard
  :class:`~repro.serve.manager.ManagerTickReport` into one fleet
  report in shard order — deterministic, which is what lets the
  bit-identity suite pin a 4-worker fleet against single-process
  serving packet for packet.
* **Backpressure & work stealing.**  With a per-tick drain quota set,
  shards whose ring crosses the high-water mark are granted the quota
  their under-loaded peers are not using this tick — a deterministic
  reallocation computed from ring occupancy alone (no wall clock, no
  racing threads), so hot shards drain faster while the bit-identity
  contract (quota unset) is untouched.
* **Observability.**  The fleet snapshot sums every worker's counters
  and gauges, keeps fleet-level latency histograms observed parent-side
  from the merged tick reports, and merges per-stage stats by name;
  :meth:`render_metrics` emits the same one-line format as a single
  manager, and :func:`repro.serve.export.render_prometheus` turns the
  same snapshots into a Prometheus text exposition.

The fabric deliberately implements the manager's serving surface
(``open_session`` / ``ingest`` / ``ingest_imu`` / ``tick`` /
``estimates`` / ``health_states`` / ``close_session`` / metrics), so
:func:`repro.serve.loadgen.run_load` swaps one in with ``workers=N``
and every downstream consumer — chaos runs, scenarios, benches — works
unchanged.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import Connection
from typing import Any

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.profile import CsiProfile
from repro.core.stages import CameraLike, Estimate
from repro.core.workloads import HEAD_WORKLOAD
from repro.serve.manager import ManagerTickReport, ProfileCache, SessionManager
from repro.serve.metrics import MetricsRegistry, render_snapshot
from repro.serve.scheduler import TickReport
from repro.serve.session import HealthPolicy, SessionStateError
from repro.serve.shard import ShardRouter
from repro.serve.shm import SharedCsiRing


@dataclass(frozen=True)
class SessionCard:
    """What the parent must remember to re-home a session after a
    worker death: everything ``open_session`` needs, minus the tracker
    state (which died with the worker — the documented drop window)."""

    profile: CsiProfile | None
    fingerprint: str | None
    camera: CameraLike | None
    config: ViHOTConfig | None
    workload: str


class ShardWorker:
    """One shard's brain: a private :class:`SessionManager` fed from a
    shared-memory ring.  Runs identically inline (tests, ``processes=
    False``) and inside a worker process — the process boundary adds
    transport, never behaviour."""

    def __init__(
        self,
        ring: SharedCsiRing,
        manager_kwargs: dict[str, Any],
    ) -> None:
        config = manager_kwargs.pop("config")
        self._ring = ring
        self._manager = SessionManager(config, **manager_kwargs)

    @property
    def manager(self) -> SessionManager:
        return self._manager

    def _drain_ring(self, max_records: int | None) -> int:
        """Move up to ``max_records`` packets ring -> local ingest queue."""
        records = self._ring.drain(max_records)
        for record in records:
            self._manager.ingest(record.session_id, record.time, record.csi)
        return len(records)

    def handle(self, cmd: tuple[Any, ...]) -> Any:
        op = cmd[0]
        if op == "tick":
            self._drain_ring(cmd[1])
            return self._manager.tick()
        if op == "drain":
            return self._drain_ring(cmd[1])
        if op == "open":
            _, sid, profile, fingerprint, camera, config, workload = cmd
            self._manager.open_session(
                sid,
                profile,
                fingerprint=fingerprint,
                camera=camera,
                config=config,
                workload=workload,
            )
            return sid
        if op == "imu":
            self._manager.ingest_imu(cmd[1], cmd[2], cmd[3])
            return None
        if op == "close":
            return self._manager.close_session(cmd[1])
        if op == "estimates":
            return self._manager.estimates(cmd[1])
        if op == "health":
            return self._manager.health_states()
        if op == "snapshot":
            return self._manager.metrics_snapshot()
        raise ValueError(f"unknown shard command {op!r}")


def _worker_main(
    conn: Connection,
    ring: SharedCsiRing,
    manager_kwargs: dict[str, Any],
) -> None:
    """A worker process's whole life: build the manager, answer commands.

    Strict request-reply: every received command gets exactly one
    ``("ok", payload)`` or ``("err", message)``, so the parent can
    pipeline sends across workers and collect in order.
    """
    worker = ShardWorker(ring, manager_kwargs)
    while True:
        try:
            cmd = conn.recv()
        except EOFError:
            break
        if cmd[0] == "stop":
            conn.send(("ok", None))
            break
        try:
            result = worker.handle(cmd)
        except Exception as exc:  # contained: the parent decides
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        else:
            conn.send(("ok", result))
    # Drop this process's mapping (never the segment itself: the parent
    # owns the name and unlinks it on shutdown/failover).
    ring.close(unlink=False)
    conn.close()


class _InlineShard:
    """A shard without the process: commands execute synchronously at
    ``send`` time.  Same transport contract as :class:`_ProcessShard`,
    so the fabric's logic has exactly one code path."""

    def __init__(self, index: int, ring: SharedCsiRing, worker: ShardWorker) -> None:
        self.index = index
        self.ring = ring
        self.alive = True
        self._worker = worker
        self._pending: list[tuple[str, Any]] = []

    def send(self, cmd: tuple[Any, ...]) -> None:
        if cmd[0] == "stop":
            self._pending.append(("ok", None))
            self.alive = False
            return
        try:
            self._pending.append(("ok", self._worker.handle(cmd)))
        except Exception as exc:
            self._pending.append(("err", f"{type(exc).__name__}: {exc}"))

    def recv(self) -> Any:
        status, payload = self._pending.pop(0)
        if status == "err":
            raise RuntimeError(f"shard {self.index}: {payload}")
        return payload

    def request(self, cmd: tuple[Any, ...]) -> Any:
        self.send(cmd)
        return self.recv()

    def kill(self) -> None:
        self.alive = False

    def join(self) -> None:
        return None


class _ProcessShard:
    """A shard in its own worker process (fork start method: rings,
    locks and manager kwargs are inherited, nothing is pickled at
    spawn)."""

    def __init__(
        self,
        index: int,
        ring: SharedCsiRing,
        manager_kwargs: dict[str, Any],
    ) -> None:
        self.index = index
        self.ring = ring
        self.alive = True
        ctx = get_context("fork")
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_worker_main,
            args=(child_conn, ring, manager_kwargs),
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def send(self, cmd: tuple[Any, ...]) -> None:
        self._conn.send(cmd)

    def recv(self) -> Any:
        try:
            status, payload = self._conn.recv()
        except EOFError as exc:
            self.alive = False
            raise RuntimeError(
                f"shard {self.index} worker died mid-request"
            ) from exc
        if status == "err":
            raise RuntimeError(f"shard {self.index}: {payload}")
        return payload

    def request(self, cmd: tuple[Any, ...]) -> Any:
        self.send(cmd)
        return self.recv()

    def kill(self) -> None:
        """Hard-stop the worker (the failover test's fault injector)."""
        self.alive = False
        self._process.terminate()
        self._process.join(timeout=5.0)
        self._conn.close()

    def join(self) -> None:
        self._process.join(timeout=5.0)
        self._conn.close()


class ServingFabric:
    """N sharded :class:`SessionManager` workers behind one manager-
    shaped facade.

    Args:
        config: tracker parameters shared by every session (same
            default as the manager).
        workers: shard count.
        processes: run each shard in a forked worker process; ``False``
            keeps every shard inline in this process — identical code
            path minus the transport, which is what the 50-session
            bit-identity suite uses (and what a debugger wants).
        ring_slots: per-shard shared-memory ring capacity (defaults to
            ``queue_depth``, matching the single-process backpressure
            envelope).
        csi_shape: fixed per-packet CSI shape for the rings.
        drain_records_per_tick: per-shard ring-drain quota per tick
            (``None`` = drain everything; quota enables work stealing).
        steal_high_water: ring occupancy at which a shard becomes a
            quota thief.
        steal_low_water: ring occupancy at or below which a shard
            donates its unused quota.
        Remaining arguments mirror :class:`SessionManager` and are
        forwarded to every worker verbatim.
    """

    def __init__(
        self,
        config: ViHOTConfig = ViHOTConfig(),
        *,
        workers: int = 4,
        processes: bool = True,
        queue_depth: int = 4096,
        budget_s: float = 0.050,
        stride_s: float = 0.05,
        idle_timeout_s: float = 30.0,
        evict_after_s: float | None = 60.0,
        buffer_s: float = 10.0,
        max_history: int = 256,
        health_policy: HealthPolicy | None = None,
        batching: bool = False,
        ring_slots: int | None = None,
        csi_shape: tuple[int, ...] = (2, 30),
        drain_records_per_tick: int | None = None,
        steal_high_water: float = 0.75,
        steal_low_water: float = 0.25,
        replicas: int = 64,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not 0.0 <= steal_low_water < steal_high_water <= 1.0:
            raise ValueError(
                "need 0 <= steal_low_water < steal_high_water <= 1, got "
                f"{steal_low_water} / {steal_high_water}"
            )
        self._router = ShardRouter(workers, replicas=replicas)
        self._processes = processes
        self._drain_quota = drain_records_per_tick
        self._high_water = steal_high_water
        self._low_water = steal_low_water
        self._closed = False
        self._placement: dict[str, int] = {}
        self._cards: dict[str, SessionCard] = {}
        self._profiles = ProfileCache()

        manager_kwargs: dict[str, Any] = dict(
            config=config,
            queue_depth=queue_depth,
            budget_s=budget_s,
            stride_s=stride_s,
            idle_timeout_s=idle_timeout_s,
            evict_after_s=evict_after_s,
            buffer_s=buffer_s,
            max_history=max_history,
            health_policy=health_policy,
            batching=batching,
        )
        slots = ring_slots if ring_slots is not None else queue_depth
        self._shards: dict[int, _InlineShard | _ProcessShard] = {}
        try:
            for index in range(workers):
                ring = SharedCsiRing(slots, csi_shape)
                try:
                    if processes:
                        self._shards[index] = _ProcessShard(
                            index, ring, dict(manager_kwargs)
                        )
                    else:
                        self._shards[index] = _InlineShard(
                            index, ring, ShardWorker(ring, dict(manager_kwargs))
                        )
                except BaseException:
                    # The ring has no owning shard yet: release it here
                    # or the segment outlives the failed constructor.
                    ring.close(unlink=True)
                    raise
        except BaseException:
            for shard in self._shards.values():
                shard.kill()
                shard.ring.close(unlink=True)
            raise

        m = MetricsRegistry()
        self._metrics = m
        self._g_shards = m.gauge("fabric_shards", "live serving shards")
        self._g_shards.set(workers)
        self._c_dropped = m.counter(
            "packets_dropped", "packets shed by ring backpressure"
        )
        self._c_cache_hits = m.counter("profile_cache_hits")
        self._c_cache_misses = m.counter("profile_cache_misses")
        self._c_steals = m.counter(
            "work_steals_total", "ticks on which a hot shard was granted quota"
        )
        self._c_stolen = m.counter(
            "records_stolen_total", "ring records drained on donated quota"
        )
        self._c_failovers = m.counter(
            "shard_failovers_total", "worker deaths absorbed by re-hashing"
        )
        self._c_rehashed = m.counter(
            "sessions_rehashed_total", "sessions re-homed after a shard death"
        )
        self._h_latency = m.histogram(
            "estimate_latency_ms", "per-estimate wall time (fleet)"
        )
        self._h_lateness = m.histogram(
            "estimate_lateness_ms", "stream-time distance past the due time"
        )
        self._h_batch = m.histogram(
            "batch_size", "sessions per stacked engine call (fleet)"
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        """The parent-side registry (fleet histograms + fabric counters)."""
        return self._metrics

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def workers(self) -> tuple[int, ...]:
        """Live shard indices."""
        return self._router.shards

    def __len__(self) -> int:
        return len(self._placement)

    def shard_of(self, session_id: str) -> int:
        return self._router.route(session_id)

    def _live_shards(self) -> list[_InlineShard | _ProcessShard]:
        return [self._shards[i] for i in self._router.shards]

    def _broadcast(self, cmd: tuple[Any, ...]) -> list[Any]:
        """Send to every live shard, then collect — workers overlap."""
        shards = self._live_shards()
        for shard in shards:
            shard.send(cmd)
        return [shard.recv() for shard in shards]

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------
    def open_session(
        self,
        session_id: str,
        profile: CsiProfile | None = None,
        *,
        fingerprint: str | None = None,
        build_profile: Callable[[], CsiProfile] | None = None,
        camera: CameraLike | None = None,
        config: ViHOTConfig | None = None,
        workload: str = HEAD_WORKLOAD,
    ) -> int:
        """Admit one session on its hash-routed shard; returns the shard.

        Profile resolution happens parent-side (one
        :class:`ProfileCache` for the whole fleet — a fingerprint is
        built at most once no matter how many shards need it) and the
        resolved profile object ships to the worker, whose own cache
        then holds it for any same-fingerprint sibling on that shard.
        """
        if session_id in self._placement:
            raise ValueError(f"session {session_id!r} already open")
        if profile is None and fingerprint is not None:
            if fingerprint in self._profiles or build_profile is not None:
                before = self._profiles.hits
                profile = self._profiles.get_or_build(
                    fingerprint,
                    build_profile if build_profile is not None else _no_builder,
                )
                if self._profiles.hits > before:
                    self._c_cache_hits.inc()
                else:
                    self._c_cache_misses.inc()
        elif profile is not None and fingerprint is not None:
            self._profiles.put(fingerprint, profile)
        shard_index = self._router.route(session_id)
        self._shards[shard_index].request(
            ("open", session_id, profile, fingerprint, camera, config, workload)
        )
        self._placement[session_id] = shard_index
        self._cards[session_id] = SessionCard(
            profile=profile,
            fingerprint=fingerprint,
            camera=camera,
            config=config,
            workload=workload,
        )
        return shard_index

    def close_session(self, session_id: str) -> Estimate | None:
        shard_index = self._placement.pop(session_id, None)
        if shard_index is None:
            raise KeyError(f"unknown session {session_id!r}")
        self._cards.pop(session_id, None)
        self._shards[shard_index].ring.forget_session(session_id)
        latest = self._shards[shard_index].request(("close", session_id))
        return latest  # type: ignore[no-any-return]

    # ------------------------------------------------------------------
    # Ingest (hot path: one shared-memory store, no pickling)
    # ------------------------------------------------------------------
    def ingest(self, session_id: str, time: float, csi: np.ndarray) -> bool:
        """Write one packet into the owning shard's ring; ``False`` iff
        ring backpressure shed an old packet."""
        accepted = self._shards[self._router.route(session_id)].ring.push(
            session_id, time, csi
        )
        if not accepted:
            self._c_dropped.inc()
        return accepted

    def ingest_imu(self, session_id: str, time: float, yaw_rate: float) -> None:
        shard_index = self._placement.get(session_id)
        if shard_index is None:
            raise KeyError(f"unknown session {session_id!r}")
        self._shards[shard_index].request(("imu", session_id, time, yaw_rate))

    # ------------------------------------------------------------------
    # The tick: steal -> broadcast -> merge
    # ------------------------------------------------------------------
    def _steal_quotas(self) -> Mapping[int, int | None]:
        """Per-shard ring-drain quota for this tick.

        With no quota configured every shard drains everything (and
        stealing is moot).  With a quota, under-loaded shards (at or
        below the low-water mark) donate the part of their quota their
        backlog cannot use, and shards over the high-water mark split
        the donated pool in shard order — all computed from ring
        occupancy, so the schedule is a pure function of queue state.
        """
        base = self._drain_quota
        assert base is not None
        backlogs = {i: len(self._shards[i].ring) for i in self._router.shards}
        fills = {
            i: self._shards[i].ring.fill_fraction for i in self._router.shards
        }
        pool = sum(
            base - backlogs[i]
            for i in self._router.shards
            if fills[i] <= self._low_water and backlogs[i] < base
        )
        quotas = {i: base for i in self._router.shards}
        hot = [
            i
            for i in self._router.shards
            if fills[i] >= self._high_water and backlogs[i] > base
        ]
        stolen_this_tick = 0
        for i in hot:
            if pool <= 0:
                break
            grant = min(pool, backlogs[i] - base)
            quotas[i] += grant
            pool -= grant
            stolen_this_tick += grant
        if stolen_this_tick:
            self._c_steals.inc()
            self._c_stolen.inc(stolen_this_tick)
        return quotas

    def tick(self, max_records: int | None = None) -> ManagerTickReport:
        """One fleet tick: every worker drains its ring and ticks its
        manager concurrently; reports merge in shard order.

        ``max_records`` overrides the configured per-tick drain quota
        for this call (the manager-facade contract)."""
        quota = max_records if max_records is not None else self._drain_quota
        quotas: dict[int, int | None]
        if quota is None:
            quotas = {i: None for i in self._router.shards}
        else:
            saved, self._drain_quota = self._drain_quota, quota
            try:
                quotas = dict(self._steal_quotas())
            finally:
                self._drain_quota = saved
        shards = self._live_shards()
        for shard in shards:
            shard.send(("tick", quotas[shard.index]))
        reports: list[ManagerTickReport] = [s.recv() for s in shards]
        merged = _merge_tick_reports(reports)
        for served in merged.scheduler.served:
            if served.error is not None or served.estimate is None:
                continue
            self._h_latency.observe(served.elapsed_s * 1e3)
            self._h_lateness.observe(served.lateness_s * 1e3)
        for size in merged.scheduler.batch_sizes:
            self._h_batch.observe(float(size))
        for sid in merged.evicted:
            self._placement.pop(sid, None)
            self._cards.pop(sid, None)
        return merged

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def kill_worker(self, shard_index: int) -> tuple[str, ...]:
        """Kill one worker and re-home its sessions onto the survivors.

        The dead shard's sessions re-hash deterministically (consistent
        hashing moves only them) and reopen with their remembered
        profile/config/camera — fresh trackers, so everything since
        their last served estimate is the documented drop window.  The
        dead ring's undrained backlog is counted as dropped.  Returns
        the re-homed session ids.
        """
        if shard_index not in self._router:
            raise ValueError(f"shard {shard_index} is not live")
        if len(self._router) == 1:
            raise ValueError("cannot kill the last shard")
        shard = self._shards[shard_index]
        backlog = len(shard.ring)
        shard.kill()
        shard.ring.close(unlink=True)
        self._router.remove_shard(shard_index)
        self._c_failovers.inc()
        self._c_dropped.inc(backlog)
        orphans = tuple(
            sid for sid, where in self._placement.items() if where == shard_index
        )
        for sid in orphans:
            card = self._cards[sid]
            new_shard = self._router.route(sid)
            self._shards[new_shard].request(
                (
                    "open",
                    sid,
                    card.profile,
                    card.fingerprint,
                    card.camera,
                    card.config,
                    card.workload,
                )
            )
            self._placement[sid] = new_shard
        self._c_rehashed.inc(len(orphans))
        self._g_shards.set(len(self._router))
        return orphans

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def estimates(
        self, session_id: str | None = None
    ) -> dict[str, Estimate | None] | tuple[Estimate, ...]:
        if session_id is not None:
            shard_index = self._placement.get(session_id)
            if shard_index is None:
                raise KeyError(f"unknown session {session_id!r}")
            result = self._shards[shard_index].request(
                ("estimates", session_id)
            )
            return tuple(result)
        merged: dict[str, Estimate | None] = {}
        for snapshot in self._broadcast(("estimates", None)):
            merged.update(snapshot)
        return merged

    def health_states(self) -> dict[str, str]:
        merged: dict[str, str] = {}
        for states in self._broadcast(("health",)):
            merged.update(states)
        return merged

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def shard_snapshots(self) -> dict[int, dict[str, Any]]:
        """Each live shard's own registry snapshot, keyed by index."""
        shards = self._router.shards
        return dict(zip(shards, self._broadcast(("snapshot",))))

    def metrics_snapshot(self) -> dict[str, object]:
        """One fleet scrape: worker counters/gauges summed, fleet
        histograms from the parent registry, stage stats merged."""
        return merge_snapshots(
            list(self.shard_snapshots().values()), self._metrics.as_dict()
        )

    def render_metrics(self) -> str:
        return render_snapshot(self.metrics_snapshot())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop every worker and release the shared-memory rings."""
        if self._closed:
            return
        self._closed = True
        for index in self._router.shards:
            shard = self._shards[index]
            if shard.alive:
                try:
                    shard.request(("stop",))
                except RuntimeError:
                    pass
            shard.join()
            shard.ring.close(unlink=True)

    def __enter__(self) -> ServingFabric:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort: rings must not leak
        try:
            self.close()
        except Exception:
            pass


def _no_builder() -> CsiProfile:
    raise SessionStateError(
        "profile cache miss and no build_profile callback was provided"
    )


def _merge_tick_reports(
    reports: Sequence[ManagerTickReport],
) -> ManagerTickReport:
    """Fold per-shard tick reports into one fleet report, shard order."""
    scheduler = TickReport(
        served=tuple(
            served for report in reports for served in report.scheduler.served
        ),
        deferred=tuple(
            sid for report in reports for sid in report.scheduler.deferred
        ),
        budget_s=max((r.scheduler.budget_s for r in reports), default=0.0),
        elapsed_s=max((r.scheduler.elapsed_s for r in reports), default=0.0),
        deadline_misses=sum(r.scheduler.deadline_misses for r in reports),
        batched_groups=sum(r.scheduler.batched_groups for r in reports),
        batched_sessions=sum(r.scheduler.batched_sessions for r in reports),
        fallback_sessions=sum(r.scheduler.fallback_sessions for r in reports),
        batch_sizes=tuple(
            size for report in reports for size in report.scheduler.batch_sizes
        ),
    )
    return ManagerTickReport(
        ingested=sum(r.ingested for r in reports),
        orphaned=sum(r.orphaned for r in reports),
        scheduler=scheduler,
        idled=tuple(sid for r in reports for sid in r.idled),
        evicted=tuple(sid for r in reports for sid in r.evicted),
        rejected=sum(r.rejected for r in reports),
        poll_failures=tuple(sid for r in reports for sid in r.poll_failures),
        quarantined=tuple(sid for r in reports for sid in r.quarantined),
        released=tuple(sid for r in reports for sid in r.released),
        recovered=tuple(sid for r in reports for sid in r.recovered),
    )


def merge_snapshots(
    worker_snapshots: Sequence[dict[str, Any]],
    parent_snapshot: dict[str, Any] | None = None,
) -> dict[str, object]:
    """Merge registry snapshots into one fleet snapshot.

    Counters and gauges sum across workers (and the parent's fabric-
    level metrics, when given).  Histograms come from the parent
    snapshot only: a histogram's percentiles cannot be merged from
    per-shard summaries, so the fabric observes fleet histograms
    parent-side from the merged tick reports instead.  Stage stats
    merge by stage name — counts sum, percentile columns take the
    worst shard (an upper bound, which is what an operator gating on
    them wants).
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    stages: dict[str, dict[str, Any]] = {}
    snapshots = list(worker_snapshots)
    if parent_snapshot is not None:
        snapshots.append(parent_snapshot)
    for snapshot in snapshots:
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for stage in snapshot.get("stages", ()):
            name = str(stage["stage"])
            into = stages.setdefault(
                name,
                {
                    "stage": name,
                    "evaluated": 0,
                    "fired": 0,
                    "terminal": 0,
                    "p50_ms": 0.0,
                    "p90_ms": 0.0,
                },
            )
            into["evaluated"] += int(stage["evaluated"])
            into["fired"] += int(stage["fired"])
            into["terminal"] += int(stage["terminal"])
            into["p50_ms"] = max(into["p50_ms"], float(stage["p50_ms"]))
            into["p90_ms"] = max(into["p90_ms"], float(stage["p90_ms"]))
    histograms: dict[str, Any] = (
        dict(parent_snapshot.get("histograms", {}))
        if parent_snapshot is not None
        else {}
    )
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": histograms,
        "stages": [stages[name] for name in sorted(stages)],
    }
