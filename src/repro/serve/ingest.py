"""Batched multi-session ingestion with bounded backpressure.

The serving hot path is "N cabins × hundreds of CSI packets per second
each".  Pushing every packet straight into its session's tracker from
the network thread would interleave O(N) Python attribute lookups and
state transitions with packet arrival; instead, arrivals land in one
flat :class:`IngestQueue` — a preallocated ring of ``(session_id, time,
csi)`` tuples, O(1) per packet, no dicts touched — and the manager
drains them in :class:`IngestBatch` units once per scheduling tick.

Backpressure is **drop-oldest**: when the ring is full the oldest
queued packet is shed (and counted, per session and in total) so the
freshest data always gets in.  For a tracker that is the right policy —
a stale CSI packet that missed its scheduling window is worth strictly
less than the one that just arrived — and it bounds memory at
``depth`` records no matter how far ingest outruns scheduling.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import NamedTuple

import numpy as np


class IngestRecord(NamedTuple):
    """One CSI packet addressed to one session."""

    session_id: str
    time: float
    csi: np.ndarray


class IngestBatch:
    """An arrival-ordered batch drained from the queue."""

    __slots__ = ("records",)

    def __init__(self, records: tuple[IngestRecord, ...]) -> None:
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[IngestRecord]:
        return iter(self.records)

    def by_session(self) -> dict[str, list[IngestRecord]]:
        """Group the batch per session, preserving arrival order."""
        groups: dict[str, list[IngestRecord]] = {}
        for record in self.records:
            groups.setdefault(record.session_id, []).append(record)
        return groups


class IngestQueue:
    """Bounded drop-oldest ring of :class:`IngestRecord`.

    Args:
        depth: maximum queued records.  At the default, one 50-session
            fleet at 500 Hz can fall a full scheduling tick (~160 ms)
            behind before anything is shed.
    """

    def __init__(self, depth: int = 4096) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth}")
        self._slots: list[IngestRecord | None] = [None] * depth
        self._head = 0
        self._count = 0
        self._pushed = 0
        self._dropped = 0
        self._dropped_by_session: dict[str, int] = {}

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def depth(self) -> int:
        return len(self._slots)

    @property
    def fill_fraction(self) -> float:
        """Occupancy in ``[0, 1]`` — the backpressure signal the sharded
        fabric's work stealing keys on (see :mod:`repro.serve.fabric`)."""
        return self._count / len(self._slots)

    @property
    def pushed_total(self) -> int:
        """Packets ever offered to the queue (accepted or shed)."""
        return self._pushed

    @property
    def dropped_total(self) -> int:
        return self._dropped

    @property
    def dropped_by_session(self) -> dict[str, int]:
        """Per-session shed counts (only sessions that lost packets)."""
        return dict(self._dropped_by_session)

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def push(self, session_id: str, time: float, csi: np.ndarray) -> bool:
        """Enqueue one packet.  Returns ``False`` iff an old one was shed."""
        self._pushed += 1
        accepted = True
        depth = len(self._slots)
        if self._count == depth:
            oldest = self._slots[self._head]
            self._dropped += 1
            self._dropped_by_session[oldest.session_id] = (
                self._dropped_by_session.get(oldest.session_id, 0) + 1
            )
            self._head = (self._head + 1) % depth
            self._count -= 1
            accepted = False
        self._slots[(self._head + self._count) % depth] = IngestRecord(
            session_id, time, csi
        )
        self._count += 1
        return accepted

    def forget_session(self, session_id: str) -> None:
        """Drop a session's shed-count bookkeeping.

        The manager calls this when a session is evicted; without it the
        per-session drop map grows monotonically with every session id
        the fleet has ever seen — an unbounded leak under long
        multi-tenant runs.  Aggregate counts (``dropped_total``,
        ``pushed_total``) are unaffected.
        """
        self._dropped_by_session.pop(session_id, None)

    def drain(self, max_records: int | None = None) -> IngestBatch:
        """Pop up to ``max_records`` (default: everything) in order."""
        n = self._count if max_records is None else min(max_records, self._count)
        depth = len(self._slots)
        records = []
        for k in range(n):
            index = (self._head + k) % depth
            records.append(self._slots[index])
            self._slots[index] = None  # release the CSI matrix reference
        self._head = (self._head + n) % depth
        self._count -= n
        return IngestBatch(tuple(records))
