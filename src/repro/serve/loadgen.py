"""Synthetic fleet load for the serving layer (no RF simulation).

The full cabin simulator costs seconds of CPU per simulated second of
driving — fine for accuracy experiments, hopeless for exercising a
*serving* layer whose point is thousands of packets per wall second.
This module generates the same shape of traffic the real pipeline
produces (per-packet ``(n_rx, F)`` CSI whose antenna phase difference
sweeps like a turning head) directly, so a laptop can drive 50+
concurrent sessions through the :class:`~repro.serve.manager.SessionManager`
at far beyond real time.

Every cabin is deterministic in ``(seed, cabin index)``: the same fleet
replays bit-identically, which is what lets :func:`run_load` verify the
acceptance property end-to-end — estimates served through the manager
must equal a standalone :class:`~repro.core.online.OnlineTracker` fed
the same packets and polled at the same instants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from collections.abc import Sequence

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.online import OnlineTracker
from repro.core.profile import CsiProfile, PositionProfile
from repro.core.stages import Estimate
from repro.core.workloads import HEAD_WORKLOAD, engine_for_workload
from repro.faults import FaultPlan, StreamFaults
from repro.serve.fabric import ServingFabric
from repro.serve.manager import ManagerTickReport, SessionManager

#: Intel-5300-shaped packets.
N_RX = 2
N_SUBCARRIERS = 30

#: The fingerprint all synthetic cabins share — one profiling pass
#: serves the whole fleet through the manager's profile cache.
SYNTHETIC_FINGERPRINT = "synthetic-cabin-v1"

#: The mixed-fleet workload kinds, cycled per cabin index when
#: ``run_load(workload_mix=True)``:
#: ``plain`` (CSI only), ``forecast`` (nonzero horizon — shares its
#: plain siblings' batch group, the items carry their own engines),
#: ``camera`` (IMU + camera steering fallback — excluded from batches),
#: ``imu`` (IMU without camera — steering holds).
WORKLOAD_KINDS = ("plain", "forecast", "camera", "imu")

#: Every kind a scenario's workload mix may name: the four head-tracking
#: traffic shapes above plus the non-head estimation workloads
#: (``localize`` — rear-seat occupant localization, ``breathing`` —
#: respiration-rate micro-motion sensing).  Cycled per cabin index via
#: ``run_load(workloads=...)``.
ALL_WORKLOAD_KINDS = WORKLOAD_KINDS + ("localize", "breathing")


def kind_workload(kind: str) -> str:
    """The serve-layer session workload behind a loadgen kind: the four
    head-tracking traffic shapes all run the ``"head"`` chain; the
    estimation workloads run their own."""
    return kind if kind in ("localize", "breathing") else HEAD_WORKLOAD


def kind_uses_imu(kind: str) -> bool:
    """Whether cabins of this kind stream the gyro side-channel."""
    return kind in ("camera", "imu")


def synthetic_profile(num_positions: int = 4, seed: int = 100) -> CsiProfile:
    """A plausible scan-shaped profile, cheap to build (no RF sim)."""
    profile = CsiProfile(driver="loadgen")
    n = 1200
    for k in range(num_positions):
        rng = np.random.default_rng(seed + k)
        orientations = np.deg2rad(70.0) * np.sin(np.linspace(0, 14, n))
        phases = 0.012 * np.rad2deg(orientations) + rng.normal(0, 0.002, n)
        profile.add(
            PositionProfile(float(k), 200.0, phases + 0.2 * k, orientations, 0.2 * k)
        )
    return profile


@dataclass
class SyntheticCabin:
    """One cabin's deterministic packet stream.

    The phase track depends on the cabin's ``workload`` traffic shape:

    * ``"head"`` (default): the head sweeps sinusoidally at a per-cabin
      frequency/amplitude — the pre-registry stream, byte for byte.
    * ``"localize"``: a rear-seat occupant parked near one profiled
      seat's ``phi0`` fingerprint (recorded as :attr:`seat_index`), with
      slow posture drift on top.
    * ``"breathing"``: a small respiration sinusoid at a per-cabin rate
      in the physiological band (recorded as :attr:`breathing_rate_hz`).

    All shapes are deterministic in ``(seed, workload)``, so the same
    fleet replays bit-identically.
    """

    cabin_id: str
    seed: int
    duration_s: float
    rate_hz: float = 200.0
    imu_rate_hz: float = 20.0
    workload: str = "head"

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        self.times = np.arange(0.0, self.duration_s, 1.0 / self.rate_hz)
        if self.workload == "localize":
            # Seat fingerprints in synthetic_profile() sit at 0.2 * k.
            self.seat_index = int(rng.integers(4))
            drift = 0.03 * np.sin(
                2.0 * np.pi * 0.08 * self.times + 2.0 * np.pi * rng.random()
            )
            self._sweep = (
                0.2 * self.seat_index
                + drift
                + rng.normal(0, 0.01, len(self.times))
            )
        elif self.workload == "breathing":
            self.breathing_rate_hz = float(0.18 + 0.17 * rng.random())
            chest = 0.05 * np.sin(
                2.0 * np.pi * self.breathing_rate_hz * self.times
                + 2.0 * np.pi * rng.random()
            )
            self._sweep = chest + rng.normal(0, 0.004, len(self.times))
        else:
            # The head-tracking shape.  Draw order is bit-identity
            # critical: the serve-layer equivalence gates replay these
            # exact streams.
            freq = 0.30 + 0.15 * rng.random()
            amplitude = 0.6 + 0.4 * rng.random()
            self._sweep = amplitude * np.sin(
                2.0 * np.pi * freq * self.times
            ) + rng.normal(0, 0.01, len(self.times))
        # A deterministic gyro track: quiet, except one mid-run steering
        # burst well above the 0.06 rad/s identification threshold so
        # IMU-carrying workloads actually exercise the steering stage.
        imu_rng = np.random.default_rng(self.seed + 1)
        self.imu_times = np.arange(0.0, self.duration_s, 1.0 / self.imu_rate_hz)
        burst_start = self.duration_s * (0.35 + 0.1 * imu_rng.random())
        burst_stop = burst_start + 0.2 * self.duration_s
        in_burst = (self.imu_times >= burst_start) & (self.imu_times < burst_stop)
        self.imu_rates = np.where(in_burst, 0.3, 0.0) + imu_rng.normal(
            0, 0.005, len(self.imu_times)
        )

    def __len__(self) -> int:
        return len(self.times)

    def csi_at(self, k: int) -> np.ndarray:
        """Packet ``k``'s CSI matrix, built on demand (no fleet-sized
        complex arrays held in memory)."""
        csi = np.empty((N_RX, N_SUBCARRIERS), dtype=np.complex128)
        csi[0, :] = np.exp(1j * self._sweep[k])
        csi[1, :] = 1.0
        return csi


@dataclass(frozen=True)
class SyntheticCamera:
    """Deterministic camera stub: head yaw as a pure function of time,
    so a served session and its standalone replay see the same fallback
    values."""

    seed: int

    def estimate_at(self, t: float) -> float:
        return float(0.3 * np.sin(2.0 * np.pi * 0.25 * t + (self.seed % 7)))


@dataclass(frozen=True)
class LoadResult:
    """What one :func:`run_load` run measured."""

    sessions: int
    packets: int
    estimates: int
    drops: int
    deferrals: int
    deadline_misses: int
    wall_s: float
    packets_per_s: float  # per-session packet rate actually sustained
    session_packets_per_s: float  # sessions x packets/s, the headline
    latency_p50_ms: float
    latency_p90_ms: float
    latency_p99_ms: float
    verified_sessions: int
    bit_identical: bool
    metrics_line: str
    batching: bool = False
    batched_sessions: int = 0  # serving records produced by stacked calls
    fallback_sessions: int = 0  # serving records on the sequential path
    churned_sessions: int = 0  # sessions closed mid-run and reopened
    workers: int = 0  # sharded-fabric worker count (0 = single process)
    #: Per-captured-session poll log ``[(polled_t, estimate), ...]`` for
    #: the first ``capture_sessions`` cabins — lets a caller compare two
    #: runs (batched vs sequential) estimate-for-estimate.  Excluded
    #: from :meth:`as_dict`: it is test plumbing, not a measurement.
    captured: dict[str, list[tuple[float, Estimate | None]]] = field(
        default_factory=dict
    )
    #: The run's final merged metrics snapshot (registry ``as_dict``
    #: form) — what :func:`repro.serve.export.render_prometheus`
    #: consumes.  Excluded from :meth:`as_dict` like ``captured``.
    snapshot: dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        return {
            "sessions": self.sessions,
            "packets": self.packets,
            "estimates": self.estimates,
            "drops": self.drops,
            "deferrals": self.deferrals,
            "deadline_misses": self.deadline_misses,
            "wall_s": self.wall_s,
            "packets_per_s": self.packets_per_s,
            "session_packets_per_s": self.session_packets_per_s,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p90_ms": self.latency_p90_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "verified_sessions": self.verified_sessions,
            "bit_identical": self.bit_identical,
            "batching": self.batching,
            "batched_sessions": self.batched_sessions,
            "fallback_sessions": self.fallback_sessions,
            "churned_sessions": self.churned_sessions,
            "workers": self.workers,
            "metrics": self.metrics_line,
        }

    def summary(self) -> str:
        return (
            f"{self.sessions} sessions x {self.packets // max(self.sessions, 1)} "
            f"packets in {self.wall_s:.2f}s wall = "
            f"{self.session_packets_per_s:,.0f} session-packets/s, "
            f"{self.estimates} estimates "
            f"(p50 {self.latency_p50_ms:.2f} ms, p90 {self.latency_p90_ms:.2f} ms), "
            f"{self.drops} drops, {self.deferrals} deferrals, "
            f"verify[{self.verified_sessions}]="
            f"{'bit-identical' if self.bit_identical else 'MISMATCH'}"
        )


def estimates_identical(a: Estimate | None, b: Estimate | None) -> bool:
    """Bit-identical payload comparison, NaN-aware.

    Dataclass equality treats ``dtw_distance=NaN`` (any non-matching
    mode) as unequal to itself, so exact-replay verification needs this
    instead of ``==``.  Traces are metadata and excluded, like in
    ``Estimate.__eq__``.
    """
    if a is None or b is None:
        return a is b
    same_dtw = (
        a.dtw_distance == b.dtw_distance
        or (np.isnan(a.dtw_distance) and np.isnan(b.dtw_distance))
    )
    return (
        a.time == b.time
        and a.target_time == b.target_time
        and a.orientation == b.orientation
        and a.mode == b.mode
        and a.position_index == b.position_index
        and same_dtw
    )


def _cabin_kind(
    index: int, workload_mix: bool, workloads: Sequence[str] | None = None
) -> str:
    """The workload kind cabin ``index`` runs under.

    An explicit ``workloads`` cycle (the scenario registry's mix) wins;
    otherwise ``workload_mix`` cycles the head-tracking kinds and the
    default is a plain fleet.
    """
    if workloads:
        return workloads[index % len(workloads)]
    return WORKLOAD_KINDS[index % len(WORKLOAD_KINDS)] if workload_mix else "plain"


def _replay_standalone(
    cabin: SyntheticCabin,
    profile: CsiProfile,
    config: ViHOTConfig,
    buffer_s: float,
    estimate_times: list[float],
    camera: SyntheticCamera | None = None,
    with_imu: bool = False,
    workload: str = HEAD_WORKLOAD,
) -> list[Estimate | None]:
    """Feed a fresh standalone tracker the cabin's packets, polling at
    exactly the instants the manager's scheduler polled.

    IMU samples (when the cabin's workload carries them) are pushed
    ahead of each CSI packet, mirroring :func:`run_load`'s loop: both
    paths leave the tracker's IMU ring holding exactly the readings
    stamped at or before the current stream time when a poll lands.
    """
    if workload == HEAD_WORKLOAD:
        tracker = OnlineTracker(profile, config, camera=camera, buffer_s=buffer_s)
    else:
        tracker = OnlineTracker(
            profile,
            camera=camera,
            buffer_s=buffer_s,
            engine=engine_for_workload(workload, profile, config, camera=camera),
        )
    produced: list[Estimate | None] = []
    poll = 0
    imu_k = 0
    for k in range(len(cabin)):
        t = float(cabin.times[k])
        if with_imu:
            while imu_k < len(cabin.imu_times) and cabin.imu_times[imu_k] <= t:
                tracker.push_imu(
                    float(cabin.imu_times[imu_k]), float(cabin.imu_rates[imu_k])
                )
                imu_k += 1
        tracker.push_csi(t, cabin.csi_at(k))
        while poll < len(estimate_times) and estimate_times[poll] <= t + 1e-12:
            produced.append(tracker.estimate(estimate_times[poll]))
            poll += 1
    return produced


def run_load(
    num_sessions: int = 50,
    duration_s: float = 4.0,
    rate_hz: float = 200.0,
    tick_interval_s: float = 0.05,
    stride_s: float = 0.25,
    budget_s: float = 1.0,
    queue_depth: int = 4096,
    verify_sessions: int = 2,
    config: ViHOTConfig | None = None,
    buffer_s: float = 6.0,
    seed: int = 0,
    plan: FaultPlan | None = None,
    batching: bool = False,
    workload_mix: bool = False,
    capture_sessions: int = 0,
    workloads: Sequence[str] | None = None,
    churn_sessions: int = 0,
    workers: int = 0,
    processes: bool = True,
) -> LoadResult:
    """Drive ``num_sessions`` synthetic cabins through one manager.

    The fleet shares one cached profile (every cabin is the same car
    model), streams in lockstep at ``rate_hz``, and the manager ticks
    every ``tick_interval_s`` of stream time.  The first
    ``verify_sessions`` cabins are replayed through standalone trackers
    afterwards and compared estimate-for-estimate.

    ``plan`` optionally wraps every cabin's packet stream in fault
    injectors (see :mod:`repro.faults`).  With faults active the
    standalone-replay check is skipped — injected streams diverge from
    the pristine cabins by construction; with ``plan`` empty or ``None``
    the code path is identical to before the parameter existed, so
    fault-free runs stay bit-identical.

    ``batching`` switches the manager to the fleet-batched scheduler
    (:class:`~repro.serve.batch.BatchedScheduler`) — a performance
    toggle that must not change a single served value.
    ``workload_mix`` cycles cabins through :data:`WORKLOAD_KINDS` so the
    fleet exercises every batch-planner path at once.  ``workloads``
    (the scenario registry's mix) supersedes it: an explicit kind cycle
    from :data:`ALL_WORKLOAD_KINDS`, which may include the non-head
    estimation workloads (``localize``, ``breathing``) — those sessions
    open with the matching serve-layer workload and cabin traffic
    shape.  The first ``capture_sessions`` cabins get their full
    ``(polled_t, estimate)`` poll logs recorded in
    :attr:`LoadResult.captured` for cross-run comparison.

    ``churn_sessions`` closes that many sessions (from the fleet's
    tail) mid-run and reopens them shortly after — the T3 scenarios'
    session-churn stress.  Churned cabins are excluded from
    verification and capture (their reopened trackers legitimately
    restart from empty buffers), and with the default of 0 the code
    path is untouched.

    ``workers`` > 0 swaps the single manager for a sharded
    :class:`~repro.serve.fabric.ServingFabric` of that many shards
    (``processes=False`` keeps the shards inline — same code path
    minus the transport).  The drive loop, fault injection, churn and
    standalone verification all run unchanged against the fabric's
    manager-shaped facade, so the identity probes hold across worker
    counts — the tentpole guarantee.
    """
    if num_sessions < 1:
        raise ValueError("num_sessions must be >= 1")
    if workloads is not None:
        unknown = sorted(set(workloads) - set(ALL_WORKLOAD_KINDS))
        if unknown:
            raise ValueError(
                f"unknown workload kinds {unknown}; known: "
                f"{list(ALL_WORKLOAD_KINDS)}"
            )
    if churn_sessions < 0:
        raise ValueError("churn_sessions must be >= 0")
    if config is None:
        # The fast search configuration the online benches use.
        config = ViHOTConfig(profile_stride=8, num_length_candidates=3)

    profile = synthetic_profile()
    manager: SessionManager | ServingFabric
    if workers:
        manager = ServingFabric(
            config,
            workers=workers,
            processes=processes,
            queue_depth=queue_depth,
            budget_s=budget_s,
            stride_s=stride_s,
            idle_timeout_s=10 * duration_s + 60.0,  # no idling mid-run
            buffer_s=buffer_s,
            batching=batching,
        )
    else:
        manager = SessionManager(
            config,
            queue_depth=queue_depth,
            budget_s=budget_s,
            stride_s=stride_s,
            idle_timeout_s=10 * duration_s + 60.0,  # no idling mid-run
            buffer_s=buffer_s,
            batching=batching,
        )
    cabin_kinds = [
        _cabin_kind(k, workload_mix, workloads) for k in range(num_sessions)
    ]
    cabins = [
        SyntheticCabin(f"cabin-{k:04d}", seed=seed * 10_000 + k, duration_s=duration_s,
                       rate_hz=rate_hz, workload=kind_workload(cabin_kinds[k]))
        for k in range(num_sessions)
    ]
    kinds = {
        cabin.cabin_id: cabin_kinds[k] for k, cabin in enumerate(cabins)
    }
    cameras: dict[str, SyntheticCamera] = {}
    configs: dict[str, ViHOTConfig] = {}

    def open_cabin(k: int, cabin: SyntheticCabin) -> None:
        kind = kinds[cabin.cabin_id]
        session_config = (
            replace(config, horizon_s=0.1) if kind == "forecast" else config
        )
        camera = SyntheticCamera(seed=seed * 10_000 + k) if kind == "camera" else None
        configs[cabin.cabin_id] = session_config
        if camera is not None:
            cameras[cabin.cabin_id] = camera
        manager.open_session(
            cabin.cabin_id,
            fingerprint=SYNTHETIC_FINGERPRINT,
            build_profile=lambda: profile,
            camera=camera,
            config=session_config if kind == "forecast" else None,
            workload=kind_workload(kind),
        )

    for k, cabin in enumerate(cabins):
        open_cabin(k, cabin)

    faults: dict[str, StreamFaults] = {}
    if plan is not None and plan.enabled:
        faults = {cabin.cabin_id: plan.bind(cabin.cabin_id) for cabin in cabins}
        verify_sessions = 0  # injected streams diverge from pristine cabins

    # Churn takes sessions from the fleet's tail so it never overlaps
    # the verification/capture probes at the front.
    churn_sessions = min(
        churn_sessions,
        max(num_sessions - max(verify_sessions, capture_sessions), 0),
    )
    churn_ids = [cabin.cabin_id for cabin in cabins[num_sessions - churn_sessions:]
                 ] if churn_sessions else []
    churn_close_t = 0.45 * duration_s
    churn_reopen_t = 0.65 * duration_s
    churn_phase = "open"  # open -> closed -> reopened
    closed: set[str] = set()

    # Per-tracked-session poll log: the stream times the scheduler
    # actually polled at (estimates or declines both advance the clock).
    # Tracked = the verification probes plus any capture requests.
    num_steps = len(cabins[0].times)
    tracked = max(verify_sessions, capture_sessions)
    servings: dict[str, list[tuple[float, Estimate | None]]] = {
        cabin.cabin_id: [] for cabin in cabins[:tracked]
    }
    batched_total = 0
    fallback_total = 0

    start = time.perf_counter()
    next_tick = tick_interval_s

    def record(report: ManagerTickReport) -> None:
        nonlocal batched_total, fallback_total
        batched_total += report.scheduler.batched_sessions
        fallback_total += report.scheduler.fallback_sessions
        for served in report.scheduler.served:
            if served.session_id in servings:
                servings[served.session_id].append(
                    (served.polled_t, served.estimate)
                )

    imu_cursors = {cabin.cabin_id: 0 for cabin in cabins}
    for k in range(num_steps):
        t = float(cabins[0].times[k])
        if churn_ids and churn_phase == "open" and t >= churn_close_t:
            for cabin_id in churn_ids:
                manager.close_session(cabin_id)
                closed.add(cabin_id)
            churn_phase = "closed"
        elif churn_ids and churn_phase == "closed" and t >= churn_reopen_t:
            for ck, cabin in enumerate(cabins):
                if cabin.cabin_id in closed:
                    open_cabin(ck, cabin)
            closed.clear()
            churn_phase = "reopened"
        for cabin in cabins:
            uses_imu = kind_uses_imu(kinds[cabin.cabin_id])
            if cabin.cabin_id in closed:
                # A disconnected car streams nothing; its unsent IMU
                # backlog is discarded, not delivered on reconnect.
                if uses_imu:
                    cursor = imu_cursors[cabin.cabin_id]
                    while (
                        cursor < len(cabin.imu_times)
                        and cabin.imu_times[cursor] <= t
                    ):
                        cursor += 1
                    imu_cursors[cabin.cabin_id] = cursor
                continue
            if uses_imu:
                cursor = imu_cursors[cabin.cabin_id]
                while cursor < len(cabin.imu_times) and cabin.imu_times[cursor] <= t:
                    manager.ingest_imu(
                        cabin.cabin_id,
                        float(cabin.imu_times[cursor]),
                        float(cabin.imu_rates[cursor]),
                    )
                    cursor += 1
                imu_cursors[cabin.cabin_id] = cursor
            if faults:
                for ft, fcsi in faults[cabin.cabin_id].process(t, cabin.csi_at(k)):
                    manager.ingest(cabin.cabin_id, ft, fcsi)
            else:
                manager.ingest(cabin.cabin_id, t, cabin.csi_at(k))
        if t >= next_tick:
            record(manager.tick())
            next_tick += tick_interval_s
    record(manager.tick())
    wall_s = time.perf_counter() - start

    # Verification: replay the probe cabins standalone.
    bit_identical = True
    for cabin in cabins[:verify_sessions]:
        log = servings[cabin.cabin_id]
        kind = kinds[cabin.cabin_id]
        standalone = _replay_standalone(
            cabin,
            profile,
            configs[cabin.cabin_id],
            buffer_s,
            [t for t, _ in log],
            camera=cameras.get(cabin.cabin_id),
            with_imu=kind_uses_imu(kind),
            workload=kind_workload(kind),
        )
        served_estimates = [e for _, e in log]
        if len(standalone) != len(served_estimates) or not all(
            estimates_identical(a, b)
            for a, b in zip(standalone, served_estimates)
        ):
            bit_identical = False

    snapshot = manager.metrics_snapshot()
    counters = snapshot["counters"]
    assert isinstance(counters, dict)
    latency = manager.metrics.histogram("estimate_latency_ms")
    latency_p50 = latency.percentile(50)
    latency_p90 = latency.percentile(90)
    latency_p99 = latency.percentile(99)
    metrics_line = manager.render_metrics()
    if isinstance(manager, ServingFabric):
        manager.close()
    packets = int(counters["packets_ingested"])
    aggregate_rate = packets / wall_s if wall_s > 0 else float("inf")
    return LoadResult(
        sessions=num_sessions,
        packets=packets,
        estimates=int(counters["estimates_served"]),
        drops=int(counters["packets_dropped"]),
        deferrals=int(counters["scheduler_deferrals"]),
        deadline_misses=int(counters["deadline_misses"]),
        wall_s=wall_s,
        packets_per_s=aggregate_rate / num_sessions,
        session_packets_per_s=aggregate_rate,
        latency_p50_ms=latency_p50,
        latency_p90_ms=latency_p90,
        latency_p99_ms=latency_p99,
        verified_sessions=min(verify_sessions, num_sessions),
        bit_identical=bit_identical,
        metrics_line=metrics_line,
        batching=batching,
        batched_sessions=batched_total,
        fallback_sessions=fallback_total,
        churned_sessions=len(churn_ids),
        workers=workers,
        captured={
            cabin.cabin_id: servings[cabin.cabin_id]
            for cabin in cabins[:capture_sessions]
        },
        snapshot=dict(snapshot),
    )
