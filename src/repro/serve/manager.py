"""The multi-session front door: ``SessionManager``.

One manager owns a fleet of :class:`~repro.serve.session.TrackedSession`
behind four verbs — ``open_session`` / ``ingest`` / ``estimates`` /
``close_session`` — plus a periodic ``tick()`` that does all the real
work: drain the ingest queue into the sessions, let the scheduler serve
due estimates within its budget, and apply the idle/eviction policy.

Two policies live here rather than in the sessions:

* **Profile caching.**  Profiling a driver costs ~100 s of scanning
  (Sec. 3.3); a fleet of identical cabins (same car model, same antenna
  layout, same driver class) should pay it once.  ``open_session``
  accepts a *scenario fingerprint*; fingerprint hits reuse the cached
  :class:`~repro.core.profile.CsiProfile`, misses call the caller's
  ``build_profile`` thunk and cache the result.
* **Idle eviction.**  Sessions with no ingest activity for
  ``idle_timeout_s`` (manager wall clock) are parked ``idle``; idle
  sessions untouched for another ``evict_after_s`` are evicted — their
  tracker ring buffers freed, their last-estimate snapshot retained.
  Fresh packets wake an idle session back to ``live``; packets for an
  evicted session are counted as orphaned and shed.

The manager adds routing and scheduling only — it never changes what a
tracker computes.  The same packets pushed into a standalone
``OnlineTracker`` with estimates pulled at the same instants produce
bit-identical results (``tests/serve/test_equivalence.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Iterator

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.diagnostics import StageStats, aggregate_stage_traces
from repro.core.profile import CsiProfile
from repro.core.stages import CameraLike, Estimate
from repro.core.workloads import HEAD_WORKLOAD
from repro.serve.batch import BatchedScheduler
from repro.serve.ingest import IngestQueue
from repro.serve.metrics import MetricsRegistry
from repro.serve.scheduler import RoundRobinScheduler, TickReport
from repro.serve.session import (
    DEGRADED,
    EVICTED,
    HEALTHY,
    IDLE,
    LIVE,
    QUARANTINED,
    HealthPolicy,
    SessionStateError,
    TrackedSession,
)


def _finite_packet(time: float, csi: np.ndarray) -> bool:
    """Whether one CSI record is safe to hand a tracker.

    A single NaN (or infinite) CSI entry poisons the tracker's
    incremental phase unwrap for the rest of the session, and a
    non-finite timestamp raises deep inside ``push_csi`` — both are
    rejected at the ingest boundary instead, counted per session, and
    fed to the health machine.
    """
    return bool(np.isfinite(time)) and bool(np.all(np.isfinite(csi)))


def scenario_fingerprint(config: object) -> str:
    """A cache key over the profiling-relevant knobs of a scenario.

    Two :class:`~repro.experiments.scenarios.ScenarioConfig` with equal
    fingerprints produce byte-identical profiling passes (the runtime
    half — motion, steering, interference — deliberately does not
    participate), so their sessions can share one cached profile.
    """
    fields = (
        "seed",
        "driver",
        "rx_layout",
        "band",
        "num_positions",
        "lean_span_m",
        "profile_seconds",
        "profile_front_hold_s",
        "profile_scan_speed",
        "profile_scan_amplitude",
    )
    parts = [f"{name}={getattr(config, name)!r}" for name in fields]
    return "scenario{" + ",".join(parts) + "}"


class ProfileCache:
    """Fingerprint-keyed cache of built :class:`CsiProfile`."""

    def __init__(self) -> None:
        self._profiles: dict[str, CsiProfile] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._profiles

    def get_or_build(
        self, fingerprint: str, build: Callable[[], CsiProfile]
    ) -> CsiProfile:
        if fingerprint in self._profiles:
            self.hits += 1
            return self._profiles[fingerprint]
        self.misses += 1
        profile = build()
        self._profiles[fingerprint] = profile
        return profile

    def put(self, fingerprint: str, profile: CsiProfile) -> None:
        self._profiles[fingerprint] = profile

    def invalidate(self, fingerprint: str) -> None:
        self._profiles.pop(fingerprint, None)


@dataclass(frozen=True)
class ManagerTickReport:
    """Everything one ``SessionManager.tick()`` did."""

    ingested: int  # packets routed into sessions
    orphaned: int  # packets for unknown/evicted sessions, shed
    scheduler: TickReport
    idled: tuple[str, ...] = ()
    evicted: tuple[str, ...] = ()
    rejected: int = 0  # non-finite packets refused at ingest
    poll_failures: tuple[str, ...] = ()  # sessions whose poll raised (contained)
    quarantined: tuple[str, ...] = ()  # sessions entering quarantine this tick
    released: tuple[str, ...] = ()  # quarantine backoffs expiring (retry)
    recovered: tuple[str, ...] = ()  # sessions restored to healthy


class SessionManager:
    """Own, feed and schedule a fleet of tracked sessions.

    Args:
        config: tracker parameters shared by every session.
        queue_depth: ingest ring capacity (drop-oldest past it).
        budget_s: scheduler wall-time budget per tick.
        stride_s: per-session estimate period (deadline accounting).
        idle_timeout_s: wall seconds without ingest before a session is
            parked idle.
        evict_after_s: further wall seconds before an idle session is
            evicted (``None`` disables eviction).
        buffer_s: per-tracker retention horizon.
        max_history: retained estimates per session.
        clock: injectable wall clock for activity stamps (tests fake it).
        health_policy: fault-containment thresholds applied to every
            session (degrade/quarantine/backoff/probation).
        batching: serve due estimates through the fleet-batched
            scheduler (:class:`~repro.serve.batch.BatchedScheduler`) —
            groups of interchangeable sessions run as one stacked
            engine call.  Estimate values are bit-identical either way
            (``tests/serve/test_batching.py``); only throughput and the
            ``batch_*`` metrics change.
    """

    def __init__(
        self,
        config: ViHOTConfig = ViHOTConfig(),
        *,
        queue_depth: int = 4096,
        budget_s: float = 0.050,
        stride_s: float = 0.05,
        idle_timeout_s: float = 30.0,
        evict_after_s: float | None = 60.0,
        buffer_s: float = 10.0,
        max_history: int = 256,
        clock: Callable[[], float] = time.monotonic,
        health_policy: HealthPolicy | None = None,
        batching: bool = False,
    ) -> None:
        self._config = config
        self._stride_s = stride_s
        self._buffer_s = buffer_s
        self._max_history = max_history
        self._idle_timeout_s = idle_timeout_s
        self._evict_after_s = evict_after_s
        self._clock = clock
        self._health_policy = health_policy if health_policy is not None else HealthPolicy()

        self._sessions: dict[str, TrackedSession] = {}
        self._queue = IngestQueue(queue_depth)
        self._batching = batching
        self._scheduler: RoundRobinScheduler = (
            BatchedScheduler(budget_s=budget_s)
            if batching
            else RoundRobinScheduler(budget_s=budget_s)
        )
        self._metrics = MetricsRegistry()
        self._profiles = ProfileCache()
        self._idle_since: dict[str, float] = {}

        m = self._metrics
        self._g_live = m.gauge("sessions_live", "sessions not evicted")
        self._g_queue = m.gauge("queue_depth", "packets waiting in the ingest ring")
        self._c_opened = m.counter("sessions_opened")
        self._c_evicted = m.counter("sessions_evicted")
        self._c_ingested = m.counter("packets_ingested", "packets routed into sessions")
        self._c_dropped = m.counter("packets_dropped", "packets shed by backpressure")
        self._c_orphaned = m.counter(
            "packets_orphaned", "packets for unknown/evicted sessions"
        )
        self._c_estimates = m.counter("estimates_served")
        self._c_deferrals = m.counter("scheduler_deferrals")
        self._c_misses = m.counter("deadline_misses")
        self._c_cache_hits = m.counter("profile_cache_hits")
        self._c_cache_misses = m.counter("profile_cache_misses")
        self._h_latency = m.histogram("estimate_latency_ms", "per-estimate wall time")
        self._h_lateness = m.histogram(
            "estimate_lateness_ms", "stream-time distance past the due time"
        )
        self._c_rejected = m.counter(
            "packets_rejected", "non-finite packets refused at ingest"
        )
        self._c_poll_failures = m.counter(
            "poll_failures", "tracker exceptions contained during polls"
        )
        self._c_quarantines = m.counter(
            "quarantines_total", "health transitions into quarantine"
        )
        self._c_releases = m.counter(
            "quarantine_releases", "backoff expiries returning a session to probation"
        )
        self._c_recoveries = m.counter(
            "recoveries_total", "sessions restored to healthy after degradation"
        )
        self._g_degraded = m.gauge(
            "health_degraded", "sessions currently degraded (fault-mode occupancy)"
        )
        self._g_quarantined = m.gauge(
            "health_quarantined", "sessions currently quarantined"
        )
        self._c_batch_groups = m.counter(
            "batch_groups", "stacked engine calls executed"
        )
        self._c_batched = m.counter(
            "sessions_batched", "sessions served via a stacked engine call"
        )
        self._c_fallback = m.counter(
            "sessions_fallback", "sessions served on the sequential path"
        )
        self._h_batch_size = m.histogram(
            "batch_size", "sessions per stacked engine call"
        )

    # ------------------------------------------------------------------
    # Fleet API
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> MetricsRegistry:
        return self._metrics

    @property
    def batching(self) -> bool:
        """Whether estimates are served through the batched scheduler."""
        return self._batching

    @property
    def profile_cache(self) -> ProfileCache:
        return self._profiles

    @property
    def queue(self) -> IngestQueue:
        return self._queue

    def __len__(self) -> int:
        """Sessions not yet evicted."""
        return sum(1 for s in self._sessions.values() if s.state != EVICTED)

    def session(self, session_id: str) -> TrackedSession:
        if session_id not in self._sessions:
            raise KeyError(f"unknown session {session_id!r}")
        return self._sessions[session_id]

    def session_ids(self, state: str | None = None) -> tuple[str, ...]:
        """Ids of sessions, optionally filtered by lifecycle state."""
        return tuple(
            sid
            for sid, s in self._sessions.items()
            if state is None or s.state == state
        )

    def open_session(
        self,
        session_id: str,
        profile: CsiProfile | None = None,
        *,
        fingerprint: str | None = None,
        build_profile: Callable[[], CsiProfile] | None = None,
        camera: CameraLike | None = None,
        config: ViHOTConfig | None = None,
        workload: str = HEAD_WORKLOAD,
    ) -> TrackedSession:
        """Admit one session, resolving its profile.

        Profile resolution, in priority order: an explicit ``profile``
        (cached under ``fingerprint`` when given); a ``fingerprint``
        cache hit; a cache miss served by calling ``build_profile``.
        With none of the three the session is admitted ``created`` and
        must get :meth:`TrackedSession.attach_profile` before packets.

        ``config`` overrides the manager-wide tracker config for this
        session (e.g. a forecasting cabin in a tracking fleet); the
        batch planner stacks sessions whose configs agree up to the
        forecast horizon, so an override beyond that simply lands the
        session in its own batch group.

        ``workload`` picks the estimation chain
        (:func:`repro.core.workloads.workload_kinds`): one fleet can mix
        head-tracking, occupant-localization and breathing sessions in
        the same tick loop — different chains never share a batch group
        (the planner keys on stage names).
        """
        if session_id in self._sessions and (
            self._sessions[session_id].state != EVICTED
        ):
            raise ValueError(f"session {session_id!r} already open")
        session = TrackedSession(
            session_id,
            config if config is not None else self._config,
            camera=camera,
            buffer_s=self._buffer_s,
            stride_s=self._stride_s,
            max_history=self._max_history,
            health_policy=self._health_policy,
            workload=workload,
        )
        if profile is None and fingerprint is not None:
            if fingerprint in self._profiles or build_profile is not None:
                before = self._profiles.hits
                profile = self._profiles.get_or_build(
                    fingerprint,
                    build_profile if build_profile is not None else _no_builder,
                )
                if self._profiles.hits > before:
                    self._c_cache_hits.inc()
                else:
                    self._c_cache_misses.inc()
        elif profile is not None and fingerprint is not None:
            self._profiles.put(fingerprint, profile)
        if profile is not None:
            session.attach_profile(profile, fingerprint)
        session.last_activity = self._clock()
        self._sessions[session_id] = session
        self._c_opened.inc()
        self._metrics.counter(
            f"vihot_sessions_opened_{workload}_total",
            f"sessions opened with the {workload!r} workload",
        ).inc()
        self._g_live.set(len(self))
        return session

    def close_session(self, session_id: str) -> Estimate | None:
        """Evict a session; returns its final estimate snapshot."""
        session = self.session(session_id)
        if session.state != EVICTED:
            session.evict()
            self._c_evicted.inc()
        self._idle_since.pop(session_id, None)
        self._queue.forget_session(session_id)
        self._g_live.set(len(self))
        return session.latest

    # ------------------------------------------------------------------
    # Ingest (hot path: one ring push, no session lookup)
    # ------------------------------------------------------------------
    def ingest(self, session_id: str, time: float, csi: np.ndarray) -> bool:
        """Enqueue one CSI packet; returns ``False`` iff one was shed."""
        accepted = self._queue.push(session_id, time, csi)
        if not accepted:
            self._c_dropped.inc()
        return accepted

    def ingest_imu(self, session_id: str, time: float, yaw_rate: float) -> None:
        """Route one IMU reading directly (IMU rates are ~100x lower than
        CSI, so the batching queue would buy nothing)."""
        self.session(session_id).push_imu(time, yaw_rate)

    # ------------------------------------------------------------------
    # The tick: drain -> schedule -> idle policy
    # ------------------------------------------------------------------
    def tick(self, max_records: int | None = None) -> ManagerTickReport:
        now = self._clock()

        # 1. Drain the queue into the sessions.  Poisoned packets
        # (non-finite CSI or stamps) and push-time errors are rejected
        # here — counted, fed to the session's health machine — so one
        # corrupted cabin stream can never kill the tick or poison a
        # tracker's unwrap chain.
        batch = self._queue.drain(max_records)
        ingested = 0
        orphaned = 0
        rejected = 0
        quarantined: list[str] = []
        for session_id, records in batch.by_session().items():
            session = self._sessions.get(session_id)
            if session is None or session.state == EVICTED or session.tracker is None:
                orphaned += len(records)
                continue
            accepted = 0
            bad = 0
            for record in records:
                if not _finite_packet(record.time, record.csi):
                    bad += 1
                    continue
                try:
                    session.push_csi(record.time, record.csi)
                except (ValueError, SessionStateError):
                    bad += 1
                    continue
                accepted += 1
            ingested += accepted
            rejected += bad
            if bad:
                session.rejected_packets += bad
                if self._record_faults(session, bad):
                    quarantined.append(session_id)
            # Any arrival — even a rejected one — proves the cabin is
            # alive, so the idle clock resets either way.
            session.last_activity = now
            self._idle_since.pop(session_id, None)
        self._c_ingested.inc(ingested)
        self._c_orphaned.inc(orphaned)
        self._c_rejected.inc(rejected)

        # 2. Serve due estimates within the budget.  Contained poll
        # exceptions surface as serving records with an ``error``; they
        # count as health faults, clean polls as successes.
        live = [s for s in self._sessions.values() if s.state == LIVE]
        report = self._scheduler.tick(live)
        poll_failures: list[str] = []
        recovered: list[str] = []
        for served in report.served:
            session = self._sessions.get(served.session_id)
            if served.error is not None:
                poll_failures.append(served.session_id)
                self._c_poll_failures.inc()
                if session is not None:
                    session.poll_failures += 1
                    if self._record_faults(session, 1):
                        quarantined.append(served.session_id)
                continue
            if session is not None:
                before = session.health.state
                session.health.record_success()
                if before != HEALTHY and session.health.state == HEALTHY:
                    recovered.append(served.session_id)
                    self._c_recoveries.inc()
            if served.estimate is not None:
                self._c_estimates.inc()
                self._h_latency.observe(served.elapsed_s * 1e3)
                self._h_lateness.observe(served.lateness_s * 1e3)
        self._c_deferrals.inc(len(report.deferred))
        self._c_misses.inc(report.deadline_misses)
        self._c_batch_groups.inc(report.batched_groups)
        self._c_batched.inc(report.batched_sessions)
        self._c_fallback.inc(report.fallback_sessions)
        for size in report.batch_sizes:
            self._h_batch_size.observe(float(size))

        # 3. Quarantine backoff: this tick counts toward every cooldown;
        # expiries release the session to degraded probation (a bounded
        # retry — the next faults re-quarantine it for longer).
        released: list[str] = []
        for session_id, session in self._sessions.items():
            if session.state == EVICTED:
                continue
            if session.health.tick():
                released.append(session_id)
                self._c_releases.inc()

        # 4. Idle / eviction policy.
        idled: list[str] = []
        evicted: list[str] = []
        for session_id, session in self._sessions.items():
            if session.state == LIVE and (
                now - session.last_activity > self._idle_timeout_s
            ):
                session.mark_idle()
                self._idle_since[session_id] = now
                idled.append(session_id)
            elif session.state == IDLE and self._evict_after_s is not None and (
                now - self._idle_since.get(session_id, now) > self._evict_after_s
            ):
                session.evict()
                self._idle_since.pop(session_id, None)
                self._queue.forget_session(session_id)
                self._c_evicted.inc()
                evicted.append(session_id)

        # 5. Health occupancy gauges (fault-mode occupancy of the fleet).
        degraded_now = 0
        quarantined_now = 0
        for session in self._sessions.values():
            if session.state == EVICTED:
                continue
            if session.health.state == DEGRADED:
                degraded_now += 1
            elif session.health.state == QUARANTINED:
                quarantined_now += 1
        self._g_degraded.set(degraded_now)
        self._g_quarantined.set(quarantined_now)

        self._g_live.set(len(self))
        self._g_queue.set(len(self._queue))
        return ManagerTickReport(
            ingested=ingested,
            orphaned=orphaned,
            scheduler=report,
            idled=tuple(idled),
            evicted=tuple(evicted),
            rejected=rejected,
            poll_failures=tuple(poll_failures),
            quarantined=tuple(quarantined),
            released=tuple(released),
            recovered=tuple(recovered),
        )

    def _record_faults(self, session: TrackedSession, n: int) -> bool:
        """Feed faults to a session's health machine; True on a fresh
        quarantine transition (also counted in the registry)."""
        before = session.health.state
        session.health.record_faults(n)
        if session.health.state == QUARANTINED and before != QUARANTINED:
            self._c_quarantines.inc()
            return True
        return False

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def estimates(
        self, session_id: str | None = None
    ) -> dict[str, Estimate | None] | tuple[Estimate, ...]:
        """Latest snapshot per session, or one session's history.

        With no argument: ``{session_id: latest estimate or None}`` over
        non-evicted sessions.  With an id: that session's retained
        estimate history, oldest first.
        """
        if session_id is not None:
            return tuple(self.session(session_id).history)
        return {
            sid: s.latest
            for sid, s in self._sessions.items()
            if s.state != EVICTED
        }

    def health_states(self) -> dict[str, str]:
        """``{session_id: health state}`` over non-evicted sessions."""
        return {
            sid: s.health.state
            for sid, s in self._sessions.items()
            if s.state != EVICTED
        }

    def stage_stats(self) -> tuple[StageStats, ...]:
        """Fleet-wide engine-stage aggregates over retained histories."""
        def all_estimates() -> Iterator[Estimate]:
            for session in self._sessions.values():
                yield from session.history

        return aggregate_stage_traces(all_estimates())

    def metrics_snapshot(self) -> dict[str, object]:
        """One scrape: serving metrics + fleet tracking stage stats."""
        self._metrics.fold_stage_stats(self.stage_stats())
        return self._metrics.as_dict()

    def render_metrics(self) -> str:
        """The registry's one-line report (stage stats folded in)."""
        self._metrics.fold_stage_stats(self.stage_stats())
        return self._metrics.render()


def _no_builder() -> CsiProfile:
    raise SessionStateError(
        "profile cache miss and no build_profile callback was provided"
    )
