"""The serving layer's observability surface.

A deployment running thousands of :class:`~repro.serve.session.TrackedSession`s
needs one place that answers "how is the fleet doing?" without touching
any session: how many sessions are live, how many packets arrived, how
many the ingestion queue shed under backpressure, and how long estimates
take.  ``MetricsRegistry`` is that place — a small Prometheus-shaped
registry of counters, gauges and histograms that every serve component
writes into and that renders as a dict (for JSON export) or a one-line
text report (for logs).

Histograms keep a bounded reservoir of recent observations (drop-oldest,
like the ingest queue) so percentiles reflect current behaviour and
memory stays flat however long the service runs.  Per-session tracking
quality lives with the sessions themselves (`diagnose()` stage stats);
:meth:`MetricsRegistry.fold_stage_stats` merges those into the same
snapshot so one scrape shows both serving health and tracking health.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.core.diagnostics import StageStats


class Counter:
    """A monotonically increasing count (packets, drops, evictions)."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        self._value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A point-in-time level (sessions live, queue depth)."""

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self._value += n

    def dec(self, n: float = 1.0) -> None:
        self._value -= n

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """A bounded reservoir of observations with percentile queries.

    The reservoir is a preallocated numpy ring: ``observe`` is O(1) with
    no allocation, and once ``capacity`` samples have been seen the
    oldest are overwritten — percentiles describe the *recent* window,
    which is what an operator watching estimate latency wants.
    """

    def __init__(self, name: str, help: str = "", capacity: int = 2048) -> None:
        if capacity < 2:
            raise ValueError(f"histogram capacity must be >= 2, got {capacity}")
        self.name = name
        self.help = help
        self._samples = np.empty(capacity, dtype=np.float64)
        self._count = 0
        self._rejected = 0

    @property
    def count(self) -> int:
        """Total observations ever made (not just the retained window)."""
        return self._count

    @property
    def capacity(self) -> int:
        return len(self._samples)

    @property
    def rejected(self) -> int:
        """Non-finite observations refused (kept out of percentiles)."""
        return self._rejected

    def observe(self, value: float) -> None:
        """Record one observation.

        Non-finite values are refused (and counted in :attr:`rejected`)
        rather than folded: one NaN in the reservoir would turn every
        percentile an operator alerts on into NaN.
        """
        if not np.isfinite(value):
            self._rejected += 1
            return
        self._samples[self._count % len(self._samples)] = value
        self._count += 1

    def _window(self) -> np.ndarray:
        return self._samples[: min(self._count, len(self._samples))]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of the retained window (NaN if empty)."""
        window = self._window()
        if window.size == 0:
            return float("nan")
        return float(np.percentile(window, q))

    def maximum(self) -> float:
        """The largest retained observation (NaN if empty)."""
        window = self._window()
        if window.size == 0:
            return float("nan")
        return float(window.max())

    def summary(self) -> dict[str, float]:
        """The SLO-facing digest of the retained window.

        Keys are dotted-path safe (``p99_9``, not ``p99.9``) so perf
        gates can address them with the same dotted lookups the bench
        regression checker uses.  Tail percentiles are included because
        that is what latency SLOs alert on — a snapshot exposing only
        p50/p90 would gate on numbers the operator never sees.
        """
        return {
            "count": self._count,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "p99_9": self.percentile(99.9),
            "max": self.maximum(),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self._count})"


class MetricsRegistry:
    """Get-or-create registry of the serve layer's metrics.

    Components never construct metric objects directly; they ask the
    registry (``registry.counter("packets_ingested")``) so every metric
    has exactly one owner-independent instance and one snapshot shows
    them all.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._stage_stats: tuple[StageStats, ...] = ()

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        if name not in self._counters:
            self._check_fresh(name)
            self._counters[name] = Counter(name, help)
        return self._counters[name]

    def gauge(self, name: str, help: str = "") -> Gauge:
        if name not in self._gauges:
            self._check_fresh(name)
            self._gauges[name] = Gauge(name, help)
        return self._gauges[name]

    def histogram(self, name: str, help: str = "", capacity: int = 2048) -> Histogram:
        if name not in self._histograms:
            self._check_fresh(name)
            self._histograms[name] = Histogram(name, help, capacity)
        return self._histograms[name]

    def _check_fresh(self, name: str) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if name in kind:
                raise ValueError(f"metric name {name!r} already registered as another type")

    # ------------------------------------------------------------------
    # Tracking-health fold-in
    # ------------------------------------------------------------------
    def fold_stage_stats(self, stage_stats: Iterable[StageStats]) -> None:
        """Attach the fleet's aggregated engine-stage stats to snapshots.

        The serving layer computes these from every live session's
        estimate traces (`aggregate_stage_traces`); the registry only
        carries the latest aggregate so scrapes are self-contained.
        """
        self._stage_stats = tuple(stage_stats)

    @property
    def stage_stats(self) -> tuple[StageStats, ...]:
        return self._stage_stats

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        """The full registry as plain types (JSON-serialisable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
            "stages": [
                {
                    "stage": s.stage,
                    "evaluated": s.evaluated,
                    "fired": s.fired,
                    "terminal": s.terminal,
                    "p50_ms": s.p50_ms,
                    "p90_ms": s.p90_ms,
                }
                for s in self._stage_stats
            ],
        }

    def render(self) -> str:
        """One-line text report, log-grep friendly.

        Example::

            sessions_live=50 packets_ingested=64000 packets_dropped=0
            estimate_latency_ms{p50=2.1,p90=3.4,p99=5.0,n=1200}
        """
        return render_snapshot(self.as_dict())

    def get(self, name: str) -> object | None:
        """Look up a metric of any type by name (``None`` if absent)."""
        return (
            self._counters.get(name)
            or self._gauges.get(name)
            or self._histograms.get(name)
        )


def render_snapshot(snapshot: Mapping[str, Any]) -> str:
    """Render an :meth:`MetricsRegistry.as_dict` snapshot as one line.

    Shared by :meth:`MetricsRegistry.render` and the sharded serving
    fabric (whose fleet-wide snapshot is *merged* from many worker
    registries and therefore has no single registry object to render
    from) — one formatter, so per-process and fleet reports never drift.
    """
    parts: list[str] = []
    gauges: Mapping[str, float] = snapshot.get("gauges", {})
    for name in sorted(gauges):
        value = gauges[name]
        text = f"{value:g}" if value != int(value) else f"{int(value)}"
        parts.append(f"{name}={text}")
    counters: Mapping[str, int] = snapshot.get("counters", {})
    for name in sorted(counters):
        parts.append(f"{name}={counters[name]}")
    histograms: Mapping[str, Mapping[str, float]] = snapshot.get("histograms", {})
    for name in sorted(histograms):
        summary = histograms[name]
        parts.append(
            f"{name}{{p50={summary['p50']:.2f},p90={summary['p90']:.2f},"
            f"p99={summary['p99']:.2f},n={int(summary['count'])}}}"
        )
    stages: Sequence[Mapping[str, Any]] = snapshot.get("stages", ())
    terminal = {
        str(s["stage"]): int(s["terminal"]) for s in stages if s["terminal"]
    }
    if terminal:
        joined = ",".join(f"{k}={v}" for k, v in terminal.items())
        parts.append(f"stage_terminals{{{joined}}}")
    return " ".join(parts)
