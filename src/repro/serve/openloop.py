"""Open-loop load generation with latency-percentile SLO gates.

:func:`repro.serve.loadgen.run_load` is *closed-loop*: the driver
pushes packets as fast as the serving layer consumes them, so it
measures throughput and bit-identity but can never show queueing delay
— a slow tick simply slows the offered load down with it.  Production
traffic does the opposite: cabins transmit on their own clock whether
the service is keeping up or not.  :func:`run_open_loop` replays the
same deterministic synthetic fleet on a *wall-clock arrival schedule*
(stream time compressed by ``speedup``), never waiting for the
service, and measures each estimate's end-to-end latency — the wall
time from its newest packet's scheduled arrival to the moment the
scheduler served it.  When ingest outruns serving, arrivals keep their
schedule and latency grows, which is exactly the signal a
percentile SLO (:class:`SloSpec`, "p99=50,p99.9=200") is gated on.

Latencies here are wall-clock measurements — real numbers about this
machine, not bit-reproducible ones.  The open-loop mode therefore
lives beside the closed-loop replay, never replaces it: determinism
pins come from ``run_load``, capacity claims come from here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.core.config import ViHOTConfig
from repro.serve.fabric import ServingFabric
from repro.serve.loadgen import SYNTHETIC_FINGERPRINT, SyntheticCabin, synthetic_profile
from repro.serve.manager import SessionManager
from repro.serve.metrics import Histogram
from repro.serve.scheduler import ServedEstimate

#: Summary keys an SLO may gate on (``p99.9`` spelling normalised).
_SLO_KEYS = ("p50", "p90", "p99", "p99_9", "max")


@dataclass(frozen=True)
class SloViolation:
    """One missed objective: ``percentile`` came out ``actual_ms``
    against a ``limit_ms`` budget."""

    percentile: str
    limit_ms: float
    actual_ms: float

    def __str__(self) -> str:
        return (
            f"{self.percentile}={self.actual_ms:.2f}ms exceeds "
            f"{self.limit_ms:.2f}ms"
        )


@dataclass(frozen=True)
class SloSpec:
    """Latency objectives over the open-loop percentile digest.

    Parsed from the CLI syntax ``"p99=50,p99.9=200"`` (milliseconds);
    keys may be any of ``p50 / p90 / p99 / p99.9 / max``.
    """

    thresholds: tuple[tuple[str, float], ...]

    @classmethod
    def parse(cls, text: str) -> SloSpec:
        thresholds: list[tuple[str, float]] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"SLO clause {part!r} is not of the form p99=50"
                )
            key, _, limit = part.partition("=")
            key = key.strip().replace(".", "_")
            if key not in _SLO_KEYS:
                raise ValueError(
                    f"unknown SLO percentile {key!r}; known: "
                    f"{', '.join(_SLO_KEYS)}"
                )
            thresholds.append((key, float(limit)))
        if not thresholds:
            raise ValueError(f"empty SLO spec {text!r}")
        return cls(tuple(thresholds))

    def evaluate(
        self, summary: dict[str, float]
    ) -> tuple[SloViolation, ...]:
        """The objectives ``summary`` misses (empty tuple = SLO met)."""
        violations = []
        for key, limit in self.thresholds:
            actual = float(summary[key])
            # NaN (no observations) counts as a miss: an SLO gate that
            # passes because nothing was measured would hide a dead run.
            if not actual <= limit:
                violations.append(SloViolation(key, limit, actual))
        return tuple(violations)


@dataclass(frozen=True)
class OpenLoopResult:
    """What one :func:`run_open_loop` run measured."""

    sessions: int
    workers: int
    packets: int
    estimates: int
    drops: int
    wall_s: float
    speedup: float
    offered_packets_per_s: float  # the arrival schedule's aggregate rate
    latency: dict[str, float]  # Histogram.summary() of end-to-end ms
    violations: tuple[SloViolation, ...]
    slo_checked: bool
    metrics_line: str
    #: Final merged metrics snapshot for the Prometheus exporter —
    #: excluded from :meth:`as_dict` (export plumbing, not a number).
    snapshot: dict[str, object] = field(default_factory=dict)

    @property
    def slo_met(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict[str, object]:
        return {
            "sessions": self.sessions,
            "workers": self.workers,
            "packets": self.packets,
            "estimates": self.estimates,
            "drops": self.drops,
            "wall_s": self.wall_s,
            "speedup": self.speedup,
            "offered_packets_per_s": self.offered_packets_per_s,
            "latency_ms": self.latency,
            "slo_checked": self.slo_checked,
            "slo_met": self.slo_met,
            "violations": [str(v) for v in self.violations],
            "metrics": self.metrics_line,
        }

    def summary(self) -> str:
        slo = (
            "not checked"
            if not self.slo_checked
            else ("met" if self.slo_met else "; ".join(str(v) for v in self.violations))
        )
        return (
            f"open-loop {self.sessions} sessions x {self.workers or 1} worker(s) "
            f"@ {self.offered_packets_per_s:,.0f} packets/s offered: "
            f"{self.estimates} estimates, latency p50 "
            f"{self.latency['p50']:.2f} ms / p99 {self.latency['p99']:.2f} ms "
            f"/ p99.9 {self.latency['p99_9']:.2f} ms, {self.drops} drops, "
            f"SLO {slo}"
        )


def run_open_loop(
    num_sessions: int = 8,
    duration_s: float = 2.0,
    rate_hz: float = 100.0,
    tick_interval_s: float = 0.05,
    speedup: float = 10.0,
    workers: int = 0,
    processes: bool = True,
    slo: SloSpec | None = None,
    stride_s: float = 0.25,
    budget_s: float = 1.0,
    queue_depth: int = 4096,
    config: ViHOTConfig | None = None,
    buffer_s: float = 6.0,
    seed: int = 0,
) -> OpenLoopResult:
    """Drive the synthetic fleet on a fixed wall-clock arrival schedule.

    Packet ``k`` of stream time ``t`` arrives at wall time
    ``start + t / speedup`` whether or not the service has kept up;
    manager ticks fire on the same compressed clock.  Per served
    estimate the end-to-end latency is ``serve_wall - arrival_wall``
    of the newest packet it consumed.  With ``workers > 0`` the fleet
    serves through a :class:`ServingFabric`; otherwise through one
    in-process :class:`SessionManager` — same traffic either way, so
    the two latency digests are directly comparable.
    """
    if num_sessions < 1:
        raise ValueError("num_sessions must be >= 1")
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    if config is None:
        config = ViHOTConfig(profile_stride=8, num_length_candidates=3)

    profile = synthetic_profile()
    idle_timeout_s = 10 * duration_s + 60.0
    manager: SessionManager | ServingFabric
    if workers:
        manager = ServingFabric(
            config,
            workers=workers,
            processes=processes,
            queue_depth=queue_depth,
            budget_s=budget_s,
            stride_s=stride_s,
            idle_timeout_s=idle_timeout_s,
            buffer_s=buffer_s,
        )
    else:
        manager = SessionManager(
            config,
            queue_depth=queue_depth,
            budget_s=budget_s,
            stride_s=stride_s,
            idle_timeout_s=idle_timeout_s,
            buffer_s=buffer_s,
        )
    cabins = [
        SyntheticCabin(
            f"cabin-{k:04d}",
            seed=seed * 10_000 + k,
            duration_s=duration_s,
            rate_hz=rate_hz,
        )
        for k in range(num_sessions)
    ]
    latency = Histogram(
        "openloop_latency_ms", "end-to-end estimate latency", capacity=1 << 15
    )
    estimates_seen = 0
    try:
        for cabin in cabins:
            manager.open_session(
                cabin.cabin_id,
                fingerprint=SYNTHETIC_FINGERPRINT,
                build_profile=lambda: profile,
            )

        start = time.perf_counter()

        def observe(report_served: Sequence[ServedEstimate]) -> None:
            nonlocal estimates_seen
            serve_wall = time.perf_counter() - start
            for served in report_served:
                if served.error is not None or served.estimate is None:
                    continue
                estimates_seen += 1
                arrival_wall = served.polled_t / speedup
                latency.observe((serve_wall - arrival_wall) * 1e3)

        next_tick = tick_interval_s
        num_steps = len(cabins[0].times)
        for k in range(num_steps):
            t = float(cabins[0].times[k])
            target = start + t / speedup
            now = time.perf_counter()
            if now < target:
                time.sleep(target - now)
            # Behind schedule: do NOT slow down — that is the point.
            for cabin in cabins:
                manager.ingest(cabin.cabin_id, t, cabin.csi_at(k))
            if t >= next_tick:
                observe(manager.tick().scheduler.served)
                next_tick += tick_interval_s
        observe(manager.tick().scheduler.served)
        wall_s = time.perf_counter() - start

        snapshot = manager.metrics_snapshot()
        counters = snapshot["counters"]
        assert isinstance(counters, dict)
        metrics_line = manager.render_metrics()
    finally:
        if isinstance(manager, ServingFabric):
            manager.close()

    summary = latency.summary()
    violations: tuple[SloViolation, ...] = ()
    if slo is not None:
        violations = slo.evaluate(summary)
    return OpenLoopResult(
        sessions=num_sessions,
        workers=workers,
        packets=int(counters["packets_ingested"]),
        estimates=estimates_seen,
        drops=int(counters["packets_dropped"]),
        wall_s=wall_s,
        speedup=speedup,
        offered_packets_per_s=num_sessions * rate_hz * speedup,
        latency=summary,
        violations=violations,
        slo_checked=slo is not None,
        metrics_line=metrics_line,
        snapshot=dict(snapshot),
    )
