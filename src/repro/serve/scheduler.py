"""Round-robin estimate scheduling under a per-tick wall-time budget.

Estimates are the expensive half of serving (a DTW match costs
milliseconds; a packet push costs microseconds), so they are rationed:
each manager tick gives the scheduler a wall-time budget, and sessions
whose estimate is due are served in round-robin order until the budget
runs out.  Two properties matter and are both explicit here:

* **Deferral, never silent skips.**  A session that doesn't fit this
  tick's budget is *deferred*: counted, reported in the tick's
  :class:`TickReport`, and placed first in line next tick (the
  round-robin cursor parks on it).  Nothing is dropped — a deferred
  session's estimate happens later, at a later stream time, exactly as
  it would for a standalone tracker polled late.
* **Deadline accounting.**  Every session carries a ``stride_s`` —
  its estimate period.  When a session is finally served, its lateness
  (how far past its due time the served estimate landed) is recorded;
  lateness beyond one full period counts as a deadline miss.  Operators
  watching ``deadline_misses`` vs ``deferrals`` can tell "the budget is
  a little tight" from "the fleet is overloaded".

Wall time and stream time deliberately coexist: the *budget* is wall
time (what the CPU actually spends), while *deadlines* are stream time
(what the cabins actually experience) — in a real deployment the two
clocks advance together; in simulation stream time may run much faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from collections.abc import Callable, Sequence

from repro.core.stages import Estimate
from repro.serve.session import TrackedSession


@dataclass(frozen=True)
class ServedEstimate:
    """One scheduling outcome: a session that got its turn this tick."""

    session_id: str
    estimate: Estimate | None  # None when the tracker declined or failed
    polled_t: float  # stream time the estimate was polled at
    elapsed_s: float  # wall time the poll took
    lateness_s: float  # stream-time distance past the session's due time
    error: str | None = None  # contained poll exception, if any


@dataclass(frozen=True)
class TickReport:
    """What one scheduler tick did with its budget.

    The ``batched_*`` fields are populated by the fleet-batched
    scheduler (:class:`repro.serve.batch.BatchedScheduler`); under the
    sequential scheduler they stay at their zero defaults.
    """

    served: tuple[ServedEstimate, ...] = ()
    deferred: tuple[str, ...] = ()  # session ids pushed to next tick
    budget_s: float = 0.0
    elapsed_s: float = 0.0
    deadline_misses: int = 0
    batched_groups: int = 0  # stacked engine calls this tick
    batched_sessions: int = 0  # sessions served via a stacked call
    fallback_sessions: int = 0  # sessions served on the sequential path
    batch_sizes: tuple[int, ...] = ()  # per stacked call, in serve order

    @property
    def estimates(self) -> tuple[Estimate, ...]:
        return tuple(s.estimate for s in self.served if s.estimate is not None)

    @property
    def failures(self) -> tuple[ServedEstimate, ...]:
        """Serving records whose poll raised (exception contained)."""
        return tuple(s for s in self.served if s.error is not None)


@dataclass
class RoundRobinScheduler:
    """Serve pending sessions fairly within a per-tick budget.

    Args:
        budget_s: wall-time budget per tick.  At least one session is
            always served per tick (otherwise a tiny budget could
            starve the fleet forever).
        wall_clock: injectable wall clock (tests use a fake).
    """

    budget_s: float = 0.050
    wall_clock: Callable[[], float] = perf_counter
    _cursor: str | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ValueError(f"budget_s must be positive, got {self.budget_s}")

    def tick(self, sessions: Sequence[TrackedSession]) -> TickReport:
        """Serve due sessions round-robin until the budget is exhausted."""
        pending = [s for s in sessions if s.pending()]
        if not pending:
            return TickReport(budget_s=self.budget_s)
        pending = self._rotate(pending)

        start = self.wall_clock()
        served: list[ServedEstimate] = []
        deferred: list[str] = []
        misses = 0
        for index, session in enumerate(pending):
            spent = self.wall_clock() - start
            if spent >= self.budget_s and served:
                deferred = [s.session_id for s in pending[index:]]
                # Park the cursor on the first deferred session so it is
                # first in line next tick.
                self._cursor = deferred[0]
                break
            newest = session.newest_time
            if newest is None:
                # The session stopped being pollable between the
                # pending() snapshot and its turn (no buffered packets):
                # skip it rather than emit a NaN-stamped serving record
                # that would leak into downstream metrics and replays.
                continue
            due = session.due_time
            lateness = 0.0
            if due is not None and newest > due:
                lateness = newest - due
            if lateness > session.stride_s:
                misses += 1
            poll_start = self.wall_clock()
            error: str | None = None
            estimate: Estimate | None = None
            try:
                estimate = session.poll_estimate()
            except Exception as exc:  # contained: one bad tracker must
                # not poison the tick; the manager turns this into a
                # health-machine fault and (eventually) a quarantine.
                error = f"{type(exc).__name__}: {exc}"
            served.append(
                ServedEstimate(
                    session_id=session.session_id,
                    estimate=estimate,
                    polled_t=float(newest),
                    elapsed_s=self.wall_clock() - poll_start,
                    lateness_s=lateness,
                    error=error,
                )
            )
        else:
            # Everyone fit: resume after the last served session.
            self._cursor = None
        return TickReport(
            served=tuple(served),
            deferred=tuple(deferred),
            budget_s=self.budget_s,
            elapsed_s=self.wall_clock() - start,
            deadline_misses=misses,
        )

    def _rotate(self, pending: list[TrackedSession]) -> list[TrackedSession]:
        """Start from the parked cursor session, if it is still pending."""
        if self._cursor is None:
            return pending
        for index, session in enumerate(pending):
            if session.session_id == self._cursor:
                return pending[index:] + pending[:index]
        # The parked session is gone (evicted, quarantined, or simply no
        # longer pending): drop the cursor so rotation restarts cleanly
        # instead of silently pinning a stale id forever.
        self._cursor = None
        return pending
