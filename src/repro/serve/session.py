"""One served tracking session: an ``OnlineTracker`` plus lifecycle.

The serving layer never talks to an :class:`~repro.core.online.OnlineTracker`
directly — it talks to a :class:`TrackedSession`, which adds the three
things a fleet needs that a single tracker doesn't have:

* a **lifecycle** (``created → profiled → live → idle → evicted``) so
  the manager can admit sessions before their profile exists, park
  inactive ones, and reclaim their ring buffers;
* an **activity clock** (stamped by the manager's wall clock on every
  ingest) driving idle detection and eviction;
* a **snapshot** of the latest :class:`~repro.core.stages.Estimate` and
  a bounded history of recent ones, so reads (`estimates`, metrics,
  stage stats) never touch the tracker's hot path.

The session adds routing and bookkeeping only: every estimate it serves
is produced by the wrapped tracker from exactly the packets routed to
it, so a session's output is bit-identical to a standalone tracker fed
the same packets (pinned by ``tests/serve/test_equivalence.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.config import ViHOTConfig
from repro.core.diagnostics import StageStats, aggregate_stage_traces
from repro.core.engine import BatchItem
from repro.core.online import OnlineTracker
from repro.core.profile import CsiProfile
from repro.core.stages import CameraLike, Estimate
from repro.core.workloads import HEAD_WORKLOAD, engine_for_workload, workload_kinds

#: Lifecycle states, in nominal order.
CREATED = "created"
PROFILED = "profiled"
LIVE = "live"
IDLE = "idle"
EVICTED = "evicted"
LIFECYCLE = (CREATED, PROFILED, LIVE, IDLE, EVICTED)

#: Health states — orthogonal to the lifecycle.  The lifecycle says
#: whether a session *exists and has data*; health says whether the
#: serving layer currently trusts its data and polls.
HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"
HEALTH_STATES = (HEALTHY, DEGRADED, QUARANTINED)


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds for the per-session fault containment machine.

    Args:
        degrade_after: consecutive fault events before a healthy
            session is marked degraded.
        quarantine_after: consecutive fault events before a degraded
            session is quarantined (polls suspended).
        backoff_ticks: quarantine duration (manager ticks) for the
            first quarantine; doubles per repeat up to the cap, the
            bounded retry/backoff on persistent faults.
        backoff_factor: growth factor per repeated quarantine.
        backoff_max_ticks: backoff cap.
        probation_successes: clean polls a degraded session needs to
            be declared healthy (recovered) again.
    """

    degrade_after: int = 1
    quarantine_after: int = 3
    backoff_ticks: int = 2
    backoff_factor: float = 2.0
    backoff_max_ticks: int = 8
    probation_successes: int = 1

    def __post_init__(self) -> None:
        if self.degrade_after < 1 or self.quarantine_after < 1:
            raise ValueError("health thresholds must be >= 1")
        if self.backoff_ticks < 1 or self.backoff_max_ticks < 1:
            raise ValueError("backoff tick counts must be >= 1")
        if self.probation_successes < 1:
            raise ValueError("probation_successes must be >= 1")


class SessionHealth:
    """``healthy -> degraded -> quarantined -> (backoff) -> degraded ->
    healthy`` — the graceful-degradation machine one session carries.

    Fault events are rejected packets (non-finite CSI/stamps) and
    contained poll exceptions; successes are clean polls.  Quarantine
    suspends polling (the session stays open and keeps ingesting), and
    each release from quarantine is a *bounded retry*: the cooldown
    grows exponentially while faults persist, so a permanently broken
    session costs the scheduler almost nothing.
    """

    def __init__(self, policy: HealthPolicy | None = None) -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        self._state = HEALTHY
        self._cooldown = 0
        self._probation = 0
        self.consecutive_faults = 0
        self.fault_events = 0
        self.quarantines = 0
        self.releases = 0
        self.recoveries = 0

    @property
    def state(self) -> str:
        return self._state

    @property
    def quarantined(self) -> bool:
        return self._state == QUARANTINED

    @property
    def cooldown_ticks(self) -> int:
        """Manager ticks left before a quarantined session is retried."""
        return self._cooldown

    def record_faults(self, n: int = 1) -> None:
        """Count ``n`` fault events, transitioning as thresholds pass."""
        if n <= 0:
            return
        self.fault_events += n
        self._probation = 0
        if self._state == QUARANTINED:
            return  # already contained; the cooldown decides the retry
        self.consecutive_faults += n
        policy = self.policy
        if self._state == HEALTHY and self.consecutive_faults >= policy.degrade_after:
            self._state = DEGRADED
        if self._state == DEGRADED and self.consecutive_faults >= policy.quarantine_after:
            self._state = QUARANTINED
            self.quarantines += 1
            scale = policy.backoff_factor ** (self.quarantines - 1)
            self._cooldown = max(
                1, min(int(policy.backoff_ticks * scale), policy.backoff_max_ticks)
            )
            self.consecutive_faults = 0

    def record_success(self) -> None:
        """Count one clean poll; enough of them restore ``healthy``."""
        self.consecutive_faults = 0
        if self._state != DEGRADED:
            return
        self._probation += 1
        if self._probation >= self.policy.probation_successes:
            self._state = HEALTHY
            self._probation = 0
            self.recoveries += 1

    def tick(self) -> bool:
        """Advance quarantine backoff one tick; True when released to
        probation (degraded, pollable again)."""
        if self._state != QUARANTINED:
            return False
        self._cooldown -= 1
        if self._cooldown > 0:
            return False
        self._cooldown = 0
        self._state = DEGRADED
        self._probation = 0
        self.releases += 1
        return True

    def __repr__(self) -> str:
        return (
            f"SessionHealth({self._state}, faults={self.fault_events}, "
            f"quarantines={self.quarantines}, recoveries={self.recoveries})"
        )

#: Legal transitions.  ``idle -> live`` is the wake-up on fresh packets;
#: anything may be evicted; nothing leaves ``evicted``.
_TRANSITIONS = {
    CREATED: (PROFILED, EVICTED),
    PROFILED: (LIVE, IDLE, EVICTED),
    LIVE: (IDLE, EVICTED),
    IDLE: (LIVE, EVICTED),
    EVICTED: (),
}


class SessionStateError(RuntimeError):
    """An operation illegal for the session's current lifecycle state."""


class TrackedSession:
    """One car's tracking session under the serving layer.

    Args:
        session_id: the fleet-unique id packets are addressed with.
        config: tracker parameters (shared with the standalone paths).
        camera: optional steering-fallback camera for this cabin.
        buffer_s: tracker retention horizon.
        stride_s: target spacing between served estimates; with the
            scheduler, this is the session's estimate deadline period.
        max_history: how many recent estimates to retain for stage
            stats and reads.
        health_policy: thresholds for the fault containment machine
            (defaults are the fleet-wide :class:`HealthPolicy`).
        workload: which estimation chain this session runs — any name in
            :func:`repro.core.workloads.workload_kinds` (``"head"``,
            ``"localize"``, ``"breathing"``, ...).  The default is the
            paper's head tracker, constructed exactly as before the
            workload registry existed.
    """

    def __init__(
        self,
        session_id: str,
        config: ViHOTConfig | None = None,
        camera: CameraLike | None = None,
        buffer_s: float = 10.0,
        stride_s: float = 0.05,
        max_history: int = 256,
        health_policy: HealthPolicy | None = None,
        workload: str = HEAD_WORKLOAD,
    ) -> None:
        config = config if config is not None else ViHOTConfig()
        if stride_s <= 0:
            raise ValueError(f"stride_s must be positive, got {stride_s}")
        if workload not in workload_kinds():
            raise ValueError(
                f"unknown workload {workload!r}; registered: "
                f"{sorted(workload_kinds())}"
            )
        self.session_id = session_id
        self.workload = workload
        self._config = config
        self._camera = camera
        self._buffer_s = buffer_s
        self.stride_s = stride_s

        self._state = CREATED
        self._tracker: OnlineTracker | None = None
        self._fingerprint: str | None = None

        self.last_activity: float = float("-inf")  # manager wall clock
        self.latest: Estimate | None = None
        self.history: deque[Estimate] = deque(maxlen=max_history)
        self._last_estimate_t: float | None = None

        self.packets = 0
        self.imu_packets = 0
        self.estimates_produced = 0

        self.health = SessionHealth(health_policy)
        self.rejected_packets = 0  # non-finite packets refused at ingest
        self.poll_failures = 0  # tracker exceptions contained by the scheduler

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def fingerprint(self) -> str | None:
        """The scenario fingerprint whose cached profile this session uses."""
        return self._fingerprint

    @property
    def tracker(self) -> OnlineTracker | None:
        return self._tracker

    def _transition(self, target: str) -> None:
        if target not in _TRANSITIONS[self._state]:
            raise SessionStateError(
                f"session {self.session_id!r}: illegal transition "
                f"{self._state!r} -> {target!r}"
            )
        self._state = target

    def attach_profile(
        self, profile: CsiProfile, fingerprint: str | None = None
    ) -> None:
        """Provide the driver's profile; builds the tracker (`-> profiled`)."""
        if self._state != CREATED:
            raise SessionStateError(
                f"session {self.session_id!r}: profile already attached "
                f"(state {self._state!r})"
            )
        if self.workload == HEAD_WORKLOAD:
            # The pre-registry construction, byte for byte: head
            # tracking is the reference workload the bit-identity
            # gates compare against.
            self._tracker = OnlineTracker(
                profile, self._config, camera=self._camera, buffer_s=self._buffer_s
            )
        else:
            engine = engine_for_workload(
                self.workload, profile, self._config, camera=self._camera
            )
            self._tracker = OnlineTracker(
                profile,
                camera=self._camera,
                buffer_s=self._buffer_s,
                engine=engine,
            )
        self._fingerprint = fingerprint
        self._transition(PROFILED)

    def mark_idle(self) -> None:
        """Park the session (`live/profiled -> idle`); buffers retained."""
        if self._state in (LIVE, PROFILED):
            self._transition(IDLE)

    def evict(self) -> None:
        """Terminal state: drop the tracker (ring buffers freed); the
        latest-estimate snapshot and counters stay readable."""
        if self._state == EVICTED:
            return
        self._state = EVICTED
        self._tracker = None

    # ------------------------------------------------------------------
    # Ingest (called by the manager, on drained batches)
    # ------------------------------------------------------------------
    def push_csi(self, time: float, csi: np.ndarray) -> None:
        if self._state == EVICTED:
            raise SessionStateError(f"session {self.session_id!r} is evicted")
        if self._tracker is None:
            raise SessionStateError(
                f"session {self.session_id!r} has no profile yet (state "
                f"{self._state!r}); attach_profile first"
            )
        if self._state in (PROFILED, IDLE):
            self._transition(LIVE)
        self._tracker.push_csi(time, csi)
        self.packets += 1

    def push_imu(self, time: float, yaw_rate: float) -> None:
        if self._state == EVICTED:
            raise SessionStateError(f"session {self.session_id!r} is evicted")
        if self._tracker is None:
            raise SessionStateError(
                f"session {self.session_id!r} has no profile yet (state "
                f"{self._state!r}); attach_profile first"
            )
        self._tracker.push_imu(time, yaw_rate)
        self.imu_packets += 1

    # ------------------------------------------------------------------
    # Estimation (called by the scheduler)
    # ------------------------------------------------------------------
    @property
    def newest_time(self) -> float | None:
        """Stream time of the newest buffered packet (``None`` if none)."""
        if self._tracker is None or self._tracker.buffered_samples == 0:
            return None
        return self._tracker.phase_series().end

    @property
    def due_time(self) -> float | None:
        """Stream time the next estimate is due (``None`` before the first)."""
        if self._last_estimate_t is None:
            return None
        return self._last_estimate_t + self.stride_s

    def pending(self) -> bool:
        """Whether the scheduler should serve this session an estimate."""
        if self._state != LIVE or self._tracker is None:
            return False
        if self.health.quarantined:
            return False  # polls suspended until the backoff releases
        if not self._tracker.ready():
            return False
        newest = self.newest_time
        if newest is None:
            return False
        if self._last_estimate_t is None:
            return True
        return newest >= self._last_estimate_t + self.stride_s

    def poll_inputs(self) -> tuple[float, BatchItem | None] | None:
        """The poll instant and the tracker's engine inputs for it.

        ``None`` when the session has nothing pollable (mirrors
        :meth:`poll_estimate`'s early returns).  Otherwise ``(newest,
        item)`` where ``item`` is ``None`` when the tracker declines —
        the caller must still :meth:`finish_poll` at ``newest`` so the
        poll clock advances exactly as the sequential path's would.
        """
        if self._tracker is None:
            return None
        newest = self.newest_time
        if newest is None:
            return None
        return newest, self._tracker.estimation_inputs(newest)

    def finish_poll(self, polled_t: float, estimate: Estimate | None) -> Estimate | None:
        """Record one poll outcome: advance the poll clock, snapshot.

        The bookkeeping half of :meth:`poll_estimate`, split out so the
        batched scheduler (which produces the estimate through the
        engine's batch call) books results identically.  Not called when
        the poll raised — an errored poll leaves ``_last_estimate_t``
        unchanged, matching the sequential path.
        """
        self._last_estimate_t = polled_t
        if estimate is not None:
            self.latest = estimate
            self.history.append(estimate)
            self.estimates_produced += 1
        return estimate

    def poll_estimate(self) -> Estimate | None:
        """Produce an estimate at the newest buffered time, snapshot it.

        Returns ``None`` when the tracker declines (not warmed up, or no
        estimate possible at that instant); the poll clock still
        advances so a declining session is not re-polled every tick.
        """
        if self._tracker is None:
            return None
        newest = self.newest_time
        if newest is None:
            return None
        estimate = self._tracker.estimate(newest)
        return self.finish_poll(newest, estimate)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stage_stats(self) -> tuple[StageStats, ...]:
        """Engine-stage aggregates over this session's retained history."""
        return aggregate_stage_traces(self.history)

    def __repr__(self) -> str:
        return (
            f"TrackedSession({self.session_id!r}, state={self._state}, "
            f"packets={self.packets}, estimates={self.estimates_produced})"
        )
