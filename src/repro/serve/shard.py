"""Consistent-hash routing of sessions onto serving shards.

The sharded fabric (:mod:`repro.serve.fabric`) pins every session to
one worker process for its whole life — a tracker's ring buffers are
process state, so a session that hopped shards would replay from empty
buffers.  The router therefore has to be **deterministic** (the same
session id always lands on the same shard, across processes and runs;
no RNG, no ``hash()`` randomization) and **minimally disruptive** when
the shard set changes (a worker death must re-home only the dead
shard's sessions, not reshuffle the fleet).

Both properties come from a classic consistent-hash ring: each shard
owns ``replicas`` points on a sha256 ring, and a session id routes to
the first shard point at or after its own hash.  Removing a shard
deletes only that shard's points, so every other session keeps its
placement — the minimal-rehash property the failover test pins.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from collections.abc import Iterable


def _ring_point(key: str) -> int:
    """A stable 64-bit position on the hash ring.

    sha256 rather than ``hash()``: Python string hashing is salted per
    process (PYTHONHASHSEED), which would route the same session to
    different shards in the parent and a respawned worker.
    """
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class ShardRouter:
    """Deterministic session-id -> shard-index placement.

    Args:
        shard_count: initial shards, numbered ``0..shard_count-1``.
        replicas: ring points per shard.  More points smooth the load
            split (each shard's arc becomes the union of many small
            arcs); 64 keeps the worst shard within ~2x of the mean on
            fleet-sized id sets, which the balance test pins.
    """

    def __init__(self, shard_count: int, *, replicas: int = 64) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._replicas = replicas
        self._shards: set[int] = set()
        self._points: list[int] = []
        self._owners: list[int] = []
        for shard in range(shard_count):
            self.add_shard(shard)

    @property
    def shards(self) -> tuple[int, ...]:
        """Live shard indices, ascending."""
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: int) -> bool:
        return shard in self._shards

    def add_shard(self, shard: int) -> None:
        if shard in self._shards:
            raise ValueError(f"shard {shard} already on the ring")
        self._shards.add(shard)
        for replica in range(self._replicas):
            point = _ring_point(f"shard-{shard}:replica-{replica}")
            index = bisect_right(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard)

    def remove_shard(self, shard: int) -> None:
        """Delete one shard's ring points (its sessions re-hash onto the
        survivors; everyone else keeps their placement)."""
        if shard not in self._shards:
            raise ValueError(f"shard {shard} not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(shard)
        keep = [k for k, owner in enumerate(self._owners) if owner != shard]
        self._points = [self._points[k] for k in keep]
        self._owners = [self._owners[k] for k in keep]

    def route(self, session_id: str) -> int:
        """The shard owning ``session_id`` (first point at or after its
        hash, wrapping at the top of the ring)."""
        point = _ring_point(session_id)
        index = bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignments(
        self, session_ids: Iterable[str]
    ) -> dict[int, list[str]]:
        """``{shard: [session ids]}`` over the live shards (every live
        shard appears, possibly empty), ids in input order."""
        placed: dict[int, list[str]] = {shard: [] for shard in self.shards}
        for session_id in session_ids:
            placed[self.route(session_id)].append(session_id)
        return placed
