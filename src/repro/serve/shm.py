"""Shared-memory CSI ring buffers for cross-process ingest.

The sharded fabric's hot path is the same as the single-process one —
"N cabins x hundreds of CSI packets per second" — but with the
:class:`~repro.serve.manager.SessionManager` living in a worker
process.  Shipping every ``(2, 30) complex128`` packet through a pipe
would pickle ~1 kB per packet on the ingest thread; instead each shard
gets one :class:`SharedCsiRing`, a fixed-slot drop-oldest ring in
``multiprocessing.shared_memory`` that the parent writes with plain
numpy stores and the worker drains with numpy reads.  No pickling on
the packet path, bounded memory, and the same drop-oldest backpressure
semantics as the in-process :class:`~repro.serve.ingest.IngestQueue`
(the freshest packet always gets in; the oldest is shed and attributed
to its session).

Layout (one shm segment):

* header — 4 int64: ``head``, ``count``, ``pushed``, ``dropped``;
* per slot — session-id bytes (padded to ``sid_bytes``) + id length,
  a float64 timestamp, and a fixed-shape complex128 CSI matrix.

A ``multiprocessing.Lock`` serialises push/drain.  The parent creates
the segment and is its owner (``close(unlink=True)`` at fabric
shutdown); workers inherit the mapping through ``fork`` and never
unlink.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from multiprocessing.synchronize import Lock as LockType
from multiprocessing import get_context

import numpy as np

from repro.serve.ingest import IngestRecord

_HEAD, _COUNT, _PUSHED, _DROPPED = range(4)
_HEADER_BYTES = 4 * 8


class SharedCsiRing:
    """Bounded drop-oldest packet ring in shared memory.

    Args:
        slots: ring capacity in packets.
        csi_shape: the fixed per-packet CSI shape, e.g. ``(2, 30)`` —
            fixed slots are what make lock-cheap numpy stores possible;
            a ragged packet is a caller bug and raises.
        sid_bytes: bytes reserved per session id (utf-8).
        name: attach to an existing segment of this name instead of
            creating one (cross-process use without fork inheritance);
            the attaching side must pass the creator's ``lock``.
        lock: the push/drain lock (created when omitted).
    """

    def __init__(
        self,
        slots: int,
        csi_shape: tuple[int, ...],
        *,
        sid_bytes: int = 64,
        name: str | None = None,
        lock: LockType | None = None,
    ) -> None:
        if slots < 1:
            raise ValueError(f"ring slots must be >= 1, got {slots}")
        if sid_bytes < 1:
            raise ValueError(f"sid_bytes must be >= 1, got {sid_bytes}")
        self._slots = slots
        self._csi_shape = tuple(int(d) for d in csi_shape)
        self._sid_bytes = sid_bytes
        csi_items = int(np.prod(self._csi_shape)) if self._csi_shape else 1
        self._csi_items = csi_items
        size = (
            _HEADER_BYTES
            + slots * 8  # sid lengths (int64)
            + slots * sid_bytes  # sid bytes
            + slots * 8  # timestamps (float64)
            + slots * csi_items * 16  # complex128 CSI
        )
        self.owner = name is None
        if self.owner:
            self._shm = shared_memory.SharedMemory(create=True, size=size)
        else:
            self._shm = shared_memory.SharedMemory(name=name)
        self._lock: LockType = (
            lock if lock is not None else get_context("fork").Lock()
        )
        buf = self._shm.buf
        offset = 0

        def view(dtype: np.dtype, count: int) -> np.ndarray:
            nonlocal offset
            nbytes = count * dtype.itemsize
            array = np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
            offset += nbytes
            return array

        self._header = view(np.dtype(np.int64), 4)
        self._sid_lens = view(np.dtype(np.int64), slots)
        self._sids = view(np.dtype(np.uint8), slots * sid_bytes).reshape(
            slots, sid_bytes
        )
        self._times = view(np.dtype(np.float64), slots)
        self._csi = view(np.dtype(np.complex128), slots * csi_items).reshape(
            (slots, *self._csi_shape)
        )
        if self.owner:
            self._header[:] = 0
        #: Writer-side shed attribution, same shape as
        #: :attr:`IngestQueue.dropped_by_session` (the dict cannot live
        #: in shm; only the writing side ever sheds, so it owns it).
        self._dropped_by_session: dict[str, int] = {}

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def slots(self) -> int:
        return self._slots

    @property
    def csi_shape(self) -> tuple[int, ...]:
        return self._csi_shape

    def __len__(self) -> int:
        return int(self._header[_COUNT])

    @property
    def fill_fraction(self) -> float:
        """Occupancy in ``[0, 1]`` — the backpressure / work-stealing
        signal (a racy read is fine: it steers quota, not correctness)."""
        return int(self._header[_COUNT]) / self._slots

    @property
    def pushed_total(self) -> int:
        return int(self._header[_PUSHED])

    @property
    def dropped_total(self) -> int:
        return int(self._header[_DROPPED])

    @property
    def dropped_by_session(self) -> dict[str, int]:
        return dict(self._dropped_by_session)

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def push(self, session_id: str, time: float, csi: np.ndarray) -> bool:
        """Enqueue one packet.  Returns ``False`` iff an old one was shed."""
        csi = np.asarray(csi)
        if csi.shape != self._csi_shape:
            raise ValueError(
                f"packet shape {csi.shape} != ring slot shape {self._csi_shape}"
            )
        sid = session_id.encode("utf-8")
        if len(sid) > self._sid_bytes:
            raise ValueError(
                f"session id {session_id!r} exceeds {self._sid_bytes} bytes"
            )
        with self._lock:
            header = self._header
            header[_PUSHED] += 1
            accepted = True
            head = int(header[_HEAD])
            count = int(header[_COUNT])
            if count == self._slots:
                length = int(self._sid_lens[head])
                shed = bytes(self._sids[head, :length]).decode("utf-8")
                self._dropped_by_session[shed] = (
                    self._dropped_by_session.get(shed, 0) + 1
                )
                header[_DROPPED] += 1
                head = (head + 1) % self._slots
                header[_HEAD] = head
                count -= 1
                accepted = False
            slot = (head + count) % self._slots
            self._sid_lens[slot] = len(sid)
            self._sids[slot, : len(sid)] = np.frombuffer(sid, dtype=np.uint8)
            self._times[slot] = time
            self._csi[slot] = csi
            header[_COUNT] = count + 1
        return accepted

    def drain(self, max_records: int | None = None) -> list[IngestRecord]:
        """Pop up to ``max_records`` (default: everything) in order.

        CSI matrices are copied out of the ring (the slot is reused the
        moment the head advances), so the records are safe to hold."""
        with self._lock:
            count = int(self._header[_COUNT])
            n = count if max_records is None else min(max_records, count)
            head = int(self._header[_HEAD])
            records: list[IngestRecord] = []
            for k in range(n):
                slot = (head + k) % self._slots
                length = int(self._sid_lens[slot])
                sid = bytes(self._sids[slot, :length]).decode("utf-8")
                records.append(
                    IngestRecord(
                        sid,
                        float(self._times[slot]),
                        np.array(self._csi[slot], copy=True),
                    )
                )
            self._header[_HEAD] = (head + n) % self._slots
            self._header[_COUNT] = count - n
        return records

    def forget_session(self, session_id: str) -> None:
        """Drop a session's shed-count bookkeeping (mirror of
        :meth:`IngestQueue.forget_session`)."""
        self._dropped_by_session.pop(session_id, None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, unlink: bool | None = None) -> None:
        """Release this process's mapping; the owner also unlinks.

        Idempotent, and the unlink decision is independent of whether
        the mapping could be dropped: a ``BufferError`` (an exported
        view still alive somewhere) must not leak the *segment* — the
        name is removed regardless and the mapping goes when the last
        view dies.
        """
        # Views into the buffer must go before the mapping can close.
        for attr in ("_header", "_sid_lens", "_sids", "_times", "_csi"):
            if hasattr(self, attr):
                delattr(self, attr)
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported views still live
            pass
        if unlink if unlink is not None else self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
